#include "core/parameter_collector.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "common/strings.h"

namespace dbfa {
namespace {

constexpr const char* kTableA = "CarvProbeA";
constexpr const char* kTableB = "CarvProbeB";
constexpr const char* kMarkerA = "CARVPA";  // first column of every A row
constexpr const char* kMarkerB = "CARVQB";
constexpr int64_t kPbBase = 100000;   // A.pb = kPbBase + i
constexpr int64_t kPdValue = 424242;  // A.pd constant
constexpr uint32_t kMaxPlausibleId = 1u << 24;

std::string MarkerA(int i) { return StrFormat("%s%06d", kMarkerA, i); }
std::string MarkerB(int i) { return StrFormat("%s%06d", kMarkerB, i); }

/// All positions where `needle` occurs in [begin, end) of `hay`.
std::vector<size_t> FindAll(ByteView hay, size_t begin, size_t end,
                            std::string_view needle) {
  std::vector<size_t> out;
  if (needle.empty() || end > hay.size()) return out;
  const uint8_t* base = hay.data();
  for (size_t i = begin; i + needle.size() <= end; ++i) {
    if (std::memcmp(base + i, needle.data(), needle.size()) == 0) {
      out.push_back(i);
    }
  }
  return out;
}

uint16_t RdU16(ByteView b, size_t off, bool be) {
  return ReadU16(b.data() + off, be);
}
uint32_t RdU32(ByteView b, size_t off, bool be) {
  return ReadU32(b.data() + off, be);
}
uint64_t RdU64(ByteView b, size_t off, bool be) {
  return ReadU64(b.data() + off, be);
}

/// Working state threaded through the inference steps.
struct Context {
  ParameterCollector::Options options;
  Bytes cap1, cap2, cap3;

  PageLayoutParams p;           // fields filled as steps complete
  uint32_t catalog_object_id = 0;

  // Page boundaries in cap1 (all multiples of page_size).
  std::vector<size_t> pages;
  // Per page: planted-marker hit counts and marker positions (page-rel).
  std::vector<int> a_count, b_count, cat_count;
  std::vector<std::vector<size_t>> a_marker_pos;  // page-relative offsets
  std::vector<size_t> a_pages, b_pages, cat_pages, other_pages;

  // Byte ranges already attributed to header fields.
  std::vector<std::pair<uint16_t, uint16_t>> assigned;  // (offset, width)

  // Pages whose bytes changed across the probe captures:
  // (offset in earlier capture, offset in later capture).
  std::vector<std::pair<size_t, size_t>> changed12, changed23;

  // Geometry interpretations that survive step 1+2. Small page ids and
  // record counts read identically under both byte orders (zero padding),
  // so several combos can be plausible; the full pipeline is run per
  // candidate and the first complete success wins.
  struct Geometry {
    bool be;
    uint16_t record_count_offset;
    uint16_t page_id_offset;
  };
  std::vector<Geometry> geometry_candidates;

  ByteView Page(size_t page_index) const {
    return ByteView(cap1.data() + pages[page_index], p.page_size);
  }

  bool Overlaps(uint16_t offset, uint16_t width) const {
    for (auto [o, w] : assigned) {
      if (offset < o + w && o < offset + width) return true;
    }
    return false;
  }
  void Assign(uint16_t offset, uint16_t width) {
    assigned.emplace_back(offset, width);
  }
};

/// Walks a record's header at page-relative `off` using the already
/// inferred framing flags; returns field positions (page-relative).
struct RecordWalk {
  size_t row_id_pos = 0;
  size_t row_id_len = 0;
  uint64_t row_id = 0;
  size_t cc_pos = 0;
  uint8_t cc = 0;
  uint8_t nc = 0;
  size_t data_marker_pos = 0;
  size_t record_len_pos = 0;
  uint16_t record_len = 0;
  size_t payload_pos = 0;
};

bool WalkRecord(const Context& ctx, ByteView page, size_t off,
                RecordWalk* w) {
  const PageLayoutParams& p = ctx.p;
  size_t pos = off + 2;  // marker + flags
  if (p.stores_row_id) {
    w->row_id_pos = pos;
    if (p.row_id_varint) {
      size_t consumed = 0;
      auto v = DecodeVarint(page, pos, &consumed);
      if (!v.has_value()) return false;
      w->row_id = *v;
      w->row_id_len = consumed;
    } else {
      if (pos + 4 > page.size()) return false;
      w->row_id = RdU32(page, pos, p.big_endian);
      w->row_id_len = 4;
    }
    pos += w->row_id_len;
  }
  if (pos + 2 > page.size()) return false;
  w->cc_pos = pos;
  w->cc = page[pos];
  w->nc = page[pos + 1];
  if (w->cc == 0 || w->nc > w->cc) return false;
  pos += 2;
  size_t bitmap_len = (w->cc + 7) / 8;
  pos += bitmap_len;  // null bitmap
  if (p.string_mode == StringMode::kColumnDirectory) pos += bitmap_len;
  if (pos + 3 > page.size()) return false;
  w->data_marker_pos = pos;
  w->record_len_pos = pos + 1;
  w->record_len = RdU16(page, pos + 1, p.big_endian);
  w->payload_pos = pos + 3;
  if (off + w->record_len > page.size() || w->record_len < 8) return false;
  return true;
}

// ---- step 1+2: page size, page-id field, record-count field, endian -------

Status InferPageGeometry(Context* ctx) {
  struct Candidate {
    uint32_t size;
    bool be;
    uint16_t offset;
    size_t score;
  };
  std::vector<Candidate> candidates;
  size_t best_score = 0;
  for (uint32_t size : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
    size_t num_pages = ctx->cap1.size() / size;
    if (num_pages < 4) continue;
    for (bool be : {false, true}) {
      for (uint16_t o = 0; o + 4 <= 96; ++o) {
        size_t score = 0;
        uint32_t prev = 0;
        for (size_t k = 0; k < num_pages; ++k) {
          uint32_t v = RdU32(ctx->cap1, k * size + o, be);
          if (k > 0 && v == prev + 1 && v >= 2 && v < kMaxPlausibleId) {
            ++score;
          }
          prev = v;
        }
        if (score >= 3 && score * 2 >= num_pages) {
          candidates.push_back({size, be, o, score});
          best_score = std::max(best_score, score);
        }
      }
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no page-id progression found at any page size");
  }
  // Keep only top-scoring page size (the true size maximizes +1 steps).
  uint32_t size = 0;
  for (const Candidate& c : candidates) {
    if (c.score == best_score) size = c.size;
  }
  ctx->p.page_size = size;
  ctx->pages.clear();
  for (size_t o = 0; o + size <= ctx->cap1.size(); o += size) {
    ctx->pages.push_back(o);
  }

  // Group pages by planted markers.
  std::string schema_marker_a = std::string(kTableA) + "|";
  std::string schema_marker_b = std::string(kTableB) + "|";
  size_t n = ctx->pages.size();
  ctx->a_count.assign(n, 0);
  ctx->b_count.assign(n, 0);
  ctx->cat_count.assign(n, 0);
  ctx->a_marker_pos.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    size_t begin = ctx->pages[i];
    size_t end = begin + size;
    auto a_hits = FindAll(ctx->cap1, begin, end, kMarkerA);
    ctx->a_count[i] = static_cast<int>(a_hits.size());
    for (size_t pos : a_hits) ctx->a_marker_pos[i].push_back(pos - begin);
    ctx->b_count[i] =
        static_cast<int>(FindAll(ctx->cap1, begin, end, kMarkerB).size());
    ctx->cat_count[i] = static_cast<int>(
        FindAll(ctx->cap1, begin, end, schema_marker_a).size() +
        FindAll(ctx->cap1, begin, end, schema_marker_b).size());
    if (ctx->a_count[i] > 0) {
      ctx->a_pages.push_back(i);
    } else if (ctx->b_count[i] > 0) {
      ctx->b_pages.push_back(i);
    } else if (ctx->cat_count[i] > 0) {
      ctx->cat_pages.push_back(i);
    } else {
      ctx->other_pages.push_back(i);
    }
  }
  if (ctx->a_pages.size() < 2 || ctx->b_pages.empty() ||
      ctx->cat_pages.empty()) {
    return Status::Internal(StrFormat(
        "probe produced too few pages (A=%zu B=%zu cat=%zu); increase "
        "probe_rows",
        ctx->a_pages.size(), ctx->b_pages.size(), ctx->cat_pages.size()));
  }

  // Record-count field: u16 equal to the known marker count on every probe
  // page. A symmetric byte order can also match (a small count with a zero
  // neighbour reads the same both ways at shifted offsets), so collect all
  // (endianness, offset) candidates and pick the one whose byte order also
  // yields a page-id field.
  struct CountCandidate {
    bool be;
    uint16_t offset;
  };
  std::vector<CountCandidate> count_candidates;
  for (bool be : {false, true}) {
    for (uint16_t o = 0; o + 2 <= 96; ++o) {
      bool ok = true;
      for (size_t i : ctx->a_pages) {
        if (RdU16(ctx->Page(i), o, be) !=
            static_cast<uint16_t>(ctx->a_count[i])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (size_t i : ctx->b_pages) {
        if (RdU16(ctx->Page(i), o, be) !=
            static_cast<uint16_t>(ctx->b_count[i])) {
          ok = false;
          break;
        }
      }
      if (ok) count_candidates.push_back({be, o});
    }
  }
  if (count_candidates.empty()) {
    return Status::NotFound("no record-count field matched planted counts");
  }
  for (const CountCandidate& cc : count_candidates) {
    size_t best = 0;
    uint16_t best_offset = 0;
    bool have = false;
    for (const Candidate& c : candidates) {
      if (c.size != size || c.be != cc.be) continue;
      // The fields may not overlap each other.
      if (c.offset + 4 > cc.offset && cc.offset + 2 > c.offset) continue;
      // Exact field: the first page of the image must read id 1.
      if (RdU32(ctx->cap1, c.offset, c.be) != 1) continue;
      if (!have || c.score > best) {
        best = c.score;
        best_offset = c.offset;
        have = true;
      }
    }
    if (have) {
      ctx->geometry_candidates.push_back({cc.be, cc.offset, best_offset});
    }
  }
  if (ctx->geometry_candidates.empty()) {
    return Status::NotFound("page-id field lost after byte-order fixing");
  }
  return Status::Ok();
}

// ---- step 3: magic ----------------------------------------------------------

Status InferMagic(Context* ctx) {
  const size_t limit = 96;
  std::vector<bool> constant(limit, true);
  std::vector<uint8_t> value(limit, 0);
  ByteView first = ctx->Page(0);
  for (size_t o = 0; o < limit; ++o) value[o] = first[o];
  for (size_t i = 1; i < ctx->pages.size(); ++i) {
    ByteView page = ctx->Page(i);
    for (size_t o = 0; o < limit; ++o) {
      if (page[o] != value[o]) constant[o] = false;
    }
  }
  // Longest run of constant bytes containing a non-zero byte; trim zero
  // padding from both ends; lowest offset wins ties.
  size_t best_len = 0;
  size_t best_off = 0;
  size_t o = 0;
  while (o < limit) {
    if (!constant[o]) {
      ++o;
      continue;
    }
    size_t start = o;
    while (o < limit && constant[o]) ++o;
    size_t end = o;  // [start, end)
    while (start < end && value[start] == 0) ++start;
    while (end > start && value[end - 1] == 0) --end;
    // Magic bytes are a contiguous non-zero stamp; a zero inside the run
    // is padding that happens to be followed by another constant byte.
    for (size_t i = start; i < end; ++i) {
      if (value[i] == 0) {
        end = i;
        break;
      }
    }
    size_t len = end - start;
    if (len > 4) len = 4;  // magics are short; keep the leading bytes
    if (len > best_len) {
      best_len = len;
      best_off = start;
    }
  }
  if (best_len == 0) {
    return Status::NotFound("no constant non-zero bytes for a page magic");
  }
  ctx->p.magic_offset = static_cast<uint16_t>(best_off);
  ctx->p.magic.assign(value.begin() + best_off,
                      value.begin() + best_off + best_len);
  ctx->Assign(ctx->p.magic_offset, static_cast<uint16_t>(best_len));
  return Status::Ok();
}

// ---- step 4: object id -----------------------------------------------------

Status InferObjectId(Context* ctx) {
  auto group_value = [&](const std::vector<size_t>& group, uint16_t o,
                         uint32_t* out) {
    uint32_t v = RdU32(ctx->Page(group[0]), o, ctx->p.big_endian);
    for (size_t i : group) {
      if (RdU32(ctx->Page(i), o, ctx->p.big_endian) != v) return false;
    }
    *out = v;
    return true;
  };
  for (uint16_t o = 0; o + 4 <= 96; ++o) {
    if (ctx->Overlaps(o, 4)) continue;
    uint32_t va = 0;
    uint32_t vb = 0;
    uint32_t vc = 0;
    if (!group_value(ctx->a_pages, o, &va) ||
        !group_value(ctx->b_pages, o, &vb) ||
        !group_value(ctx->cat_pages, o, &vc)) {
      continue;
    }
    if (va == 0 || vb == 0 || vc == 0) continue;
    if (va == vb || va == vc || vb == vc) continue;
    // Object ids are small and dense.
    uint32_t max_seen = 0;
    bool sane = true;
    for (size_t i = 0; i < ctx->pages.size(); ++i) {
      uint32_t v = RdU32(ctx->Page(i), o, ctx->p.big_endian);
      if (v == 0 || v > 64) {
        sane = false;
        break;
      }
      max_seen = std::max(max_seen, v);
    }
    if (!sane) continue;
    ctx->p.object_id_offset = o;
    ctx->catalog_object_id = vc;
    ctx->Assign(o, 4);
    return Status::Ok();
  }
  return Status::NotFound("no object-id field distinguishing probe tables");
}

// ---- step 5: page type ------------------------------------------------------

Status InferPageType(Context* ctx) {
  std::vector<size_t> data_pages = ctx->a_pages;
  data_pages.insert(data_pages.end(), ctx->b_pages.begin(),
                    ctx->b_pages.end());
  data_pages.insert(data_pages.end(), ctx->cat_pages.begin(),
                    ctx->cat_pages.end());
  if (ctx->other_pages.empty()) {
    return Status::Internal("no index pages in probe capture");
  }
  for (uint16_t o = 0; o < 96; ++o) {
    if (ctx->Overlaps(o, 1)) continue;
    uint8_t data_value = ctx->Page(data_pages[0])[o];
    bool ok = true;
    for (size_t i : data_pages) {
      if (ctx->Page(i)[o] != data_value) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    std::set<uint8_t> other_values;
    for (size_t i : ctx->other_pages) other_values.insert(ctx->Page(i)[o]);
    if (other_values.count(data_value) != 0) continue;  // must differ
    if (other_values.empty() || other_values.size() > 2) continue;
    ctx->p.page_type_offset = o;
    ctx->Assign(o, 1);
    return Status::Ok();
  }
  return Status::NotFound("no page-type field separating data/index pages");
}

// ---- step 6: page LSN -------------------------------------------------------

/// Locates a page with (object_id, page_id) in an arbitrary capture using
/// the already-known geometry fields.
std::optional<size_t> FindPageIn(const Context& ctx, const Bytes& capture,
                                 uint32_t object_id, uint32_t page_id) {
  for (size_t off = 0; off + ctx.p.page_size <= capture.size();
       off += ctx.p.page_size) {
    if (RdU32(capture, off + ctx.p.object_id_offset, ctx.p.big_endian) ==
            object_id &&
        RdU32(capture, off + ctx.p.page_id_offset, ctx.p.big_endian) ==
            page_id) {
      return off;
    }
  }
  return std::nullopt;
}

Status ComputeChangedPages(Context* ctx) {
  auto diff = [&](const Bytes& a, const Bytes& b,
                  std::vector<std::pair<size_t, size_t>>* out) {
    for (size_t off = 0; off + ctx->p.page_size <= a.size();
         off += ctx->p.page_size) {
      uint32_t object_id = ReadU32(a.data() + off + ctx->p.object_id_offset,
                                   ctx->p.big_endian);
      uint32_t page_id = ReadU32(a.data() + off + ctx->p.page_id_offset,
                                 ctx->p.big_endian);
      auto off_b = FindPageIn(*ctx, b, object_id, page_id);
      if (!off_b.has_value()) continue;
      if (std::memcmp(a.data() + off, b.data() + *off_b,
                      ctx->p.page_size) != 0) {
        out->emplace_back(off, *off_b);
      }
    }
  };
  diff(ctx->cap1, ctx->cap2, &ctx->changed12);
  diff(ctx->cap2, ctx->cap3, &ctx->changed23);
  if (ctx->changed12.empty() || ctx->changed23.empty()) {
    return Status::Internal("probe mutations changed no page");
  }
  return Status::Ok();
}

Status InferLsn(Context* ctx) {
  // Global modification counter properties pin the field exactly:
  //  (a) unique per page, (b) small magnitude, (c) its low-order byte
  //  varies (kills byte-shifted reads, whose low byte is padding),
  //  (d,e) pages modified by a probe receive stamps larger than every
  //  stamp in the previous capture (kills checksum bytes, which change
  //  but not monotonically above the global maximum).
  uint64_t best_max = UINT64_MAX;
  int best_offset = -1;
  for (uint16_t o = 0; o + 8 <= 96; ++o) {
    if (ctx->Overlaps(o, 8)) continue;
    std::set<uint64_t> seen;
    bool ok = true;
    uint64_t max1 = 0;
    uint8_t first_low = 0;
    bool low_varies = false;
    size_t low_pos = ctx->p.big_endian ? o + 7 : o;
    for (size_t i = 0; i < ctx->pages.size(); ++i) {
      ByteView page = ctx->Page(i);
      uint64_t v = RdU64(page, o, ctx->p.big_endian);
      if (v == 0 || v >= (1ull << 24) || !seen.insert(v).second) {
        ok = false;
        break;
      }
      max1 = std::max(max1, v);
      if (i == 0) {
        first_low = page[low_pos];
      } else if (page[low_pos] != first_low) {
        low_varies = true;
      }
    }
    if (!ok || !low_varies) continue;
    uint64_t max2 = max1;
    for (auto [off1, off2] : ctx->changed12) {
      uint64_t v2 = ReadU64(ctx->cap2.data() + off2 + o, ctx->p.big_endian);
      if (v2 <= max1 || v2 >= (1ull << 24)) {
        ok = false;
        break;
      }
      max2 = std::max(max2, v2);
    }
    if (!ok) continue;
    for (auto [off2, off3] : ctx->changed23) {
      uint64_t v3 = ReadU64(ctx->cap3.data() + off3 + o, ctx->p.big_endian);
      if (v3 <= max2 || v3 >= (1ull << 24)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (max1 < best_max) {
      best_max = max1;
      best_offset = o;
    }
  }
  if (best_offset < 0) {
    return Status::NotFound("no page-LSN field found");
  }
  ctx->p.lsn_offset = static_cast<uint16_t>(best_offset);
  ctx->Assign(ctx->p.lsn_offset, 8);
  return Status::Ok();
}

// ---- step 7: checksum --------------------------------------------------------

Status InferChecksum(Context* ctx) {
  // Runs last among the header steps: XOR-style folds make the whole page
  // XOR to zero, so *every* byte satisfies "field == checksum of the
  // rest". Exactness comes from (a) restricting to unattributed header
  // bytes and (b) requiring the field to have visibly changed on a page
  // modified by the insert probe.
  for (ChecksumKind kind : {ChecksumKind::kCrc32, ChecksumKind::kFletcher16,
                            ChecksumKind::kXor8}) {
    size_t width = ChecksumWidth(kind);
    for (uint16_t o = 0; o + width <= ctx->p.header_size; ++o) {
      if (ctx->Overlaps(o, static_cast<uint16_t>(width))) continue;
      bool ok = true;
      for (size_t i = 0; i < ctx->pages.size() && ok; ++i) {
        ByteView page = ctx->Page(i);
        ChecksumStream stream(kind);
        stream.Update(ByteView(page.data(), o));
        stream.Update(ByteView(page.data() + o + width,
                               ctx->p.page_size - o - width));
        uint32_t expected = stream.Final();
        uint32_t stored = 0;
        for (size_t b = 0; b < width; ++b) {
          size_t shift = ctx->p.big_endian ? (width - 1 - b) * 8 : b * 8;
          stored |= static_cast<uint32_t>(page[o + b]) << shift;
        }
        ok = stored == expected;
      }
      if (!ok) continue;
      bool observed_change = false;
      for (auto [off1, off2] : ctx->changed12) {
        if (std::memcmp(ctx->cap1.data() + off1 + o,
                        ctx->cap2.data() + off2 + o, width) != 0) {
          observed_change = true;
          break;
        }
      }
      for (auto [off2, off3] : ctx->changed23) {
        if (observed_change) break;
        if (std::memcmp(ctx->cap2.data() + off2 + o,
                        ctx->cap3.data() + off3 + o, width) != 0) {
          observed_change = true;
        }
      }
      if (!observed_change) continue;
      ctx->p.checksum_kind = kind;
      ctx->p.checksum_offset = o;
      ctx->Assign(o, static_cast<uint16_t>(width));
      return Status::Ok();
    }
  }
  ctx->p.checksum_kind = ChecksumKind::kNone;
  ctx->p.checksum_offset = 0;
  return Status::Ok();
}

// ---- step 8: slot directory --------------------------------------------------

Status InferSlots(Context* ctx) {
  auto validate = [&](SlotPlacement placement, uint16_t entry_size,
                      uint16_t base) {
    for (size_t i : ctx->a_pages) {
      ByteView page = ctx->Page(i);
      int count = ctx->a_count[i];
      const std::vector<size_t>& markers = ctx->a_marker_pos[i];
      std::set<size_t> covered;
      std::set<uint16_t> offsets;
      for (int s = 0; s < count; ++s) {
        size_t entry =
            placement == SlotPlacement::kFrontSlotsBackData
                ? base + static_cast<size_t>(s) * entry_size
                : ctx->p.page_size - static_cast<size_t>(s + 1) * entry_size;
        if (entry + entry_size > ctx->p.page_size) return false;
        uint16_t off = RdU16(page, entry, ctx->p.big_endian);
        if (off == 0 || off >= ctx->p.page_size) return false;
        if (!offsets.insert(off).second) return false;
        bool matched = false;
        for (size_t m : markers) {
          if (m > off && m - off <= 64) {
            covered.insert(m);
            matched = true;
          }
        }
        if (!matched) return false;
        if (entry_size == 4) {
          uint16_t len = RdU16(page, entry + 2, ctx->p.big_endian);
          if (len < 16 || len > 4096 || off + len > ctx->p.page_size) {
            return false;
          }
        }
      }
      if (covered.size() != markers.size()) return false;
    }
    return true;
  };

  // Back placement first (fixed base), then front with a base search.
  for (uint16_t entry_size : {uint16_t{4}, uint16_t{2}}) {
    if (validate(SlotPlacement::kBackSlotsFrontData, entry_size, 0)) {
      ctx->p.slot_placement = SlotPlacement::kBackSlotsFrontData;
      ctx->p.slot_has_length = entry_size == 4;
      // Data grows from the header; the first record sits at header_size.
      uint16_t min_offset = 0xFFFF;
      for (size_t i : ctx->a_pages) {
        ByteView page = ctx->Page(i);
        for (int s = 0; s < ctx->a_count[i]; ++s) {
          size_t entry =
              ctx->p.page_size - static_cast<size_t>(s + 1) * entry_size;
          min_offset = std::min(
              min_offset, RdU16(page, entry, ctx->p.big_endian));
        }
      }
      ctx->p.header_size = min_offset;
      return Status::Ok();
    }
  }
  uint16_t search_base = 16;
  for (auto [o, w] : ctx->assigned) {
    search_base = std::max<uint16_t>(search_base, o + w);
  }
  for (uint16_t entry_size : {uint16_t{4}, uint16_t{2}}) {
    for (uint16_t base = search_base; base <= 256; ++base) {
      if (validate(SlotPlacement::kFrontSlotsBackData, entry_size, base)) {
        ctx->p.slot_placement = SlotPlacement::kFrontSlotsBackData;
        ctx->p.slot_has_length = entry_size == 4;
        ctx->p.header_size = base;
        return Status::Ok();
      }
    }
  }
  return Status::NotFound("no slot directory found");
}

std::vector<uint16_t> SlotOffsets(const Context& ctx, ByteView page,
                                  int count) {
  std::vector<uint16_t> out;
  uint16_t entry_size = ctx.p.SlotEntrySize();
  for (int s = 0; s < count; ++s) {
    size_t entry = ctx.p.slot_placement == SlotPlacement::kFrontSlotsBackData
                       ? ctx.p.header_size + static_cast<size_t>(s) * entry_size
                       : ctx.p.page_size -
                             static_cast<size_t>(s + 1) * entry_size;
    out.push_back(static_cast<uint16_t>(RdU16(page, entry, ctx.p.big_endian) &
                                        0x7FFF));
  }
  return out;
}

// ---- step 9: record framing ---------------------------------------------------

Status InferRecordShape(Context* ctx) {
  // Gather record starts from slot offsets on A pages.
  struct Rec {
    size_t page;
    uint16_t off;
  };
  std::vector<Rec> recs;
  for (size_t i : ctx->a_pages) {
    for (uint16_t off : SlotOffsets(*ctx, ctx->Page(i), ctx->a_count[i])) {
      recs.push_back({i, off});
    }
  }
  if (recs.size() < 16) return Status::Internal("too few probe records");

  // Row delimiter: first record byte, constant.
  uint8_t marker = ctx->Page(recs[0].page)[recs[0].off];
  for (const Rec& r : recs) {
    if (ctx->Page(r.page)[r.off] != marker) {
      return Status::NotFound("row delimiter byte is not constant");
    }
  }
  ctx->p.active_marker = marker;

  // Row identifier: find the (column_count=4, numeric_count=2) pair.
  size_t support_none = 0;
  size_t support_u32 = 0;
  size_t support_varint = 0;
  for (const Rec& r : recs) {
    ByteView page = ctx->Page(r.page);
    size_t base = r.off + 2;
    if (page[base] == 4 && page[base + 1] == 2) ++support_none;
    if (page[base + 4] == 4 && page[base + 5] == 2) ++support_u32;
    size_t consumed = 0;
    auto v = DecodeVarint(page, base, &consumed);
    if (v.has_value() && *v >= 1 && *v < (1u << 24) &&
        page[base + consumed] == 4 && page[base + consumed + 1] == 2) {
      ++support_varint;
    }
  }
  size_t full = recs.size();
  if (support_none == full) {
    ctx->p.stores_row_id = false;
    ctx->p.row_id_varint = false;
  } else if (support_u32 == full && support_varint != full) {
    ctx->p.stores_row_id = true;
    ctx->p.row_id_varint = false;
  } else if (support_varint == full) {
    ctx->p.stores_row_id = true;
    ctx->p.row_id_varint = true;
  } else if (support_u32 == full) {
    // Four-byte varints would need row ids >= 2^21; ours are small, so a
    // constant 4-byte gap means a fixed u32 field.
    ctx->p.stores_row_id = true;
    ctx->p.row_id_varint = false;
  } else {
    return Status::NotFound("row-identifier framing is inconsistent");
  }

  // String mode: test both hypotheses against the known first column
  // (marker string) and known numeric values.
  auto test_mode = [&](StringMode mode) {
    ctx->p.string_mode = mode;
    size_t support = 0;
    for (const Rec& r : recs) {
      ByteView page = ctx->Page(r.page);
      RecordWalk w;
      if (!WalkRecord(*ctx, page, r.off, &w)) continue;
      if (w.cc != 4 || w.nc != 2) continue;
      if (mode == StringMode::kInlineSizes) {
        // payload: len u16 (=12) + "CARVPA....."
        if (w.payload_pos + 2 + 6 > page.size()) continue;
        if (RdU16(page, w.payload_pos, ctx->p.big_endian) != 12) continue;
        if (std::memcmp(page.data() + w.payload_pos + 2, kMarkerA, 6) != 0) {
          continue;
        }
      } else {
        // payload: numeric section [pb][pd]
        if (w.payload_pos + 16 > page.size()) continue;
        uint64_t pb = RdU64(page, w.payload_pos, ctx->p.big_endian);
        uint64_t pd = RdU64(page, w.payload_pos + 8, ctx->p.big_endian);
        if (pb < static_cast<uint64_t>(kPbBase) ||
            pb >= static_cast<uint64_t>(kPbBase + 1'000'000)) {
          continue;
        }
        if (pd != static_cast<uint64_t>(kPdValue)) continue;
      }
      ++support;
    }
    return support;
  };
  size_t inline_support = test_mode(StringMode::kInlineSizes);
  size_t dir_support = test_mode(StringMode::kColumnDirectory);
  if (inline_support == full && dir_support != full) {
    ctx->p.string_mode = StringMode::kInlineSizes;
  } else if (dir_support == full && inline_support != full) {
    ctx->p.string_mode = StringMode::kColumnDirectory;
  } else {
    return Status::NotFound(StrFormat(
        "string mode ambiguous (inline=%zu directory=%zu of %zu)",
        inline_support, dir_support, full));
  }

  // Data delimiter value.
  {
    RecordWalk w;
    ByteView page = ctx->Page(recs[0].page);
    if (!WalkRecord(*ctx, page, recs[0].off, &w)) {
      return Status::Internal("record walk failed after framing");
    }
    ctx->p.data_marker_active = page[w.data_marker_pos];
    for (const Rec& r : recs) {
      RecordWalk wi;
      ByteView pg = ctx->Page(r.page);
      if (!WalkRecord(*ctx, pg, r.off, &wi) ||
          pg[wi.data_marker_pos] != ctx->p.data_marker_active) {
        return Status::NotFound("data delimiter byte is not constant");
      }
    }
  }
  return Status::Ok();
}

// ---- step 10+11: free-space and next-page fields -------------------------------

Status InferFreeSpaceAndChain(Context* ctx) {
  // Expected boundary per A page.
  std::map<size_t, uint16_t> expected;
  for (size_t i : ctx->a_pages) {
    ByteView page = ctx->Page(i);
    auto offsets = SlotOffsets(*ctx, page, ctx->a_count[i]);
    if (ctx->p.slot_placement == SlotPlacement::kFrontSlotsBackData) {
      expected[i] = *std::min_element(offsets.begin(), offsets.end());
    } else {
      uint16_t max_end = 0;
      for (uint16_t off : offsets) {
        RecordWalk w;
        if (!WalkRecord(*ctx, page, off, &w)) {
          return Status::Internal("record walk failed for boundary");
        }
        max_end = std::max<uint16_t>(max_end,
                                     static_cast<uint16_t>(off + w.record_len));
      }
      expected[i] = max_end;
    }
  }
  bool found = false;
  for (uint16_t o = 0; o + 2 <= 96 && !found; ++o) {
    if (ctx->Overlaps(o, 2)) continue;
    bool ok = true;
    for (size_t i : ctx->a_pages) {
      if (RdU16(ctx->Page(i), o, ctx->p.big_endian) != expected[i]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ctx->p.free_space_offset = o;
      ctx->Assign(o, 2);
      found = true;
    }
  }
  if (!found) return Status::NotFound("no free-space boundary field");

  // Next-page chain across A pages.
  std::map<uint32_t, size_t> by_id;
  uint32_t max_id = 0;
  for (size_t i : ctx->a_pages) {
    uint32_t id =
        RdU32(ctx->Page(i), ctx->p.page_id_offset, ctx->p.big_endian);
    by_id[id] = i;
    max_id = std::max(max_id, id);
  }
  for (uint16_t o = 0; o + 4 <= 96; ++o) {
    if (ctx->Overlaps(o, 4)) continue;
    bool ok = true;
    for (auto [id, i] : by_id) {
      uint32_t v = RdU32(ctx->Page(i), o, ctx->p.big_endian);
      uint32_t want = id == max_id ? 0 : id + 1;
      if (v != want) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ctx->p.next_page_offset = o;
      ctx->Assign(o, 4);
      return Status::Ok();
    }
  }
  return Status::NotFound("no next-page chain field");
}

// ---- step 12: delete strategy ----------------------------------------------------

Status InferDeleteStrategy(Context* ctx) {
  std::string victim = MarkerA(ctx->options.delete_victim);
  // Locate the victim's page/slot in capture 2.
  auto hits = FindAll(ctx->cap2, 0, ctx->cap2.size(), victim);
  if (hits.size() != 1) {
    return Status::Internal("victim marker not unique in capture 2");
  }
  size_t page_off2 = hits[0] - hits[0] % ctx->p.page_size;
  ByteView page2(ctx->cap2.data() + page_off2, ctx->p.page_size);
  uint32_t object_id = RdU32(page2, ctx->p.object_id_offset,
                             ctx->p.big_endian);
  uint32_t page_id = RdU32(page2, ctx->p.page_id_offset, ctx->p.big_endian);
  auto page_off3 = FindPageIn(*ctx, ctx->cap3, object_id, page_id);
  if (!page_off3.has_value()) {
    return Status::Internal("victim page missing from capture 3");
  }
  ByteView page3(ctx->cap3.data() + *page_off3, ctx->p.page_size);

  // Victim record + slot on the capture-2 page.
  uint16_t count = RdU16(page2, ctx->p.record_count_offset,
                         ctx->p.big_endian);
  auto offsets = SlotOffsets(*ctx, page2, count);
  int victim_slot = -1;
  RecordWalk victim_walk;
  for (size_t s = 0; s < offsets.size(); ++s) {
    RecordWalk w;
    if (!WalkRecord(*ctx, page2, offsets[s], &w)) continue;
    size_t rec_end = offsets[s] + w.record_len;
    if (hits[0] - page_off2 > offsets[s] &&
        hits[0] - page_off2 < rec_end) {
      victim_slot = static_cast<int>(s);
      victim_walk = w;
      break;
    }
  }
  if (victim_slot < 0) {
    return Status::Internal("victim record not found via slot directory");
  }
  uint16_t victim_off = offsets[victim_slot];

  // Classify the byte difference.
  std::vector<size_t> diffs;
  for (size_t o = 0; o < ctx->p.page_size; ++o) {
    if (page2[o] != page3[o]) diffs.push_back(o);
  }
  auto in_field = [&](size_t o, size_t base, size_t width) {
    return o >= base && o < base + width;
  };
  size_t entry_size = ctx->p.SlotEntrySize();
  size_t slot_entry =
      ctx->p.slot_placement == SlotPlacement::kFrontSlotsBackData
          ? ctx->p.header_size + victim_slot * entry_size
          : ctx->p.page_size - (victim_slot + 1) * entry_size;
  for (size_t o : diffs) {
    if (in_field(o, ctx->p.lsn_offset, 8)) continue;
    if (ctx->p.checksum_kind != ChecksumKind::kNone &&
        in_field(o, ctx->p.checksum_offset,
                 ChecksumWidth(ctx->p.checksum_kind))) {
      continue;
    }
    if (o == victim_off) {
      ctx->p.delete_strategy = DeleteStrategy::kRowMarker;
      ctx->p.deleted_marker = page3[o];
      return Status::Ok();
    }
    if (ctx->p.stores_row_id &&
        in_field(o, victim_walk.row_id_pos, victim_walk.row_id_len)) {
      ctx->p.delete_strategy = DeleteStrategy::kRowIdentifier;
      ctx->p.deleted_marker = ctx->p.active_marker;
      return Status::Ok();
    }
    if (o == victim_walk.data_marker_pos) {
      ctx->p.delete_strategy = DeleteStrategy::kDataMarker;
      ctx->p.data_marker_deleted = page3[o];
      ctx->p.deleted_marker = ctx->p.active_marker;
      return Status::Ok();
    }
    if (in_field(o, slot_entry, entry_size)) {
      ctx->p.delete_strategy = DeleteStrategy::kSlotTombstone;
      ctx->p.deleted_marker = ctx->p.active_marker;
      return Status::Ok();
    }
  }
  return Status::NotFound("delete probe changed no classifiable byte");
}

// ---- step 13: index entries -----------------------------------------------------

Status InferIndexFormat(Context* ctx) {
  // Leaf pages: non-data pages that contain many plausible key values.
  struct Entry {
    size_t page;
    uint16_t off;
    uint16_t len;
    uint64_t key;
  };
  std::vector<Entry> entries;
  uint8_t marker = 0;
  bool marker_set = false;
  for (size_t i : ctx->other_pages) {
    ByteView page = ctx->Page(i);
    uint16_t count = RdU16(page, ctx->p.record_count_offset,
                           ctx->p.big_endian);
    if (count == 0 || count > ctx->p.page_size / 8) continue;
    auto offsets = SlotOffsets(*ctx, page, count);
    for (uint16_t off : offsets) {
      if (off == 0 || static_cast<uint32_t>(off) + 16 >= ctx->p.page_size) continue;
      uint16_t len = RdU16(page, off + 2, ctx->p.big_endian);
      if (len < 16 || off + len > ctx->p.page_size) continue;
      // Tail structure: key_count=1, type=int(1), len=8, key bytes.
      size_t tail = off + len - 12;
      if (page[tail] != 1 || page[tail + 1] != 1) continue;
      if (RdU16(page, tail + 2, ctx->p.big_endian) != 8) continue;
      uint64_t key = RdU64(page, tail + 4, ctx->p.big_endian);
      if (key < static_cast<uint64_t>(kPbBase) ||
          key >= static_cast<uint64_t>(kPbBase) + 1'000'000) {
        continue;
      }
      if (!marker_set) {
        marker = page[off];
        marker_set = true;
      } else if (page[off] != marker) {
        continue;
      }
      entries.push_back({i, off, len, key});
    }
  }
  if (entries.size() < 32) {
    return Status::NotFound("too few index leaf entries recognized");
  }
  ctx->p.index_entry_marker = marker;

  // Pointer bytes occupy [off+4, off+len-12). Try each candidate format and
  // verify that the pointed-to record actually carries the key as its pb.
  std::map<uint32_t, size_t> a_by_id;  // heap page id -> page index
  for (size_t i : ctx->a_pages) {
    a_by_id[RdU32(ctx->Page(i), ctx->p.page_id_offset, ctx->p.big_endian)] =
        i;
  }
  auto pb_of_record = [&](uint32_t page_id, uint16_t slot,
                          uint64_t* pb) -> bool {
    auto it = a_by_id.find(page_id);
    if (it == a_by_id.end()) return false;
    ByteView page = ctx->Page(it->second);
    uint16_t count = RdU16(page, ctx->p.record_count_offset,
                           ctx->p.big_endian);
    if (slot >= count) return false;
    auto offsets = SlotOffsets(*ctx, page, count);
    RecordWalk w;
    if (!WalkRecord(*ctx, page, offsets[slot], &w)) return false;
    if (ctx->p.string_mode == StringMode::kColumnDirectory) {
      *pb = RdU64(page, w.payload_pos, ctx->p.big_endian);
    } else {
      // inline: skip [len=12][12 bytes], then [len=8][pb].
      size_t pos = w.payload_pos;
      uint16_t l1 = RdU16(page, pos, ctx->p.big_endian);
      pos += 2 + l1;
      uint16_t l2 = RdU16(page, pos, ctx->p.big_endian);
      if (l2 != 8) return false;
      *pb = RdU64(page, pos + 2, ctx->p.big_endian);
    }
    return true;
  };

  for (PointerFormat format :
       {PointerFormat::kU32PageU16Slot, PointerFormat::kU32PageU16SlotBE,
        PointerFormat::kU48Packed, PointerFormat::kVarintPageSlot}) {
    PageLayoutParams trial = ctx->p;
    trial.pointer_format = format;
    PageFormatter trial_fmt(trial);
    size_t checked = 0;
    size_t matched = 0;
    for (const Entry& e : entries) {
      if (checked >= 200) break;
      ByteView page = ctx->Page(e.page);
      size_t consumed = 0;
      auto ptr = trial_fmt.DecodePointer(page, e.off + 4, &consumed);
      if (!ptr.has_value()) continue;
      size_t expected_len = 4 + consumed + 12;
      if (expected_len != e.len) continue;
      ++checked;
      uint64_t pb = 0;
      if (pb_of_record(ptr->page_id, ptr->slot, &pb) && pb == e.key) {
        ++matched;
      }
    }
    // A handful of internal-node separator entries sneak into the sample
    // (their pointers reference index pages, not heap records), so accept
    // a near-perfect match rate rather than exactness.
    if (checked >= 32 && matched * 10 >= checked * 9) {
      ctx->p.pointer_format = format;
      return Status::Ok();
    }
  }
  return Status::NotFound("no pointer format verified against records");
}

}  // namespace

Result<CarverConfig> ParameterCollector::Collect(BlackBoxDbms* dbms) const {
  Context ctx;
  ctx.options = options_;

  // ---- probe workload (B in Figure 2) ----
  DBFA_RETURN_IF_ERROR(dbms->Execute(StrFormat(
      "CREATE TABLE %s (pa VARCHAR(40), pb INT, pc VARCHAR(40), pd INT)",
      kTableA)));
  for (int i = 0; i < options_.probe_rows_a; ++i) {
    std::string pc =
        StrFormat("CARVPC%s%04d", std::string(i % 5 + 1, 'Q').c_str(), i);
    DBFA_RETURN_IF_ERROR(dbms->Execute(StrFormat(
        "INSERT INTO %s VALUES ('%s', %lld, '%s', %lld)", kTableA,
        MarkerA(i).c_str(), static_cast<long long>(kPbBase + i), pc.c_str(),
        static_cast<long long>(kPdValue))));
  }
  DBFA_RETURN_IF_ERROR(dbms->Execute(StrFormat(
      "CREATE TABLE %s (qa VARCHAR(40), qb INT)", kTableB)));
  for (int i = 0; i < options_.probe_rows_b; ++i) {
    DBFA_RETURN_IF_ERROR(dbms->Execute(
        StrFormat("INSERT INTO %s VALUES ('%s', %d)", kTableB,
                  MarkerB(i).c_str(), 5000 + i)));
  }
  DBFA_RETURN_IF_ERROR(dbms->Execute(
      StrFormat("CREATE INDEX carv_probe_idx ON %s (pb)", kTableA)));
  DBFA_ASSIGN_OR_RETURN(ctx.cap1, dbms->CaptureStorage());

  // Insert probe (free-space / LSN movement).
  DBFA_RETURN_IF_ERROR(dbms->Execute(StrFormat(
      "INSERT INTO %s VALUES ('CARVNEWROW99', %lld, 'CARVPCNEW', %lld)",
      kTableA, static_cast<long long>(kPbBase + 999999),
      static_cast<long long>(kPdValue))));
  DBFA_ASSIGN_OR_RETURN(ctx.cap2, dbms->CaptureStorage());

  // Delete probe (delete-strategy classification).
  DBFA_RETURN_IF_ERROR(dbms->Execute(
      StrFormat("DELETE FROM %s WHERE pa = '%s'", kTableA,
                MarkerA(options_.delete_victim).c_str())));
  DBFA_ASSIGN_OR_RETURN(ctx.cap3, dbms->CaptureStorage());

  // ---- inference ----
  DBFA_RETURN_IF_ERROR(InferPageGeometry(&ctx));
  // Try every surviving geometry interpretation: an incorrect byte order
  // passes the local checks of step 1+2 but fails one of the later steps
  // (typically LSN or slot inference), so the pipeline self-validates.
  Status last_error = Status::Internal("no geometry candidate");
  uint32_t page_size = ctx.p.page_size;
  for (const Context::Geometry& geometry : ctx.geometry_candidates) {
    ctx.p = PageLayoutParams();
    ctx.p.page_size = page_size;
    ctx.p.big_endian = geometry.be;
    ctx.p.record_count_offset = geometry.record_count_offset;
    ctx.p.page_id_offset = geometry.page_id_offset;
    ctx.assigned.clear();
    ctx.Assign(geometry.record_count_offset, 2);
    ctx.Assign(geometry.page_id_offset, 4);
    ctx.changed12.clear();
    ctx.changed23.clear();

    Status attempt = [&]() -> Status {
      DBFA_RETURN_IF_ERROR(InferMagic(&ctx));
      DBFA_RETURN_IF_ERROR(InferObjectId(&ctx));
      DBFA_RETURN_IF_ERROR(InferPageType(&ctx));
      DBFA_RETURN_IF_ERROR(ComputeChangedPages(&ctx));
      DBFA_RETURN_IF_ERROR(InferLsn(&ctx));
      DBFA_RETURN_IF_ERROR(InferSlots(&ctx));
      DBFA_RETURN_IF_ERROR(InferRecordShape(&ctx));
      DBFA_RETURN_IF_ERROR(InferFreeSpaceAndChain(&ctx));
      DBFA_RETURN_IF_ERROR(InferChecksum(&ctx));
      DBFA_RETURN_IF_ERROR(InferDeleteStrategy(&ctx));
      DBFA_RETURN_IF_ERROR(InferIndexFormat(&ctx));
      return Status::Ok();
    }();
    if (!attempt.ok()) {
      last_error = attempt;
      continue;
    }
    ctx.p.dialect = dbms->VendorName();
    DBFA_RETURN_IF_ERROR(ctx.p.Validate());
    CarverConfig config;
    config.params = ctx.p;
    config.catalog_object_id = ctx.catalog_object_id;
    return config;
  }
  return last_error;
}

}  // namespace dbfa
