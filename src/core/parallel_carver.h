// Parallel chunked carving pipeline. Same inputs and byte-identical
// outputs as the serial Carver (see docs/parallel_carving.md for the
// equivalence argument), but page detection and content decoding fan out
// over a reusable worker pool:
//
//   wave 1 — detection: the image is split into page-aligned chunks (with
//     one page of overlap so boundary-straddling pages are never missed);
//     each chunk task probes every detection-grid offset in its range and
//     records candidate pages.
//   merge  — candidates are sorted by image offset, overlap duplicates are
//     deduplicated by offset, and the serial scanner's cursor rule
//     ("accepting a page advances the cursor by a full page") is replayed
//     over the candidate list, yielding exactly the serial page list
//     regardless of thread count or chunk size.
//   pass 2 — catalog reconstruction runs serially (it touches only the few
//     catalog pages and its output gates typed decoding).
//   wave 2 — content: contiguous ranges of the accepted page list are
//     decoded concurrently; per-range outputs are concatenated in range
//     order, reproducing the serial artifact ordering.
#ifndef DBFA_CORE_PARALLEL_CARVER_H_
#define DBFA_CORE_PARALLEL_CARVER_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/thread_pool.h"
#include "core/carver.h"

namespace dbfa {

class ParallelCarver {
 public:
  /// Owns a pool of options.num_threads workers (0 = hardware concurrency).
  explicit ParallelCarver(CarverConfig config, CarveOptions options = {});

  /// Borrows `pool` (must outlive the carver); options.num_threads is
  /// ignored in favor of the pool's size.
  ParallelCarver(CarverConfig config, CarveOptions options, ThreadPool* pool);

  const CarverConfig& config() const { return serial_.config(); }
  size_t thread_count() const { return pool_->thread_count(); }

  /// Reconstructs all artifacts from `image`; byte-identical to
  /// Carver(config, options).Carve(image).
  Result<CarveResult> Carve(ByteView image) const;

  /// Runs all configs over one image on a shared pool, fanning out one
  /// task per (config, chunk) during detection and one per (config,
  /// page range) during content decoding. Results match
  /// Carver::CarveMulti element-wise, same order.
  static Result<std::vector<CarveResult>> CarveMulti(
      ByteView image, const std::vector<CarverConfig>& configs,
      CarveOptions options = {});

 private:
  static Result<std::vector<CarveResult>> CarveAll(
      ByteView image, const std::vector<Carver>& carvers, ThreadPool* pool);

  Carver serial_;  // supplies ProbePage / CarveCatalog / CarveContentRange
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // owned_pool_.get() or a borrowed pool
};

}  // namespace dbfa

#endif  // DBFA_CORE_PARALLEL_CARVER_H_
