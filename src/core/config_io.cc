#include "core/config_io.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "common/strings.h"

namespace dbfa {
namespace {

const char* BoolText(bool b) { return b ? "1" : "0"; }

// Strict decimal parse: digits only (no sign, no whitespace, no empty
// string — strtoull would accept all three and quietly wrap negatives),
// overflow rejected. Config files may come from hostile evidence bundles.
Result<uint64_t> ParseUint(const std::string& v, const std::string& key) {
  if (v.empty()) {
    return Status::InvalidArgument("bad integer for " + key + ": empty");
  }
  uint64_t n = 0;
  for (char c : v) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad integer for " + key + ": " + v);
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (n > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("integer overflow for " + key + ": " +
                                     v);
    }
    n = n * 10 + digit;
  }
  return n;
}

// Strict hex byte: 1-2 hex digits, nothing else.
Result<uint8_t> ParseHexByte(const std::string& v, const std::string& key) {
  if (v.empty() || v.size() > 2) {
    return Status::InvalidArgument("bad hex byte for " + key + ": " + v);
  }
  uint32_t n = 0;
  for (char c : v) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A') + 10;
    } else {
      return Status::InvalidArgument("bad hex byte for " + key + ": " + v);
    }
    n = n * 16 + digit;
  }
  return static_cast<uint8_t>(n);
}

}  // namespace

bool CarverConfig::ForensicallyEquivalent(const CarverConfig& other) const {
  const PageLayoutParams& a = params;
  const PageLayoutParams& b = other.params;
  bool base = a.page_size == b.page_size && a.big_endian == b.big_endian &&
              a.magic_offset == b.magic_offset && a.magic == b.magic &&
              a.page_id_offset == b.page_id_offset &&
              a.object_id_offset == b.object_id_offset &&
              a.page_type_offset == b.page_type_offset &&
              a.record_count_offset == b.record_count_offset &&
              a.free_space_offset == b.free_space_offset &&
              a.next_page_offset == b.next_page_offset &&
              a.lsn_offset == b.lsn_offset &&
              a.checksum_kind == b.checksum_kind &&
              (a.checksum_kind == ChecksumKind::kNone ||
               a.checksum_offset == b.checksum_offset) &&
              a.header_size == b.header_size &&
              a.slot_placement == b.slot_placement &&
              a.slot_has_length == b.slot_has_length &&
              a.stores_row_id == b.stores_row_id &&
              (!a.stores_row_id || a.row_id_varint == b.row_id_varint) &&
              a.string_mode == b.string_mode &&
              a.delete_strategy == b.delete_strategy &&
              a.active_marker == b.active_marker &&
              a.data_marker_active == b.data_marker_active &&
              a.pointer_format == b.pointer_format &&
              a.index_entry_marker == b.index_entry_marker &&
              catalog_object_id == other.catalog_object_id;
  if (!base) return false;
  // Deleted-marker values are observable only for the strategy in use.
  switch (a.delete_strategy) {
    case DeleteStrategy::kRowMarker:
      return a.deleted_marker == b.deleted_marker;
    case DeleteStrategy::kDataMarker:
      return a.data_marker_deleted == b.data_marker_deleted;
    case DeleteStrategy::kRowIdentifier:
    case DeleteStrategy::kSlotTombstone:
      return true;
  }
  return true;
}

std::string ConfigToText(const CarverConfig& config) {
  const PageLayoutParams& p = config.params;
  std::string out;
  out += "# DBCarver page-layout configuration\n";
  out += StrFormat("dialect = %s\n", p.dialect.c_str());
  out += StrFormat("page_size = %u\n", p.page_size);
  out += StrFormat("big_endian = %s\n", BoolText(p.big_endian));
  out += StrFormat("magic_offset = %u\n", p.magic_offset);
  out += "magic =";
  for (uint8_t b : p.magic) out += StrFormat(" %02X", b);
  out += "\n";
  out += StrFormat("page_id_offset = %u\n", p.page_id_offset);
  out += StrFormat("object_id_offset = %u\n", p.object_id_offset);
  out += StrFormat("page_type_offset = %u\n", p.page_type_offset);
  out += StrFormat("record_count_offset = %u\n", p.record_count_offset);
  out += StrFormat("free_space_offset = %u\n", p.free_space_offset);
  out += StrFormat("next_page_offset = %u\n", p.next_page_offset);
  out += StrFormat("lsn_offset = %u\n", p.lsn_offset);
  out += StrFormat("checksum_kind = %s\n",
                   ChecksumKindName(p.checksum_kind));
  out += StrFormat("checksum_offset = %u\n", p.checksum_offset);
  out += StrFormat("header_size = %u\n", p.header_size);
  out += StrFormat("slot_placement = %s\n",
                   SlotPlacementName(p.slot_placement));
  out += StrFormat("slot_has_length = %s\n", BoolText(p.slot_has_length));
  out += StrFormat("stores_row_id = %s\n", BoolText(p.stores_row_id));
  out += StrFormat("row_id_varint = %s\n", BoolText(p.row_id_varint));
  out += StrFormat("string_mode = %s\n", StringModeName(p.string_mode));
  out += StrFormat("delete_strategy = %s\n",
                   DeleteStrategyName(p.delete_strategy));
  out += StrFormat("active_marker = %02X\n", p.active_marker);
  out += StrFormat("deleted_marker = %02X\n", p.deleted_marker);
  out += StrFormat("data_marker_active = %02X\n", p.data_marker_active);
  out += StrFormat("data_marker_deleted = %02X\n", p.data_marker_deleted);
  out += StrFormat("pointer_format = %s\n",
                   PointerFormatName(p.pointer_format));
  out += StrFormat("index_entry_marker = %02X\n", p.index_entry_marker);
  out += StrFormat("catalog_object_id = %u\n", config.catalog_object_id);
  return out;
}

// GCC 12's -Wmaybe-uninitialized misfires on the Result<std::string>
// returned by the `get` lambda below: it models the moved-from
// std::optional's string storage as possibly-uninitialized even though
// Result's value is only read after ok(). Clang and clang-tidy check this
// function with no suppression.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

Result<CarverConfig> ConfigFromText(const std::string& text) {
  std::map<std::string, std::string> kv;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("bad config line: " +
                                     std::string(line));
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument("bad config line: " +
                                     std::string(line));
    }
    if (!kv.emplace(ToLower(key), value).second) {
      return Status::InvalidArgument("duplicate config key: " + key);
    }
  }
  std::set<std::string> used;
  auto get = [&](const char* key) -> Result<std::string> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return Status::InvalidArgument(std::string("missing key: ") + key);
    }
    used.insert(key);
    return it->second;
  };
  auto get_uint = [&](const char* key) -> Result<uint64_t> {
    DBFA_ASSIGN_OR_RETURN(std::string v, get(key));
    return ParseUint(v, key);
  };
  auto get_bool = [&](const char* key) -> Result<bool> {
    DBFA_ASSIGN_OR_RETURN(std::string v, get(key));
    if (v != "0" && v != "1") {
      return Status::InvalidArgument(std::string("bad bool for ") + key +
                                     ": " + v);
    }
    return v == "1";
  };
  auto get_hex_byte = [&](const char* key) -> Result<uint8_t> {
    DBFA_ASSIGN_OR_RETURN(std::string v, get(key));
    return ParseHexByte(v, key);
  };

  CarverConfig config;
  PageLayoutParams& p = config.params;
  DBFA_ASSIGN_OR_RETURN(p.dialect, get("dialect"));
  DBFA_ASSIGN_OR_RETURN(uint64_t page_size, get_uint("page_size"));
  if (page_size > UINT32_MAX) {
    // Truncating here could alias a hostile value onto a valid page size
    // and let the rest of the config parse into a half-sane state.
    return Status::InvalidArgument(
        StrFormat("page_size out of range: %llu",
                  static_cast<unsigned long long>(page_size)));
  }
  p.page_size = static_cast<uint32_t>(page_size);
  DBFA_ASSIGN_OR_RETURN(p.big_endian, get_bool("big_endian"));
  auto u16_field = [&](const char* key, uint16_t* out) -> Status {
    DBFA_ASSIGN_OR_RETURN(uint64_t v, get_uint(key));
    if (v > UINT16_MAX) {
      return Status::InvalidArgument(
          StrFormat("%s out of range: %llu", key,
                    static_cast<unsigned long long>(v)));
    }
    *out = static_cast<uint16_t>(v);
    return Status::Ok();
  };
  DBFA_RETURN_IF_ERROR(u16_field("magic_offset", &p.magic_offset));
  {
    DBFA_ASSIGN_OR_RETURN(std::string magic_text, get("magic"));
    p.magic.clear();
    for (const std::string& tok : Split(magic_text, ' ')) {
      std::string t(Trim(tok));
      if (t.empty()) continue;
      DBFA_ASSIGN_OR_RETURN(uint8_t b, ParseHexByte(t, "magic"));
      p.magic.push_back(b);
    }
  }
  DBFA_RETURN_IF_ERROR(u16_field("page_id_offset", &p.page_id_offset));
  DBFA_RETURN_IF_ERROR(u16_field("object_id_offset", &p.object_id_offset));
  DBFA_RETURN_IF_ERROR(u16_field("page_type_offset", &p.page_type_offset));
  DBFA_RETURN_IF_ERROR(
      u16_field("record_count_offset", &p.record_count_offset));
  DBFA_RETURN_IF_ERROR(u16_field("free_space_offset", &p.free_space_offset));
  DBFA_RETURN_IF_ERROR(u16_field("next_page_offset", &p.next_page_offset));
  DBFA_RETURN_IF_ERROR(u16_field("lsn_offset", &p.lsn_offset));
  {
    DBFA_ASSIGN_OR_RETURN(std::string kind, get("checksum_kind"));
    if (kind == "none") {
      p.checksum_kind = ChecksumKind::kNone;
    } else if (kind == "crc32") {
      p.checksum_kind = ChecksumKind::kCrc32;
    } else if (kind == "fletcher16") {
      p.checksum_kind = ChecksumKind::kFletcher16;
    } else if (kind == "xor8") {
      p.checksum_kind = ChecksumKind::kXor8;
    } else {
      return Status::InvalidArgument("bad checksum_kind: " + kind);
    }
  }
  DBFA_RETURN_IF_ERROR(u16_field("checksum_offset", &p.checksum_offset));
  DBFA_RETURN_IF_ERROR(u16_field("header_size", &p.header_size));
  {
    DBFA_ASSIGN_OR_RETURN(std::string v, get("slot_placement"));
    if (v == "front_slots_back_data") {
      p.slot_placement = SlotPlacement::kFrontSlotsBackData;
    } else if (v == "back_slots_front_data") {
      p.slot_placement = SlotPlacement::kBackSlotsFrontData;
    } else {
      return Status::InvalidArgument("bad slot_placement: " + v);
    }
  }
  DBFA_ASSIGN_OR_RETURN(p.slot_has_length, get_bool("slot_has_length"));
  DBFA_ASSIGN_OR_RETURN(p.stores_row_id, get_bool("stores_row_id"));
  DBFA_ASSIGN_OR_RETURN(p.row_id_varint, get_bool("row_id_varint"));
  {
    DBFA_ASSIGN_OR_RETURN(std::string v, get("string_mode"));
    if (v == "inline_sizes") {
      p.string_mode = StringMode::kInlineSizes;
    } else if (v == "column_directory") {
      p.string_mode = StringMode::kColumnDirectory;
    } else {
      return Status::InvalidArgument("bad string_mode: " + v);
    }
  }
  {
    DBFA_ASSIGN_OR_RETURN(std::string v, get("delete_strategy"));
    if (v == "row_marker") {
      p.delete_strategy = DeleteStrategy::kRowMarker;
    } else if (v == "data_marker") {
      p.delete_strategy = DeleteStrategy::kDataMarker;
    } else if (v == "row_identifier") {
      p.delete_strategy = DeleteStrategy::kRowIdentifier;
    } else if (v == "slot_tombstone") {
      p.delete_strategy = DeleteStrategy::kSlotTombstone;
    } else {
      return Status::InvalidArgument("bad delete_strategy: " + v);
    }
  }
  DBFA_ASSIGN_OR_RETURN(p.active_marker, get_hex_byte("active_marker"));
  DBFA_ASSIGN_OR_RETURN(p.deleted_marker, get_hex_byte("deleted_marker"));
  DBFA_ASSIGN_OR_RETURN(p.data_marker_active,
                        get_hex_byte("data_marker_active"));
  DBFA_ASSIGN_OR_RETURN(p.data_marker_deleted,
                        get_hex_byte("data_marker_deleted"));
  {
    DBFA_ASSIGN_OR_RETURN(std::string v, get("pointer_format"));
    if (v == "u32page_u16slot") {
      p.pointer_format = PointerFormat::kU32PageU16Slot;
    } else if (v == "u32page_u16slot_be") {
      p.pointer_format = PointerFormat::kU32PageU16SlotBE;
    } else if (v == "varint_page_slot") {
      p.pointer_format = PointerFormat::kVarintPageSlot;
    } else if (v == "u48_packed") {
      p.pointer_format = PointerFormat::kU48Packed;
    } else {
      return Status::InvalidArgument("bad pointer_format: " + v);
    }
  }
  DBFA_ASSIGN_OR_RETURN(p.index_entry_marker,
                        get_hex_byte("index_entry_marker"));
  DBFA_ASSIGN_OR_RETURN(uint64_t cat, get_uint("catalog_object_id"));
  if (cat > UINT32_MAX) {
    return Status::InvalidArgument(
        StrFormat("catalog_object_id out of range: %llu",
                  static_cast<unsigned long long>(cat)));
  }
  config.catalog_object_id = static_cast<uint32_t>(cat);
  // Every recognized key has been consumed above; anything left is a typo
  // or an injection attempt, and silently ignoring it would carve with a
  // different configuration than the analyst believes they loaded.
  for (const auto& [key, value] : kv) {
    if (used.find(key) == used.end()) {
      return Status::InvalidArgument("unknown config key: " + key);
    }
  }
  DBFA_RETURN_IF_ERROR(p.Validate());
  return config;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Status SaveConfig(const std::string& path, const CarverConfig& config) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  std::string text = ConfigToText(config);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<CarverConfig> LoadConfig(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ConfigFromText(text);
}

}  // namespace dbfa
