#include "core/parallel_carver.h"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace dbfa {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Offsets the serial cursor can ever probe are sums of scan steps and
/// page sizes starting from 0, i.e. multiples of gcd(step, page_size).
/// When step divides page_size (the common case: sector-granularity scans
/// of 4/8/16 KB pages) the grid is simply every step-th offset.
size_t ProbeGrid(size_t step, size_t page_size) {
  if (page_size % step == 0) return step;
  return std::gcd(step, page_size);
}

/// One (config, chunk) detection task: probe offsets [begin, end).
struct DetectTask {
  size_t config_index = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// One (config, page range) content task over accepted pages [begin, end).
struct ContentTask {
  size_t config_index = 0;
  size_t begin = 0;
  size_t end = 0;
};

struct DetectOut {
  std::vector<CarvedPage> candidates;
  size_t probes = 0;
};

struct ContentOut {
  std::vector<CarvedRecord> records;
  std::vector<CarvedIndexEntry> entries;
};

/// Pages per detection chunk: honor the option, else size chunks so each
/// worker sees a handful of tasks (load balancing against uneven garbage /
/// page density) without drowning in scheduling overhead.
size_t ChunkPages(const CarveOptions& options, size_t image_size,
                  size_t page_size, size_t threads) {
  if (options.chunk_pages > 0) return options.chunk_pages;
  size_t image_pages = image_size / page_size + 1;
  size_t target_tasks = threads * 4;
  size_t pages = (image_pages + target_tasks - 1) / target_tasks;
  return std::max<size_t>(16, pages);
}

}  // namespace

ParallelCarver::ParallelCarver(CarverConfig config, CarveOptions options)
    : serial_(std::move(config), options),
      owned_pool_(new ThreadPool(options.num_threads)),
      pool_(owned_pool_.get()) {}

ParallelCarver::ParallelCarver(CarverConfig config, CarveOptions options,
                               ThreadPool* pool)
    : serial_(std::move(config), options), pool_(pool) {}

Result<CarveResult> ParallelCarver::Carve(ByteView image) const {
  std::vector<Carver> carvers{serial_};
  DBFA_ASSIGN_OR_RETURN(std::vector<CarveResult> results,
                        CarveAll(image, carvers, pool_));
  return std::move(results[0]);
}

Result<std::vector<CarveResult>> ParallelCarver::CarveMulti(
    ByteView image, const std::vector<CarverConfig>& configs,
    CarveOptions options) {
  ThreadPool pool(options.num_threads);
  std::vector<Carver> carvers;
  carvers.reserve(configs.size());
  for (const CarverConfig& config : configs) {
    carvers.emplace_back(config, options);
  }
  return CarveAll(image, carvers, &pool);
}

Result<std::vector<CarveResult>> ParallelCarver::CarveAll(
    ByteView image, const std::vector<Carver>& carvers, ThreadPool* pool) {
  for (const Carver& carver : carvers) {
    DBFA_RETURN_IF_ERROR(carver.config().params.Validate());
  }
  size_t n_configs = carvers.size();
  std::vector<CarveResult> results(n_configs);
  for (size_t ci = 0; ci < n_configs; ++ci) {
    results[ci].dialect = carvers[ci].config().params.dialect;
    results[ci].image_size = image.size();
    results[ci].stats.bytes_scanned = image.size();
  }
  if (n_configs == 0) return results;

  // ---- Wave 1: chunked page detection, one task per (config, chunk) ----
  //
  // Chunk workers probe every grid offset in their range — unlike the
  // serial cursor they cannot skip the interior of an accepted page,
  // because the page may have started in another worker's chunk. The
  // merge below replays the cursor rule to drop interior false positives.
  auto detect_start = std::chrono::steady_clock::now();
  std::vector<DetectTask> detect_tasks;
  for (size_t ci = 0; ci < n_configs; ++ci) {
    const PageLayoutParams& p = carvers[ci].config().params;
    if (image.size() < p.page_size) continue;
    size_t chunk_bytes =
        ChunkPages(carvers[ci].options_, image.size(), p.page_size,
                   pool->thread_count()) *
        p.page_size;
    // Probing past last_start cannot yield a page; clamp tasks there.
    size_t last_start = image.size() - p.page_size;
    for (size_t begin = 0; begin <= last_start; begin += chunk_bytes) {
      // One page of overlap past the chunk end: a page straddling the
      // boundary starts before `end` and is probed here; the same offsets
      // at the head of the next chunk are deduplicated by the merge.
      size_t end = std::min(begin + chunk_bytes + p.page_size,
                            last_start + 1);
      detect_tasks.push_back({ci, begin, end});
    }
  }
  std::vector<DetectOut> detect_outs(detect_tasks.size());
  pool->ParallelFor(detect_tasks.size(), [&](size_t t) {
    const DetectTask& task = detect_tasks[t];
    const Carver& carver = carvers[task.config_index];
    const PageLayoutParams& p = carver.config().params;
    size_t step = carver.options_.scan_step == 0 ? 512
                                                 : carver.options_.scan_step;
    size_t grid = ProbeGrid(step, p.page_size);
    DetectOut& out = detect_outs[t];
    for (size_t offset = task.begin; offset < task.end; offset += grid) {
      ++out.probes;
      std::optional<CarvedPage> page = carver.ProbePage(image, offset);
      if (page.has_value()) out.candidates.push_back(*page);
    }
  });

  // Deterministic merge per config: sort candidates by offset, drop
  // overlap duplicates, then replay the serial cursor: a candidate is a
  // real page iff the cursor (which jumps a full page on every accept and
  // otherwise advances in scan steps) would actually probe its offset.
  for (size_t t = 0; t < detect_tasks.size(); ++t) {
    results[detect_tasks[t].config_index].stats.pages_probed +=
        detect_outs[t].probes;
  }
  for (size_t ci = 0; ci < n_configs; ++ci) {
    const PageLayoutParams& p = carvers[ci].config().params;
    size_t step = carvers[ci].options_.scan_step == 0
                      ? 512
                      : carvers[ci].options_.scan_step;
    std::vector<CarvedPage> candidates;
    for (size_t t = 0; t < detect_tasks.size(); ++t) {
      if (detect_tasks[t].config_index != ci) continue;
      candidates.insert(candidates.end(), detect_outs[t].candidates.begin(),
                        detect_outs[t].candidates.end());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const CarvedPage& a, const CarvedPage& b) {
                return a.image_offset < b.image_offset;
              });
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 [](const CarvedPage& a, const CarvedPage& b) {
                                   return a.image_offset == b.image_offset;
                                 }),
                     candidates.end());
    CarveResult& result = results[ci];
    size_t cursor = 0;
    for (const CarvedPage& cand : candidates) {
      if (cand.image_offset < cursor) continue;  // interior of accepted page
      if ((cand.image_offset - cursor) % step != 0) {
        continue;  // the serial cursor would step over this offset
      }
      if (!cand.checksum_ok) ++result.stats.checksum_failures;
      result.pages.push_back(cand);
      cursor = cand.image_offset + p.page_size;
    }
    result.stats.pages_accepted = result.pages.size();
  }
  double detect_seconds = SecondsSince(detect_start);

  // ---- Pass 2: catalog reconstruction (serial; few pages, gates typing) --
  for (size_t ci = 0; ci < n_configs; ++ci) {
    auto catalog_start = std::chrono::steady_clock::now();
    carvers[ci].CarveCatalog(image, &results[ci]);
    results[ci].stats.catalog_seconds = SecondsSince(catalog_start);
    results[ci].stats.detect_seconds = detect_seconds;
  }

  // ---- Wave 2: content decoding, one task per (config, page range) ----
  //
  // Each result gets its string pool before the wave starts; decode
  // workers intern into it concurrently (the pool is sharded internally).
  for (size_t ci = 0; ci < n_configs; ++ci) {
    if (carvers[ci].options_.intern_strings) {
      results[ci].string_pool = std::make_shared<StringPool>();
    }
  }
  auto content_start = std::chrono::steady_clock::now();
  std::vector<ContentTask> content_tasks;
  for (size_t ci = 0; ci < n_configs; ++ci) {
    size_t n_pages = results[ci].pages.size();
    if (n_pages == 0) continue;
    size_t n_ranges = std::min(n_pages, pool->thread_count() * 4);
    size_t per_range = (n_pages + n_ranges - 1) / n_ranges;
    for (size_t begin = 0; begin < n_pages; begin += per_range) {
      content_tasks.push_back(
          {ci, begin, std::min(begin + per_range, n_pages)});
    }
  }
  std::vector<ContentOut> content_outs(content_tasks.size());
  pool->ParallelFor(content_tasks.size(), [&](size_t t) {
    const ContentTask& task = content_tasks[t];
    ContentOut& out = content_outs[t];
    carvers[task.config_index].CarveContentRange(
        image, results[task.config_index], task.begin, task.end,
        &out.records, &out.entries);
  });

  // Ranges are contiguous and tasks are ordered, so concatenation in task
  // order reproduces the serial artifact ordering exactly.
  double content_seconds = SecondsSince(content_start);
  for (size_t t = 0; t < content_tasks.size(); ++t) {
    CarveResult& result = results[content_tasks[t].config_index];
    ContentOut& out = content_outs[t];
    result.records.insert(result.records.end(),
                          std::make_move_iterator(out.records.begin()),
                          std::make_move_iterator(out.records.end()));
    result.index_entries.insert(result.index_entries.end(),
                                std::make_move_iterator(out.entries.begin()),
                                std::make_move_iterator(out.entries.end()));
  }
  for (size_t ci = 0; ci < n_configs; ++ci) {
    results[ci].stats.content_seconds = content_seconds;
  }
  return results;
}

}  // namespace dbfa
