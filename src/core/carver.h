// The carver (Figure 2, component F): reconstructs database content from
// any byte stream — disk images, RAM snapshots, or arbitrary files —
// using only a page-layout configuration. No DBMS, no filesystem.
//
// Pipeline per image:
//   1. page detection  — scan at sector granularity for pages matching the
//      config's magic + sane header fields; checksums classify corruption.
//   2. catalog pass    — decode pages of the catalog object untyped (the
//      catalog's column shape is universal: strings + integers), recover
//      table schemas and index metadata, including delete-marked entries
//      (dropped objects).
//   3. content pass    — decode data pages (typed when a schema is known),
//      classify every record active/deleted per the dialect's delete
//      strategy, parse index pages into (key, pointer) entries.
//   4. raw-scan pass   — slot-directory-independent record scan on pages
//      whose structure looks damaged, recovering what slots no longer
//      reference.
#ifndef DBFA_CORE_CARVER_H_
#define DBFA_CORE_CARVER_H_

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "core/artifacts.h"
#include "core/config_io.h"

namespace dbfa {

struct CarveOptions {
  /// Scan step for page detection. 512 models disk-sector granularity;
  /// images assembled from files and sector-sized garbage runs are always
  /// detected. Set to 1 for exhaustive (slow) scans of arbitrary blobs.
  size_t scan_step = 512;
  /// Parse pages whose checksum fails (flagged in CarvedPage::checksum_ok).
  bool parse_bad_checksum_pages = true;
  /// Run the slot-independent raw scan on pages whose slot directory is
  /// missing records or damaged.
  bool raw_scan_fallback = true;
  /// Worker threads for ParallelCarver; 0 means hardware concurrency.
  /// Ignored by the serial Carver.
  size_t num_threads = 0;
  /// Pages per detection chunk for ParallelCarver; 0 sizes chunks
  /// automatically from the image and thread count. Ignored by the serial
  /// Carver. Exposed mainly so tests can force pages onto chunk edges.
  size_t chunk_pages = 0;
  /// Intern string cells of carved records into a per-result StringPool
  /// (CarveResult::string_pool): each distinct value is stored once in an
  /// arena instead of one heap std::string per cell. Off gives
  /// self-contained owning records (the benches' allocation baseline).
  bool intern_strings = true;
};

class Carver {
 public:
  explicit Carver(CarverConfig config, CarveOptions options = {});

  const CarverConfig& config() const { return config_; }

  /// Reconstructs all artifacts of this config's dialect from `image`.
  Result<CarveResult> Carve(ByteView image) const;

  /// Runs one carver per candidate config over the same image (multi-DBMS
  /// images); returns one result per config, same order.
  static Result<std::vector<CarveResult>> CarveMulti(
      ByteView image, const std::vector<CarverConfig>& configs,
      CarveOptions options = {});

 private:
  /// True when the bytes at `offset` look like a page of this dialect.
  bool LooksLikePage(ByteView image, size_t offset, bool* checksum_ok) const;

  /// Probes one offset; returns the decoded page header when the bytes
  /// there look like a page of this dialect. Position-independent: reads
  /// only [offset, offset + page_size).
  std::optional<CarvedPage> ProbePage(ByteView image, size_t offset) const;

  /// Pass 2: catalog reconstruction over base->pages (reads the page list,
  /// fills catalog_entries / schemas / indexes / dropped_objects).
  void CarveCatalog(ByteView image, CarveResult* result) const;

  /// Passes 3-4 over pages [begin, end) of base.pages: decodes data and
  /// index pages in page order, appending to *records and *entries exactly
  /// as the serial content pass would. `base` supplies page metadata and
  /// schemas and is never written, so disjoint ranges can run concurrently.
  void CarveContentRange(ByteView image, const CarveResult& base,
                         size_t begin, size_t end,
                         std::vector<CarvedRecord>* records,
                         std::vector<CarvedIndexEntry>* entries) const;

  void CarveDataPage(ByteView page, size_t page_index, const CarvedPage& meta,
                     const TableSchema* schema, StringPool* pool,
                     std::vector<CarvedRecord>* out) const;
  void CarveIndexPage(ByteView page, size_t page_index,
                      const CarvedPage& meta,
                      std::vector<CarvedIndexEntry>* out) const;

  friend class ParallelCarver;  // reuses the probe + content helpers
  friend class SnapshotRepo;    // store-accelerated detection + per-page decode

  CarverConfig config_;
  PageFormatter fmt_;
  CarveOptions options_;
};

}  // namespace dbfa

#endif  // DBFA_CORE_CARVER_H_
