// Collect a carver configuration from an unknown DBMS (paper Figure 2,
// parameter collector). The collector only gets SQL access and raw
// storage captures — here pointed at a MiniDB whose dialect is chosen on
// the command line, standing in for "a DBMS you have no documentation
// for". The emitted config file then drives a carve.
#include <cstdio>
#include <string>

#include "core/carver.h"
#include "core/parameter_collector.h"
#include "engine/database.h"
#include "storage/dialects.h"

int main(int argc, char** argv) {
  using namespace dbfa;
  std::string dialect = argc > 1 ? argv[1] : "db2_like";

  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "unknown dialect '%s'; options:", dialect.c_str());
    for (const std::string& name : BuiltinDialectNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  MiniDbBlackBox blackbox(db->get());
  ParameterCollector collector;
  std::printf("probing the black-box DBMS (vendor label: %s)...\n",
              blackbox.VendorName().c_str());
  auto config = collector.Collect(&blackbox);
  if (!config.ok()) {
    std::fprintf(stderr, "collection failed: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- collected configuration file ---\n%s\n",
              ConfigToText(*config).c_str());

  // Prove the config works: new content, then carve with it.
  (void)(*db)->ExecuteSql(
      "CREATE TABLE Evidence (id INT, note VARCHAR(40), PRIMARY KEY (id))");
  (void)(*db)->ExecuteSql(
      "INSERT INTO Evidence VALUES (1, 'carved with a collected config')");
  auto image = (*db)->SnapshotDisk();
  if (!image.ok()) return 1;
  Carver carver(*config);
  auto carve = carver.Carve(*image);
  if (!carve.ok()) return 1;
  std::printf("--- carve with the collected config ---\n%s\n",
              carve->Summary().c_str());
  return 0;
}
