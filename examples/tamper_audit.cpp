// Tamper audit: the DBStorageAuditor scenario (paper Section III-B). A
// system administrator edits a database file directly — overwriting a
// salary in place, smuggling a record in, and erasing another — none of
// which the DBMS can log. The auditor exposes all three through
// index/table cross-verification.
#include <cstdio>

#include "auditor/storage_auditor.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

int main() {
  using namespace dbfa;

  DatabaseOptions options;
  options.dialect = "sqlserver_like";
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", 1234);
  if (!workload.Setup(300).ok()) return 1;

  // Locate two victims.
  RowPointer raise_victim{};
  RowPointer erase_victim{};
  (void)db->heap("Accounts")->Scan([&](RowPointer ptr, const Record& rec) {
    if (rec[0] == Value::Int(42)) raise_victim = ptr;
    if (rec[0] == Value::Int(77)) erase_victim = ptr;
    return Status::Ok();
  });

  // --- the attacks (root, hex editor; checksums carefully repaired) -------
  // 1. Change account 42's id in place: the PK index still says 42.
  if (!TamperOverwriteField(db.get(), "Accounts", raise_victim, "Id",
                            Value::Int(990042))
           .ok()) {
    return 1;
  }
  // 2. Smuggle in an account that no INSERT ever created.
  if (!TamperInsertRecord(db.get(), "Accounts",
                          {Value::Int(666), Value::Str("Mallory"),
                           Value::Str("Shadow"), Value::Real(1e9)})
           .ok()) {
    return 1;
  }
  // 3. Erase account 77 outright.
  if (!TamperEraseRecord(db.get(), "Accounts", erase_victim).ok()) return 1;
  std::printf("3 byte-level tamper operations applied (no log entries)\n\n");

  // --- the audit -------------------------------------------------------------
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  auto image = db->SnapshotDisk().value();
  StorageAuditor auditor(config);
  auto report = auditor.Audit(image);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());
  return report->findings.size() >= 3 ? 0 : 1;
}
