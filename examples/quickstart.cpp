// Quickstart: carve deleted rows out of a database image.
//
// 1. Run a small database (any of the eight dialects), delete some rows.
// 2. Snapshot its storage — from here on, no DBMS is involved.
// 3. Carve the image with the dialect's configuration.
// 4. Meta-query the carved relation for delete-marked rows — the query
//    "no DBMS supports" (paper Section II-C, scenario 1).
#include <cstdio>

#include "core/carver.h"
#include "engine/database.h"
#include "metaquery/session.h"
#include "storage/dialects.h"

int main() {
  using namespace dbfa;

  // --- a victim database ---------------------------------------------------
  DatabaseOptions options;
  options.dialect = "postgres_like";
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  for (const char* sql : {
           "CREATE TABLE Customer (Id INT NOT NULL, Name VARCHAR(32), "
           "City VARCHAR(24), PRIMARY KEY (Id))",
           "INSERT INTO Customer VALUES (1, 'Christine', 'Chicago'), "
           "(2, 'James', 'Boston'), (3, 'Christopher', 'Seattle'), "
           "(4, 'Thomas', 'Austin')",
           "DELETE FROM Customer WHERE City = 'Seattle'",
           "UPDATE Customer SET City = 'Denver' WHERE Id = 1",
       }) {
    auto r = (*db)->ExecuteSql(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "sql failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  // --- capture + carve -------------------------------------------------------
  auto image = (*db)->SnapshotDisk();
  if (!image.ok()) return 1;
  std::printf("captured %zu bytes of storage\n\n", image->size());

  CarverConfig config;
  config.params = GetDialect("postgres_like").value();
  Carver carver(config);
  auto carve = carver.Carve(*image);
  if (!carve.ok()) {
    std::fprintf(stderr, "carve failed: %s\n",
                 carve.status().ToString().c_str());
    return 1;
  }
  std::printf("carve summary:\n  %s\n\n", carve->Summary().c_str());

  // --- meta-query the artifacts ---------------------------------------------
  MetaQuerySession session;
  if (auto s = session.RegisterCarve(*carve, "Carv"); !s.ok()) return 1;

  std::printf("SELECT * FROM CarvCustomer WHERE RowStatus = 'DELETED'\n");
  auto deleted = session.Query(
      "SELECT Id, Name, City, PageId, Slot FROM CarvCustomer "
      "WHERE RowStatus = 'DELETED' ORDER BY Id");
  if (!deleted.ok()) return 1;
  std::printf("%s\n", deleted->ToText().c_str());
  std::printf(
      "note the UPDATE pre-image (Christine, Chicago): updates leave\n"
      "their old version behind as a deleted record.\n");
  return 0;
}
