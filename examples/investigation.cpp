// Investigation: the DBDetective end-to-end scenario (paper Figure 4 and
// Section III-A). A DBA disables audit logging, deletes a customer and
// secretly reads a sensitive table, then re-enables logging. The
// investigator carves disk + RAM and cross-checks against the log.
#include <cstdio>

#include "core/carver.h"
#include "detective/dbdetective.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

int main() {
  using namespace dbfa;

  DatabaseOptions options;
  options.dialect = "mysql_like";
  options.buffer_pool_pages = 64;
  auto db = Database::Open(options).value();

  // --- legitimate, fully logged activity -------------------------------------
  SyntheticWorkload accounts(db.get(), "Accounts", 42);
  if (!accounts.Setup(200).ok()) return 1;
  if (!db->ExecuteSql("CREATE TABLE Payroll (Id INT NOT NULL, Name "
                      "VARCHAR(24), Salary DOUBLE, PRIMARY KEY (Id))")
           .ok()) {
    return 1;
  }
  for (int i = 1; i <= 200; ++i) {
    char sql[160];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO Payroll VALUES (%d, 'Employee%03d', %d.00)",
                  i, i, 50000 + i * 13);
    if (!db->ExecuteSql(sql).ok()) return 1;
  }
  if (!db->ExecuteSql("DELETE FROM Accounts WHERE City = 'Chicago'").ok()) {
    return 1;
  }
  // Cache goes cold (e.g. nightly restart); investigators compare RAM
  // against the log window from this point on.
  (void)db->SnapshotDisk();
  (void)db->pager().pool().Clear();
  uint64_t watermark = db->audit_log().entries().back().seq;

  // --- the attack --------------------------------------------------------------
  db->audit_log().SetEnabled(false);
  (void)db->ExecuteSql("DELETE FROM Accounts WHERE Owner = 'Thomas'");
  (void)db->ExecuteSql("SELECT * FROM Payroll");  // exfiltration read
  db->audit_log().SetEnabled(true);
  std::printf("attack done: 1 unlogged DELETE, 1 unlogged SELECT\n\n");

  // --- the investigation ---------------------------------------------------------
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();

  auto disk = db->SnapshotDisk().value();
  Carver disk_carver(config);
  auto disk_carve = disk_carver.Carve(disk).value();

  Bytes ram = db->SnapshotRam();
  CarveOptions ram_options;
  ram_options.scan_step = db->params().page_size;
  Carver ram_carver(config, ram_options);
  auto ram_carve = ram_carver.Carve(ram).value();

  std::printf("disk carve: %s\n", disk_carve.Summary().c_str());
  std::printf("ram carve:  %s\n\n", ram_carve.Summary().c_str());

  AuditLog window = db->audit_log().TailAfter(watermark);
  DbDetective detective(&disk_carve, &db->audit_log(), &ram_carve);
  auto modifications = detective.FindUnattributedModifications();
  if (!modifications.ok()) return 1;

  DbDetective read_detective(&disk_carve, &window, &ram_carve);
  auto reads = read_detective.FindUnloggedReads();
  if (!reads.ok()) return 1;

  std::printf("=== unattributed modifications ===\n");
  for (const auto& m : *modifications) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  std::printf("\n=== unlogged reads (cache patterns) ===\n");
  for (const auto& r : *reads) {
    std::printf("  %s\n", r.ToString().c_str());
  }
  std::printf(
      "\nThe deleted Accounts rows match no logged predicate, and Payroll's "
      "\ncached full-scan pattern matches no logged statement.\n");
  return 0;
}
