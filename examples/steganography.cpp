// Steganography: the Figure 3 scenario (paper Section II-D). Hide a
// message inside the SSBM LINEORDER table with values that violate every
// declared constraint, run all 13 SSBM queries (none sees it), then
// retrieve it forensically — and finally wipe the database's deleted
// residue.
#include <cstdio>

#include "antiforensics/steganography.h"
#include "antiforensics/wiper.h"
#include "engine/database.h"
#include "metaquery/session.h"
#include "storage/dialects.h"
#include "workload/ssbm.h"

int main() {
  using namespace dbfa;

  auto db = Database::Open(DatabaseOptions{}).value();
  SsbmConfig ssbm;
  ssbm.customers = 80;
  ssbm.suppliers = 30;
  ssbm.parts = 80;
  ssbm.date_days = 500;
  ssbm.lineorders = 600;
  if (!LoadSsbm(db.get(), ssbm).ok()) return 1;
  std::printf("SSBM loaded (%d lineorders)\n", ssbm.lineorders);

  // --- hide "Hello_World" (Figure 3) ---------------------------------------
  Record hidden = {Value::Null(),  Value::Null(),  Value::Int(-1),
                   Value::Int(-1), Value::Int(-1), Value::Int(-1),
                   Value::Int(0),  Value::Int(0),  Value::Int(0),
                   Value::Int(0),  Value::Int(0),  Value::Str("Hello_World")};
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Steganographer steg(config);
  if (!steg.HideInDatabase(db.get(), "lineorder", hidden).ok()) return 1;
  std::printf(
      "hidden record written at byte level:\n"
      "  PK (NULL, NULL)   -> absent from the primary-key index\n"
      "  FKs -1            -> never joins with any dimension\n"
      "  shipmode 11 chars -> violates VARCHAR(10)\n\n");

  // --- every SSBM query is blind to it ---------------------------------------
  for (const std::string& qid : SsbmQueryIds()) {
    auto r = RunSsbmQuery(db.get(), qid);
    if (!r.ok()) return 1;
    std::printf("  %s: %zu result rows (hidden record invisible)\n",
                qid.c_str(), r->rows.size());
  }

  // --- retrieval --------------------------------------------------------------
  MetaQuerySession session;
  (void)session.RegisterDatabase(db.get());
  auto message = session.Query(
      "SELECT lo_shipmode FROM lineorder WHERE LENGTH(lo_shipmode) > 10");
  if (!message.ok()) return 1;
  std::printf("\nretrieval by domain violation:\n%s\n",
              message->ToText().c_str());

  auto image = db->SnapshotDisk().value();
  auto found = steg.ExtractHidden(image);
  if (!found.ok()) return 1;
  for (const HiddenRecord& h : *found) {
    std::printf("forensic extractor found: %s with %zu violations\n",
                RecordToString(h.record.values).c_str(),
                h.violations.size());
    for (const ConstraintViolation& v : h.violations) {
      std::printf("    %s: %s\n", v.column.c_str(), v.what.c_str());
    }
  }

  // --- the defensive side: wipe deleted residue --------------------------------
  (void)db->ExecuteSql("DELETE FROM lineorder WHERE lo_quantity < 10");
  Wiper wiper(config);
  auto report = wiper.WipeDatabase(db.get());
  if (!report.ok()) return 1;
  std::printf("\n%s\n", report->ToString().c_str());
  return 0;
}
