// Storage optimizer: the PLI use of database forensics (paper Section IV).
// Timestamps arrive approximately sorted; instead of paying clustered-index
// maintenance, build a Physical Location Index from the storage layout the
// carver exposes and answer range queries with a fraction of the I/O of a
// full scan.
#include <cstdio>

#include "common/rng.h"
#include "engine/database.h"
#include "pli/pli.h"

int main() {
  using namespace dbfa;

  auto db = Database::Open(DatabaseOptions{}).value();
  if (!db->ExecuteSql("CREATE TABLE Events (ts INT NOT NULL, sensor INT, "
                      "reading DOUBLE)")
           .ok()) {
    return 1;
  }
  // Naturally ordered ingest with slight jitter (approximately clustered).
  Rng rng(7);
  const int kRows = 6000;
  for (int i = 0; i < kRows; ++i) {
    int64_t ts = 100000 + i + rng.Uniform(-3, 3);
    char sql[128];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO Events VALUES (%lld, %d, %d.5)",
                  static_cast<long long>(ts), static_cast<int>(i % 16),
                  static_cast<int>(rng.Uniform(0, 100)));
    if (!db->ExecuteSql(sql).ok()) return 1;
  }

  auto pli = PhysicalLocationIndex::BuildFromDatabase(db.get(), "Events",
                                                      "ts", 4);
  if (!pli.ok()) return 1;
  std::printf("PLI built: %zu buckets over %zu pages, clustering factor "
              "%.2f\n\n",
              pli->buckets().size(), pli->total_pages(),
              pli->ClusteringFactor());

  std::printf("%-28s %-14s %-14s\n", "range", "PLI pages", "full-scan pages");
  for (int width : {50, 200, 1000, 4000}) {
    int64_t lo = 100000 + 1000;
    int64_t hi = lo + width;
    auto pages = pli->LookupPages(Value::Int(lo), Value::Int(hi));
    char range[64];
    std::snprintf(range, sizeof(range), "ts in [%lld, %lld]",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    std::printf("%-28s %-14zu %-14zu\n", range, pages.size(),
                pli->total_pages());
  }
  std::printf(
      "\nNarrow ranges read a small superset of the exact pages — without "
      "\nany clustered-index maintenance at ingest time.\n");
  return 0;
}
