// E2 — Figure 1 reproduction: deleted-row recovery per delete-marking
// strategy. For each dialect, delete a fraction of rows and measure how
// many deleted rows the carver recovers with correct values (recall) and
// how many active rows are misclassified (precision).
#include <cstdio>
#include <set>

#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "storage/dialects.h"

int main() {
  using namespace dbfa;
  constexpr int kRows = 1000;
  constexpr int kDeleteEvery = 3;  // delete every 3rd row

  std::printf(
      "E2 / Figure 1 — deleted-record reconstruction per dialect\n"
      "%d rows inserted, every %dth deleted; carve of the disk image\n\n",
      kRows, kDeleteEvery);
  std::printf("%-16s %-18s %-9s %-9s %-10s %-10s\n", "dialect",
              "delete-mark", "deleted", "carved", "recall", "precision");

  for (const std::string& name : BuiltinDialectNames()) {
    DatabaseOptions options;
    options.dialect = name;
    auto db = Database::Open(options);
    if (!db.ok()) return 1;
    auto create = (*db)->ExecuteSql(
        "CREATE TABLE Customer (Id INT NOT NULL, Name VARCHAR(24), "
        "PRIMARY KEY (Id))");
    if (!create.ok()) return 1;
    std::set<int64_t> deleted_ids;
    for (int i = 1; i <= kRows; ++i) {
      auto ins = (*db)->ExecuteSql(StrFormat(
          "INSERT INTO Customer VALUES (%d, 'Name%05d')", i, i));
      if (!ins.ok()) return 1;
    }
    for (int i = 1; i <= kRows; i += kDeleteEvery) {
      auto del = (*db)->ExecuteSql(
          StrFormat("DELETE FROM Customer WHERE Id = %d", i));
      if (!del.ok()) return 1;
      deleted_ids.insert(i);
    }
    auto image = (*db)->SnapshotDisk();
    if (!image.ok()) return 1;
    CarverConfig config;
    config.params = GetDialect(name).value();
    Carver carver(config);
    auto carve = carver.Carve(*image);
    if (!carve.ok()) return 1;

    size_t true_hits = 0;
    size_t false_hits = 0;
    for (const CarvedRecord* r :
         carve->RecordsForTable("Customer", RowStatus::kDeleted)) {
      if (!r->typed) continue;
      int64_t id = r->values[0].as_int();
      std::string expected = StrFormat("Name%05d", static_cast<int>(id));
      if (deleted_ids.count(id) != 0 &&
          r->values[1] == Value::Str(expected)) {
        ++true_hits;
      } else {
        ++false_hits;
      }
    }
    double recall = static_cast<double>(true_hits) /
                    static_cast<double>(deleted_ids.size());
    double precision =
        true_hits + false_hits == 0
            ? 1.0
            : static_cast<double>(true_hits) /
                  static_cast<double>(true_hits + false_hits);
    std::printf("%-16s %-18s %-9zu %-9zu %-10.3f %-10.3f\n", name.c_str(),
                DeleteStrategyName(config.params.delete_strategy),
                deleted_ids.size(), true_hits + false_hits, recall,
                precision);
  }
  std::printf(
      "\nPaper claim: deletion only marks metadata (row delimiter, data "
      "delimiter,\nrow identifier, or slot directory — Figure 1), so "
      "deleted rows remain fully\nreconstructable until overwritten. "
      "Expected shape: recall = precision = 1.0.\n");
  return 0;
}
