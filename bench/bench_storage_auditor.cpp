// E8 — DBStorageAuditor (Section III-B): tamper-detection completeness and
// the scalability ablation the paper motivates ("we organize the index
// pointers based on physical location to keep our matching approach
// scalable"): location-sorted merge matching vs the naive quadratic
// baseline, as table size grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "auditor/storage_auditor.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace {

using namespace dbfa;

CarverConfig Config() {
  CarverConfig config;
  config.params = GetDialect("postgres_like").value();
  return config;
}

/// Tampered carve per row count, built once.
const CarveResult& CarveForRows(int rows) {
  static std::map<int, CarveResult>& cache = *new std::map<int, CarveResult>();
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;

  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 4242);
  (void)workload.Setup(rows);
  // Representative tampering: one smuggled record, one erased record.
  (void)TamperInsertRecord(db.get(), "Accounts",
                           {Value::Int(900001), Value::Str("Ghost"),
                            Value::Str("X"), Value::Real(0.0)});
  RowPointer victim{};
  (void)db->heap("Accounts")->Scan([&](RowPointer ptr, const Record& rec) {
    if (rec[0] == Value::Int(rows / 2)) victim = ptr;
    return Status::Ok();
  });
  (void)TamperEraseRecord(db.get(), "Accounts", victim);

  Carver carver(Config());
  CarveResult carve = carver.Carve(db->SnapshotDisk().value()).value();
  return cache.emplace(rows, std::move(carve)).first->second;
}

void BM_SortedMatching(benchmark::State& state) {
  const CarveResult& carve = CarveForRows(static_cast<int>(state.range(0)));
  StorageAuditor auditor(Config());
  size_t findings = 0;
  for (auto _ : state) {
    auto report = auditor.AuditCarve(carve);
    if (!report.ok()) state.SkipWithError("audit failed");
    findings = report->findings.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_SortedMatching)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(32000);

void BM_NaiveMatching(benchmark::State& state) {
  const CarveResult& carve = CarveForRows(static_cast<int>(state.range(0)));
  StorageAuditor::Options options;
  options.sorted_matching = false;
  StorageAuditor auditor(Config(), options);
  size_t findings = 0;
  for (auto _ : state) {
    auto report = auditor.AuditCarve(carve);
    if (!report.ok()) state.SkipWithError("audit failed");
    findings = report->findings.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["findings"] = static_cast<double>(findings);
}
// The quadratic baseline becomes painful quickly; cap it lower.
BENCHMARK(BM_NaiveMatching)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_FullAuditFromImage(benchmark::State& state) {
  // End-to-end: carve + verify + match.
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  (void)workload.Setup(static_cast<int>(state.range(0)));
  Bytes image = db->SnapshotDisk().value();
  StorageAuditor auditor(Config());
  for (auto _ : state) {
    auto report = auditor.Audit(image);
    if (!report.ok()) state.SkipWithError("audit failed");
    benchmark::DoNotOptimize(report);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_FullAuditFromImage)->Arg(2000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
