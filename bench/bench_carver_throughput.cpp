// E3 — DBCarver pipeline throughput (Figure 2): carving speed versus image
// size, with and without interleaved non-database garbage, plus the
// multi-config scan. Uses google-benchmark; bytes/sec counters give MB/s.
#include <benchmark/benchmark.h>

#include <map>

#include "common/strings.h"
#include "core/carver.h"
#include "core/parallel_carver.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace {

using namespace dbfa;

struct PreparedImage {
  Bytes clean;
  Bytes with_garbage;
};

/// Builds (once per row count) a postgres_like image with `rows` rows and a
/// variant with sector-aligned garbage interleaved between files.
const PreparedImage& ImageForRows(int rows) {
  static std::map<int, PreparedImage>& cache =
      *new std::map<int, PreparedImage>();
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;

  DatabaseOptions options;
  options.dialect = "postgres_like";
  auto db = Database::Open(options).value();
  (void)db->ExecuteSql(
      "CREATE TABLE Events (Id INT NOT NULL, What VARCHAR(32), Amount "
      "DOUBLE, PRIMARY KEY (Id))");
  for (int i = 1; i <= rows; ++i) {
    (void)db->ExecuteSql(StrFormat(
        "INSERT INTO Events VALUES (%d, 'event-%08d', %d.25)", i, i,
        i % 1000));
  }
  (void)db->ExecuteSql("DELETE FROM Events WHERE Id < 100");

  PreparedImage prepared;
  prepared.clean = db->SnapshotDisk().value();
  Rng rng(5);
  DiskImageBuilder builder;
  auto files = db->ExportFiles().value();
  builder.AppendGarbage(512 * 16, &rng);
  for (const auto& [name, bytes] : files) {
    builder.AppendFile(name, bytes);
    builder.AppendTextGarbage(512 * 24, &rng);
  }
  prepared.with_garbage = builder.TakeBytes();
  return cache.emplace(rows, std::move(prepared)).first->second;
}

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  return config;
}

void BM_CarveCleanImage(benchmark::State& state) {
  const PreparedImage& image = ImageForRows(static_cast<int>(state.range(0)));
  Carver carver(ConfigFor("postgres_like"));
  size_t records = 0;
  for (auto _ : state) {
    auto result = carver.Carve(image.clean);
    if (!result.ok()) state.SkipWithError("carve failed");
    records = result->records.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.clean.size()));
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_CarveCleanImage)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CarveImageWithGarbage(benchmark::State& state) {
  const PreparedImage& image = ImageForRows(static_cast<int>(state.range(0)));
  Carver carver(ConfigFor("postgres_like"));
  for (auto _ : state) {
    auto result = carver.Carve(image.with_garbage);
    if (!result.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.with_garbage.size()));
}
BENCHMARK(BM_CarveImageWithGarbage)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CarveMultiConfig(benchmark::State& state) {
  // All eight candidate configs over one image: the "storage of unknown
  // provenance" scan mode.
  const PreparedImage& image = ImageForRows(4000);
  std::vector<CarverConfig> configs;
  for (const std::string& name : BuiltinDialectNames()) {
    configs.push_back(ConfigFor(name));
  }
  for (auto _ : state) {
    auto results = Carver::CarveMulti(image.with_garbage, configs);
    if (!results.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.with_garbage.size()));
}
BENCHMARK(BM_CarveMultiConfig);

/// A ≥64 MB forensic image: one garbage-interleaved snapshot tiled until
/// the target size. Page ids repeat across tiles, which the carver treats
/// like any multi-file image; record volume scales with the tiling.
const Bytes& LargeImage() {
  static Bytes* image = [] {
    constexpr size_t kTargetBytes = 64u << 20;
    const PreparedImage& base = ImageForRows(16000);
    Bytes* out = new Bytes();
    out->reserve(kTargetBytes + base.with_garbage.size());
    while (out->size() < kTargetBytes) {
      out->insert(out->end(), base.with_garbage.begin(),
                  base.with_garbage.end());
    }
    return out;
  }();
  return *image;
}

/// Serial baseline over the large image; compare bytes_per_second against
/// BM_CarveLargeImageParallel to read the speedup.
void BM_CarveLargeImageSerial(benchmark::State& state) {
  const Bytes& image = LargeImage();
  Carver carver(ConfigFor("postgres_like"));
  for (auto _ : state) {
    auto result = carver.Carve(image);
    if (!result.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_CarveLargeImageSerial)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Parallel chunked pipeline, Arg = worker threads. UseRealTime so MB/s
/// reflects wall clock, not the orchestrating thread's CPU time.
void BM_CarveLargeImageParallel(benchmark::State& state) {
  const Bytes& image = LargeImage();
  CarveOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  ParallelCarver carver(ConfigFor("postgres_like"), options);
  for (auto _ : state) {
    auto result = carver.Carve(image);
    if (!result.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
  state.counters["threads"] =
      static_cast<double>(carver.thread_count());
}
BENCHMARK(BM_CarveLargeImageParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CarveMultiConfigParallel(benchmark::State& state) {
  // The multi-config scan with one task per (config, chunk).
  const PreparedImage& image = ImageForRows(4000);
  std::vector<CarverConfig> configs;
  for (const std::string& name : BuiltinDialectNames()) {
    configs.push_back(ConfigFor(name));
  }
  CarveOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto results =
        ParallelCarver::CarveMulti(image.with_garbage, configs, options);
    if (!results.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.with_garbage.size()));
}
BENCHMARK(BM_CarveMultiConfigParallel)->Arg(2)->Arg(4)->UseRealTime();

void BM_RamSnapshotCarve(benchmark::State& state) {
  DatabaseOptions options;
  options.dialect = "mysql_like";
  options.buffer_pool_pages = 128;
  auto db = Database::Open(options).value();
  (void)db->ExecuteSql(
      "CREATE TABLE T (Id INT NOT NULL, V VARCHAR(24), PRIMARY KEY (Id))");
  for (int i = 1; i <= 3000; ++i) {
    (void)db->ExecuteSql(
        StrFormat("INSERT INTO T VALUES (%d, 'v%08d')", i, i));
  }
  (void)db->ExecuteSql("SELECT * FROM T WHERE Id > 0");
  Bytes ram = db->SnapshotRam();
  CarveOptions carve_options;
  carve_options.scan_step = db->params().page_size;
  Carver carver(ConfigFor("mysql_like"), carve_options);
  for (auto _ : state) {
    auto result = carver.Carve(ram);
    if (!result.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ram.size()));
}
BENCHMARK(BM_RamSnapshotCarve);

}  // namespace

BENCHMARK_MAIN();
