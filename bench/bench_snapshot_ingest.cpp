// E13 — snapshot repository ingest (docs/snapshot_store.md): cold carve vs
// cold ingest vs warm re-ingest of a >= 64 MB capture where at most 5% of
// pages changed between snapshots. The acceptance bar is warm re-ingest
// >= 5x faster than the cold serial carve; counters report the page dedup
// and artifact reuse rates that produce the speedup.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/carver.h"
#include "core/page_builder.h"
#include "engine/database.h"
#include "snapshot/snapshot_repo.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace {

using namespace dbfa;

namespace fs = std::filesystem;

constexpr const char* kDialect = "postgres_like";
// ~259k rows x ~260 bytes -> ~8600 data pages -> a ~70 MB database file.
constexpr int kLedgerRows = 259000;

CarverConfig BenchConfig() {
  CarverConfig config;
  config.params = GetDialect(kDialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

/// Frames a database file like a real capture: garbage, file, garbage. The
/// fixed seed keeps the garbage identical across captures so only genuine
/// database changes differ between the cold and warm images.
Bytes Frame(const Bytes& file) {
  Rng rng(17);
  DiskImageBuilder builder;
  builder.AppendGarbage(512 * 4, &rng);
  builder.AppendFile("db", file);
  builder.AppendGarbage(512 * 4, &rng);
  return builder.TakeBytes();
}

struct PreparedImages {
  Bytes cold;  // first capture
  Bytes warm;  // second capture after a localized row-range delete
};

const PreparedImages& Images() {
  static PreparedImages* prepared = [] {
    CarverConfig config = BenchConfig();

    DatabaseOptions options;
    options.dialect = kDialect;
    auto db = Database::Open(options).value();
    (void)db->ExecuteSql(
        "CREATE TABLE Manifest (Id INT NOT NULL, Note VARCHAR(48), "
        "PRIMARY KEY (Id))");
    for (int i = 1; i <= 40; ++i) {
      (void)db->ExecuteSql(StrFormat(
          "INSERT INTO Manifest VALUES (%d, 'capture-note-%04d')", i, i));
    }

    // SQL inserts cannot reach 64 MB in reasonable time; build the bulk
    // table as an external heap file and attach it.
    TableSchema schema;
    schema.name = "Ledger";
    schema.columns = {{"Id", ColumnType::kInt, 0, false},
                      {"Payload", ColumnType::kVarchar, 200, true},
                      {"Tag", ColumnType::kVarchar, 32, true}};
    schema.primary_key = {"Id"};
    std::vector<Record> rows;
    rows.reserve(kLedgerRows);
    std::string padding(160, 'x');
    for (int i = 1; i <= kLedgerRows; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Str(StrFormat("entry-%08d-", i) + padding),
                      Value::Str(StrFormat("tag-%d", i % 977))});
    }
    ExternalPageBuilder builder(config);
    Bytes file = builder.BuildTableFile(schema, rows).value();
    if (!db->AttachExternalTable(schema, file).ok()) std::abort();

    auto result = new PreparedImages;
    result->cold = Frame(db->SnapshotDisk().value());

    // A contiguous row-range delete touches a small, localized set of heap
    // and index pages; the rest of the capture is byte-identical.
    (void)db->ExecuteSql(StrFormat(
        "DELETE FROM Ledger WHERE Id >= %d AND Id < %d", 100000, 104000));
    result->warm = Frame(db->SnapshotDisk().value());
    return result;
  }();
  return *prepared;
}

std::string FreshRepoDir() {
  fs::path dir = fs::temp_directory_path() / "bench_snapshot_repo";
  fs::remove_all(dir);
  return dir.string();
}

/// The baseline every snapshot-aware number compares against: one serial
/// carve of the full cold image, no repository involved.
void BM_ColdSerialCarve(benchmark::State& state) {
  const PreparedImages& images = Images();
  Carver carver(BenchConfig(), CarveOptions{});
  for (auto _ : state) {
    auto result = carver.Carve(images.cold);
    if (!result.ok()) state.SkipWithError("carve failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(images.cold.size()));
  state.counters["image_mb"] =
      static_cast<double>(images.cold.size()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ColdSerialCarve)->Unit(benchmark::kMillisecond);

/// First ingest into an empty repository: every page is new, every artifact
/// carved, plus the store/cache append cost the serial carve does not pay.
void BM_ColdIngest(benchmark::State& state) {
  const PreparedImages& images = Images();
  IngestStats last;
  // The repository outlives the timed region so its destructor (index
  // teardown, file closes) is not billed to the ingest.
  std::unique_ptr<SnapshotRepo> repo;
  for (auto _ : state) {
    state.PauseTiming();
    repo.reset();
    repo = SnapshotRepo::Create(FreshRepoDir(), BenchConfig()).value();
    state.ResumeTiming();
    auto stats = repo->Ingest(images.cold);
    if (!stats.ok()) state.SkipWithError("ingest failed");
    last = *stats;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(images.cold.size()));
  state.counters["pages_total"] = static_cast<double>(last.pages_total);
  state.counters["pages_new"] = static_cast<double>(last.pages_new);
}
BENCHMARK(BM_ColdIngest)->Unit(benchmark::kMillisecond);

/// Re-ingest of the next capture after a localized change: detection
/// re-hashes every page but dedup skips probe + artifact decode for the
/// unchanged ones, so only the changed pages pay full carve cost.
void BM_WarmReingest(benchmark::State& state) {
  const PreparedImages& images = Images();
  IngestStats last;
  std::unique_ptr<SnapshotRepo> repo;
  for (auto _ : state) {
    state.PauseTiming();
    repo.reset();
    repo = SnapshotRepo::Create(FreshRepoDir(), BenchConfig()).value();
    if (!repo->Ingest(images.cold).ok()) state.SkipWithError("cold failed");
    state.ResumeTiming();
    auto stats = repo->Ingest(images.warm);
    if (!stats.ok()) state.SkipWithError("warm failed");
    last = *stats;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(images.warm.size()));
  state.counters["pages_total"] = static_cast<double>(last.pages_total);
  state.counters["pages_new"] = static_cast<double>(last.pages_new);
  state.counters["pages_reused"] = static_cast<double>(last.pages_reused);
  state.counters["artifacts_reused"] =
      static_cast<double>(last.artifacts_reused);
  state.counters["changed_page_pct"] =
      last.pages_total == 0
          ? 0.0
          : 100.0 * static_cast<double>(last.pages_new) /
                static_cast<double>(last.pages_total);
  state.counters["detect_ms"] = last.detect_seconds * 1e3;
  state.counters["catalog_ms"] = last.catalog_seconds * 1e3;
  state.counters["content_ms"] = last.content_seconds * 1e3;
}
BENCHMARK(BM_WarmReingest)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
