// E5 — Figure 3 / Section II-D evaluation: (a) the hidden record is
// invisible to every SSBM query yet forensically retrievable; (b) wiping
// destroys all four categories of deleted data, verified by re-carving,
// with throughput measured.
#include <chrono>
#include <cstdio>
#include <map>

#include "antiforensics/steganography.h"
#include "antiforensics/wiper.h"
#include "engine/database.h"
#include "metaquery/session.h"
#include "storage/dialects.h"
#include "workload/ssbm.h"
#include "workload/synthetic.h"

int main() {
  using namespace dbfa;

  // ---- part A: steganography on SSBM ---------------------------------------
  std::printf("E5a — steganography (Figure 3) on SSBM\n\n");
  auto db = Database::Open(DatabaseOptions{}).value();
  SsbmConfig ssbm;
  ssbm.customers = 120;
  ssbm.suppliers = 40;
  ssbm.parts = 120;
  ssbm.date_days = 730;
  ssbm.lineorders = 1200;
  if (!LoadSsbm(db.get(), ssbm).ok()) return 1;

  std::map<std::string, std::string> before;
  for (const std::string& qid : SsbmQueryIds()) {
    before[qid] = RunSsbmQuery(db.get(), qid).value().ToText(100000);
  }
  Record hidden = {Value::Null(),  Value::Null(),  Value::Int(-1),
                   Value::Int(-1), Value::Int(-1), Value::Int(-1),
                   Value::Int(0),  Value::Int(0),  Value::Int(0),
                   Value::Int(0),  Value::Int(0),  Value::Str("Hello_World")};
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Steganographer steg(config);
  if (!steg.HideInDatabase(db.get(), "lineorder", hidden).ok()) return 1;

  std::printf("%-8s %-14s %-22s\n", "query", "result rows",
              "sees hidden record?");
  bool all_blind = true;
  for (const std::string& qid : SsbmQueryIds()) {
    auto after = RunSsbmQuery(db.get(), qid).value();
    bool identical = after.ToText(100000) == before[qid];
    all_blind = all_blind && identical;
    std::printf("%-8s %-14zu %-22s\n", qid.c_str(), after.rows.size(),
                identical ? "no (identical result)" : "YES (changed!)");
  }
  auto found = steg.ExtractHidden(db->SnapshotDisk().value()).value();
  std::printf(
      "\nall 13 queries blind: %s; forensic extraction found %zu hidden "
      "record(s)\n",
      all_blind ? "yes" : "NO", found.size());
  if (!found.empty()) {
    std::printf("message: %s (%zu constraint violations)\n",
                found[0].record.values[11].ToString().c_str(),
                found[0].violations.size());
  }

  // ---- part B: wiping -----------------------------------------------------------
  std::printf("\nE5b — wiping the four deleted-data categories\n\n");
  std::printf("%-16s %-10s %-10s %-9s %-9s %-9s %-8s %-10s\n", "dialect",
              "residue", "residue", "index", "catalog", "unalloc", "MB/s",
              "re-carve");
  std::printf("%-16s %-10s %-10s %-9s %-9s %-9s %-8s %-10s\n", "", "before",
              "after", "wiped", "wiped", "pages", "", "clean?");
  for (const std::string& name : BuiltinDialectNames()) {
    DatabaseOptions options;
    options.dialect = name;
    auto wdb = Database::Open(options).value();
    SyntheticWorkload workload(wdb.get(), "Accounts", 77);
    if (!workload.Setup(400).ok()) return 1;
    (void)wdb->ExecuteSql("DELETE FROM Accounts WHERE Id <= 120");
    (void)wdb->ExecuteSql(
        "UPDATE Accounts SET Balance = 1.0 WHERE Id BETWEEN 200 AND 260");
    (void)wdb->ExecuteSql(
        "CREATE TABLE Doomed (x INT, PRIMARY KEY (x))");
    (void)wdb->ExecuteSql("INSERT INTO Doomed VALUES (1), (2), (3)");
    (void)wdb->ExecuteSql("DROP TABLE Doomed");

    CarverConfig wconfig;
    wconfig.params = GetDialect(name).value();
    Carver carver(wconfig);
    auto image = wdb->SnapshotDisk().value();
    size_t residue_before =
        carver.Carve(image).value().CountRecords(RowStatus::kDeleted);

    Wiper wiper(wconfig);
    auto start = std::chrono::steady_clock::now();
    auto report = wiper.WipeDatabase(wdb.get());
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (!report.ok()) return 1;
    auto image_after = wdb->SnapshotDisk().value();
    auto carve_after = carver.Carve(image_after).value();
    size_t residue_after = carve_after.CountRecords(RowStatus::kDeleted);
    double mbps = static_cast<double>(image.size()) / 1e6 / seconds;
    std::printf("%-16s %-10zu %-10zu %-9zu %-9zu %-9zu %-8.1f %-10s\n",
                name.c_str(), residue_before, residue_after,
                report->index_entries_wiped, report->catalog_entries_wiped,
                report->unallocated_pages_wiped, mbps,
                residue_after == 0 ? "yes" : "NO");
  }
  std::printf(
      "\nPaper claim: generalized (config-driven) sanitization erases "
      "deleted records,\ndangling index values, catalog remnants, and "
      "unallocated pages on any dialect.\nExpected shape: residue-after = "
      "0 everywhere.\n");
  return 0;
}
