// E17 — transaction reenactment (docs/reenactment.md): audit-log replay
// throughput on the reference engine, and surgical-recovery planning +
// verification cost with accuracy counters. One replay iteration re-executes
// the whole logged history; one recovery iteration diffs the full replay
// against a carved image holding a fixed amount of unlogged tampering,
// emits the undo script, and verifies it by fingerprint byte-comparison.
// The corrupted_rows/script_statements counters double as the minimality
// record: exactly the tampered rows, no false rows (check_bench.py compares
// them against BENCH_reenact.json with zero drift tolerance on counts).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/carver.h"
#include "reenact/recovery.h"
#include "reenact/reenactor.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace {

using namespace dbfa;

CarverConfig ConfigFor(const Database& db) {
  CarverConfig config;
  config.params = GetDialect(db.params().dialect).value();
  return config;
}

RowPointer FindRow(Database* db, int64_t id) {
  RowPointer out{};
  (void)db->heap("Accounts")->Scan([&](RowPointer ptr, const Record& rec) {
    if (rec[0] == Value::Int(id)) out = ptr;
    return Status::Ok();
  });
  return out;
}

void BM_ReplayThroughput(benchmark::State& state) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 1907);
  if (!workload.Setup(100).ok() ||
      !workload.Run(static_cast<int>(state.range(0)), OpMix{}, true).ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Reenactor reenactor(ConfigFor(*db));
  size_t entries = db->audit_log().entries().size();

  for (auto _ : state) {
    auto replayed = reenactor.Replay(db->audit_log());
    if (!replayed.ok() || replayed->failed != 0) {
      state.SkipWithError("replay failed");
      return;
    }
    benchmark::DoNotOptimize(replayed->applied);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries));
  state.counters["statements"] = static_cast<double>(entries);
}
BENCHMARK(BM_ReplayThroughput)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SurgicalRecovery(benchmark::State& state) {
  // Fixed tampering dose: 3 altered + 2 extraneous + 1 erased = 6 rows.
  constexpr double kExpectedCorruptions = 6.0;
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 1909);
  if (!workload.Setup(static_cast<int>(state.range(0))).ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  bool tampered = true;
  for (int64_t id = 10; id <= 12; ++id) {
    tampered = tampered && TamperOverwriteField(db.get(), "Accounts",
                                                FindRow(db.get(), id),
                                                "Balance", Value::Real(9.5))
                               .ok();
  }
  for (int64_t id = 0; id < 2; ++id) {
    tampered =
        tampered && TamperInsertRecord(
                        db.get(), "Accounts",
                        {Value::Int(990000 + id), Value::Str("Ghost"),
                         Value::Str("Nowhere"), Value::Real(0.5)})
                        .ok();
  }
  tampered = tampered &&
             TamperEraseRecord(db.get(), "Accounts", FindRow(db.get(), 20))
                 .ok();
  // Legitimate post-tampering traffic the recovery must preserve.
  tampered = tampered && workload.Run(20, OpMix{}, true).ok();
  if (!tampered) {
    state.SkipWithError("tampering setup failed");
    return;
  }
  auto image = db->SnapshotDisk();
  if (!image.ok()) {
    state.SkipWithError("snapshot failed");
    return;
  }
  Carver carver(ConfigFor(*db));
  auto carve = carver.Carve(*image);
  if (!carve.ok()) {
    state.SkipWithError("carve failed");
    return;
  }

  Reenactor reenactor(ConfigFor(*db));
  RecoveryPlanner planner(reenactor);
  double corruptions = 0.0;
  double statements = 0.0;
  double verified = 1.0;
  for (auto _ : state) {
    auto script = planner.Plan(db->audit_log(), *carve);
    if (!script.ok()) {
      state.SkipWithError("plan failed");
      return;
    }
    auto verification = planner.Verify(*script, db->audit_log(), *carve);
    if (!verification.ok()) {
      state.SkipWithError("verify failed");
      return;
    }
    corruptions = static_cast<double>(script->corruptions.size());
    statements = static_cast<double>(script->statements.size());
    if (!verification->byte_identical) verified = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["corrupted_rows"] = corruptions;
  state.counters["script_statements"] = statements;
  state.counters["pinpoint_exact"] =
      corruptions == kExpectedCorruptions ? 1.0 : 0.0;
  state.counters["byte_identical"] = verified;
}
BENCHMARK(BM_SurgicalRecovery)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
