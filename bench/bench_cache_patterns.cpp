// E7 — buffer-cache access-pattern classification (Section III-A): how
// reliably unlogged reads are detected and classified (full scan vs index
// scan) from a RAM snapshot, as a function of buffer-cache size.
#include <cstdio>

#include "common/strings.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace {

using namespace dbfa;

struct Trial {
  bool detected = false;
  UnloggedAccess::Pattern classified = UnloggedAccess::Pattern::kFullScan;
};

/// One experiment: populate, go cold, run one unlogged SELECT (full scan or
/// point lookup), carve RAM, detect.
Trial RunTrial(size_t pool_pages, bool full_scan, uint64_t seed) {
  DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", seed);
  (void)workload.Setup(800);
  (void)db->SnapshotDisk();
  (void)db->pager().pool().Clear();
  uint64_t watermark = db->audit_log().entries().back().seq;

  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver disk_carver(config);
  auto disk_carve = disk_carver.Carve(db->SnapshotDisk().value()).value();

  db->audit_log().SetEnabled(false);
  if (full_scan) {
    (void)db->ExecuteSql("SELECT * FROM Accounts WHERE Owner = 'Maria'");
  } else {
    (void)db->ExecuteSql(StrFormat("SELECT * FROM Accounts WHERE Id = %d",
                                   static_cast<int>(seed % 700 + 1)));
  }
  db->audit_log().SetEnabled(true);

  CarveOptions ram_options;
  ram_options.scan_step = db->params().page_size;
  Carver ram_carver(config, ram_options);
  auto ram_carve = ram_carver.Carve(db->SnapshotRam()).value();

  AuditLog window = db->audit_log().TailAfter(watermark);
  DbDetective detective(&disk_carve, &window, &ram_carve);
  auto reads = detective.FindUnloggedReads().value();
  Trial trial;
  for (const UnloggedAccess& access : reads) {
    if (access.table == "Accounts") {
      trial.detected = true;
      trial.classified = access.pattern;
    }
  }
  return trial;
}

}  // namespace

int main() {
  std::printf(
      "E7 — unlogged-SELECT detection via cache patterns "
      "(800-row table, 10 trials per cell)\n\n");
  std::printf("%-12s %-22s %-24s %-26s\n", "cache", "full scans detected",
              "index scans detected", "full scans classified");
  std::printf("%-12s %-22s %-24s %-26s\n", "(pages)", "", "",
              "as full scans");
  for (size_t pool : {16, 64, 256}) {
    int full_detected = 0;
    int index_detected = 0;
    int full_classified = 0;
    const int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      Trial full = RunTrial(pool, /*full_scan=*/true, 100 + t);
      Trial index = RunTrial(pool, /*full_scan=*/false, 200 + t);
      if (full.detected) {
        ++full_detected;
        if (full.classified == UnloggedAccess::Pattern::kFullScan) {
          ++full_classified;
        }
      }
      if (index.detected) ++index_detected;
    }
    std::printf("%-12zu %2d/%-19d %2d/%-21d %2d/%-23d\n", pool,
                full_detected, kTrials, index_detected, kTrials,
                full_classified, full_detected);
  }
  std::printf(
      "\nPaper claim (Section III-A): both access types 'produce a "
      "consistent,\nrepeatable caching pattern'. Expected shape: detection "
      "near 10/10 at all cache\nsizes; full scans classified as full scans "
      "whenever the cache can hold the\ntable's page run.\n");
  return 0;
}
