// E1 — Table II reproduction: the page-layout trade-off matrix across all
// eight emulated DBMSes, *as discovered by the black-box parameter
// collector*, cross-checked against ground truth.
#include <chrono>
#include <cstdio>

#include "core/parameter_collector.h"
#include "engine/database.h"
#include "storage/dialects.h"

int main() {
  using namespace dbfa;
  std::printf(
      "E1 / Table II — page-layout characteristics per DBMS dialect\n"
      "(every value below was inferred by the black-box parameter "
      "collector)\n\n");
  std::printf("%-16s %-6s %-7s %-8s %-13s %-17s %-11s %-9s %-8s\n",
              "dialect", "page", "endian", "row-id", "column-sizes",
              "delete-mark", "checksum", "collect", "correct");
  std::printf("%-16s %-6s %-7s %-8s %-13s %-17s %-11s %-9s %-8s\n", "", "(B)",
              "", "stored", "", "(Figure 1)", "", "(ms)", "");

  for (const std::string& name : BuiltinDialectNames()) {
    DatabaseOptions options;
    options.dialect = name;
    auto db = Database::Open(options);
    if (!db.ok()) return 1;
    MiniDbBlackBox blackbox(db->get());
    ParameterCollector collector;
    auto start = std::chrono::steady_clock::now();
    auto config = collector.Collect(&blackbox);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!config.ok()) {
      std::printf("%-16s collection FAILED: %s\n", name.c_str(),
                  config.status().ToString().c_str());
      continue;
    }
    CarverConfig truth;
    truth.params = GetDialect(name).value();
    truth.catalog_object_id = kCatalogObjectId;
    const PageLayoutParams& p = config->params;
    std::printf("%-16s %-6u %-7s %-8s %-13s %-17s %-11s %-9lld %-8s\n",
                name.c_str(), p.page_size, p.big_endian ? "big" : "little",
                p.stores_row_id ? (p.row_id_varint ? "varint" : "u32") : "no",
                p.string_mode == StringMode::kInlineSizes
                    ? "inline"
                    : "directory",
                DeleteStrategyName(p.delete_strategy),
                ChecksumKindName(p.checksum_kind),
                static_cast<long long>(elapsed),
                config->ForensicallyEquivalent(truth) ? "yes" : "NO");
  }
  std::printf(
      "\nPaper claim (Table II): row-store layouts share a parameterizable "
      "structure;\nDBMSes that store column sizes keep numbers and strings "
      "together (inline),\nothers keep a column directory. All eight were "
      "recovered black-box.\n");
  return 0;
}
