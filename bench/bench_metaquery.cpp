// E4 — meta-query latency for the two Section II-C scenarios, versus
// carved-artifact volume: scenario 1 (deleted-row selection) and scenario
// 2 (disk-vs-RAM join for fresh updates). Each scenario also runs on the
// out-of-core engine at a budget of 1/8 of the carved relation footprint
// (every operator forced to spill) for the spilled-vs-in-memory overhead
// rows in BENCH_metaquery.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "metaquery/relation.h"
#include "metaquery/session.h"
#include "sql/row_codec.h"
#include "storage/dialects.h"

namespace {

using namespace dbfa;

struct PreparedCarves {
  CarveResult disk;
  CarveResult ram;
};

const PreparedCarves& CarvesForRows(int rows) {
  static std::map<int, PreparedCarves>& cache =
      *new std::map<int, PreparedCarves>();
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;

  DatabaseOptions options;
  options.dialect = "postgres_like";
  // The RAM-carve scenario needs the buffer pool to keep catalog pages
  // (and the fresh row versions) cached after a full-table scan; size it
  // with the table so the 100k case doesn't evict the catalog.
  options.buffer_pool_pages = std::max(512, rows / 20);
  auto db = Database::Open(options).value();
  (void)db->ExecuteSql(
      "CREATE TABLE Product (PID INT NOT NULL, Name VARCHAR(24), Price "
      "DOUBLE, PRIMARY KEY (PID))");
  // Multi-row INSERTs keep the 100k-row setup tolerable (one parse per 500
  // rows instead of one per row).
  for (int i = 1; i <= rows;) {
    std::string sql = "INSERT INTO Product VALUES ";
    for (int j = 0; j < 500 && i <= rows; ++j, ++i) {
      if (j > 0) sql += ", ";
      sql += StrFormat("(%d, 'prod%06d', %d.99)", i, i, i % 500);
    }
    (void)db->ExecuteSql(sql);
  }
  (void)db->ExecuteSql(StrFormat(
      "DELETE FROM Product WHERE PID < %d", rows / 5));
  CarverConfig config;
  config.params = GetDialect("postgres_like").value();
  Carver carver(config);
  PreparedCarves prepared;
  prepared.disk = carver.Carve(db->SnapshotDisk().value()).value();
  // Update some prices, then capture RAM (holds the fresh versions).
  (void)db->ExecuteSql(StrFormat(
      "UPDATE Product SET Price = 1.5 WHERE PID > %d", rows - rows / 10));
  (void)db->ExecuteSql("SELECT * FROM Product WHERE PID > 0");
  CarveOptions ram_options;
  ram_options.scan_step = config.params.page_size;
  Carver ram_carver(config, ram_options);
  prepared.ram = ram_carver.Carve(db->SnapshotRam()).value();
  return cache.emplace(rows, std::move(prepared)).first->second;
}

MetaQueryOptions OptionsForMode(bool reference) {
  MetaQueryOptions options;
  options.use_reference = reference;
  return options;
}

/// In-memory footprint of one carved relation, measured the same way the
/// out-of-core engine charges its budget.
size_t CarveFootprintBytes(const CarveResult& carve) {
  auto relation = MakeCarvedRelation(carve, "Product");
  if (!relation.ok()) return 0;
  size_t bytes = 0;
  (void)(*relation)->Scan([&](const Record& r) {
    bytes += sql::EstimateRecordMemoryBytes(r);
    return Status::Ok();
  });
  return bytes;
}

/// Budget forcing the acceptance ratio: the (largest) relation in the
/// query is >= 8x the budget.
MetaQueryOptions SpilledOptions(size_t footprint_bytes) {
  MetaQueryOptions options;
  options.memory_budget_bytes = std::max<size_t>(footprint_bytes / 8, 1024);
  return options;
}

void RunScenario1(benchmark::State& state, const MetaQueryOptions& options) {
  const PreparedCarves& carves = CarvesForRows(static_cast<int>(state.range(0)));
  MetaQuerySession session(options);
  (void)session.RegisterCarve(carves.disk, "Carv");
  size_t rows = 0;
  for (auto _ : state) {
    auto result = session.Query(
        "SELECT * FROM CarvProduct WHERE RowStatus = 'DELETED'");
    if (!result.ok()) state.SkipWithError("query failed");
    rows = result->rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["deleted_rows"] = static_cast<double>(rows);
  if (options.memory_budget_bytes > 0) {
    state.counters["budget_bytes"] =
        static_cast<double>(options.memory_budget_bytes);
    state.counters["spill_bytes"] =
        static_cast<double>(session.last_spill_stats().bytes_written);
  }
}

void BM_Scenario1DeletedRows(benchmark::State& state) {
  RunScenario1(state, OptionsForMode(/*reference=*/false));
}
BENCHMARK(BM_Scenario1DeletedRows)
    ->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// The pre-PR tuple-at-a-time executor, for speedup accounting against the
/// batched path (same queries, same carves).
void BM_Scenario1DeletedRowsReference(benchmark::State& state) {
  RunScenario1(state, OptionsForMode(/*reference=*/true));
}
BENCHMARK(BM_Scenario1DeletedRowsReference)
    ->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// Same query on the out-of-core engine at 1/8 of the carve footprint.
void BM_Scenario1DeletedRowsSpilled(benchmark::State& state) {
  const PreparedCarves& carves = CarvesForRows(static_cast<int>(state.range(0)));
  RunScenario1(state, SpilledOptions(CarveFootprintBytes(carves.disk)));
}
BENCHMARK(BM_Scenario1DeletedRowsSpilled)
    ->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void RunScenario2(benchmark::State& state, const MetaQueryOptions& options) {
  const PreparedCarves& carves = CarvesForRows(static_cast<int>(state.range(0)));
  MetaQuerySession session(options);
  (void)session.RegisterCarve(carves.disk, "CarvDisk");
  (void)session.RegisterCarve(carves.ram, "CarvRAM");
  size_t rows = 0;
  for (auto _ : state) {
    auto result = session.Query(
        "SELECT M.PID, M.Price, D.Price AS OldPrice "
        "FROM CarvRAMProduct AS M JOIN CarvDiskProduct AS D ON M.PID = D.PID "
        "WHERE M.Price <> D.Price AND M.RowStatus = 'ACTIVE' AND "
        "D.RowStatus = 'ACTIVE'");
    if (!result.ok()) state.SkipWithError("query failed");
    rows = result->rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["updated_rows"] = static_cast<double>(rows);
  if (options.memory_budget_bytes > 0) {
    state.counters["budget_bytes"] =
        static_cast<double>(options.memory_budget_bytes);
    state.counters["spill_bytes"] =
        static_cast<double>(session.last_spill_stats().bytes_written);
  }
}

void BM_Scenario2DiskRamJoin(benchmark::State& state) {
  RunScenario2(state, OptionsForMode(/*reference=*/false));
}
BENCHMARK(BM_Scenario2DiskRamJoin)
    ->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Scenario2DiskRamJoinReference(benchmark::State& state) {
  RunScenario2(state, OptionsForMode(/*reference=*/true));
}
BENCHMARK(BM_Scenario2DiskRamJoinReference)
    ->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Scenario2DiskRamJoinSpilled(benchmark::State& state) {
  const PreparedCarves& carves = CarvesForRows(static_cast<int>(state.range(0)));
  RunScenario2(state,
               SpilledOptions(std::max(CarveFootprintBytes(carves.disk),
                                       CarveFootprintBytes(carves.ram))));
}
BENCHMARK(BM_Scenario2DiskRamJoinSpilled)
    ->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void RunAggregate(benchmark::State& state, const MetaQueryOptions& options) {
  const PreparedCarves& carves = CarvesForRows(20000);
  MetaQuerySession session(options);
  (void)session.RegisterCarve(carves.disk, "Carv");
  for (auto _ : state) {
    auto result = session.Query(
        "SELECT RowStatus, COUNT(*) AS n, AVG(Price) AS avg_price "
        "FROM CarvProduct GROUP BY RowStatus");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  if (options.memory_budget_bytes > 0) {
    state.counters["budget_bytes"] =
        static_cast<double>(options.memory_budget_bytes);
    state.counters["spill_bytes"] =
        static_cast<double>(session.last_spill_stats().bytes_written);
  }
}

void BM_AggregateOverCarve(benchmark::State& state) {
  RunAggregate(state, MetaQueryOptions{});
}
BENCHMARK(BM_AggregateOverCarve);

void BM_AggregateOverCarveSpilled(benchmark::State& state) {
  const PreparedCarves& carves = CarvesForRows(20000);
  RunAggregate(state, SpilledOptions(CarveFootprintBytes(carves.disk)));
}
BENCHMARK(BM_AggregateOverCarveSpilled);

/// The acceptance-criteria shape: join + aggregation over relations >= 8x
/// the budget, compared against the same query fully in memory.
void RunJoinAggregate(benchmark::State& state,
                      const MetaQueryOptions& options) {
  const PreparedCarves& carves = CarvesForRows(static_cast<int>(state.range(0)));
  MetaQuerySession session(options);
  (void)session.RegisterCarve(carves.disk, "CarvDisk");
  (void)session.RegisterCarve(carves.ram, "CarvRAM");
  for (auto _ : state) {
    auto result = session.Query(
        "SELECT D.RowStatus, COUNT(*) AS n, AVG(M.Price) AS fresh, "
        "AVG(D.Price) AS stale "
        "FROM CarvRAMProduct AS M JOIN CarvDiskProduct AS D ON M.PID = D.PID "
        "GROUP BY D.RowStatus ORDER BY D.RowStatus");
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  if (options.memory_budget_bytes > 0) {
    state.counters["budget_bytes"] =
        static_cast<double>(options.memory_budget_bytes);
    state.counters["spill_bytes"] =
        static_cast<double>(session.last_spill_stats().bytes_written);
  }
}

void BM_JoinAggregate(benchmark::State& state) {
  RunJoinAggregate(state, MetaQueryOptions{});
}
BENCHMARK(BM_JoinAggregate)
    ->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_JoinAggregateSpilled(benchmark::State& state) {
  const PreparedCarves& carves = CarvesForRows(static_cast<int>(state.range(0)));
  RunJoinAggregate(state,
                   SpilledOptions(std::max(CarveFootprintBytes(carves.disk),
                                           CarveFootprintBytes(carves.ram))));
}
BENCHMARK(BM_JoinAggregateSpilled)
    ->Arg(5000)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
