// E15 — allocation behaviour of the carve/meta-query hot path: interned
// (arena/StringPool) vs. owned (one heap std::string per cell) content
// decode, counted per carved page with a global operator new hook; and
// columnar vs. row-at-a-time WHERE evaluation over the same carved
// relation. BENCH_columnar.json is produced from this binary (procedure
// in EXPERIMENTS.md E15); the acceptance bar is >= 5x fewer allocations
// per carved page with interning on.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>

#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "metaquery/session.h"
#include "storage/dialects.h"

// ---- counting global allocator -------------------------------------------
// Counts every operator-new on the process; benchmarks read deltas around
// the region under test. Deallocation stays uncounted (free is cheap and
// symmetric). Relaxed ordering: the benches are single-threaded.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(n == 0 ? 1 : n);
  } else if (posix_memalign(&p, align, n == 0 ? align : n) != 0) {
    p = nullptr;
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n, 0); }
void* operator new[](std::size_t n) { return CountedAlloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace dbfa;

// ---- workload -------------------------------------------------------------
// String-heavy audit-trail table: eight VARCHAR columns per row, every
// cell past the 15-byte SSO bound, so each owned decode really pays one
// heap allocation per string cell. City/Note/Status repeat heavily — the
// shape interning collapses to arena-chunk granularity; Customer is
// distinct per row, so the arena also absorbs a growing set.

const Bytes& ImageForRows(int rows) {
  static std::map<int, Bytes>& cache = *new std::map<int, Bytes>();
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;

  DatabaseOptions options;
  options.dialect = "postgres_like";
  options.buffer_pool_pages = std::max(512, rows / 20);
  auto db = Database::Open(options).value();
  (void)db->ExecuteSql(
      "CREATE TABLE Orders (OID INT NOT NULL, Customer VARCHAR(32), "
      "City VARCHAR(32), Note VARCHAR(32), Status VARCHAR(24), "
      "Channel VARCHAR(24), Region VARCHAR(24), Clerk VARCHAR(24), "
      "Terminal VARCHAR(24), Carrier VARCHAR(24), Origin VARCHAR(24), "
      "Handler VARCHAR(24), Amount DOUBLE, PRIMARY KEY (OID))");
  for (int i = 1; i <= rows;) {
    std::string sql = "INSERT INTO Orders VALUES ";
    for (int j = 0; j < 250 && i <= rows; ++j, ++i) {
      if (j > 0) sql += ", ";
      sql += StrFormat(
          "(%d, 'customer-account-%08d', 'metropolitan-district-%02d', "
          "'priority-handling-%03d', 'status-confirmed-%d', "
          "'channel-point-of-sale-%d', 'region-northwest-%02d', "
          "'clerk-identifier-%03d', 'terminal-station-%03d', "
          "'carrier-overnight-%02d', 'origin-warehouse-%02d', "
          "'handler-rotation-%02d', %d.25)",
          i, i, i % 24, i % 50, i % 4, i % 6, i % 12, i % 120, i % 200,
          i % 16, i % 32, i % 48, i % 400);
    }
    (void)db->ExecuteSql(sql);
  }
  (void)db->ExecuteSql(StrFormat("DELETE FROM Orders WHERE OID < %d",
                                 rows / 5));
  return cache.emplace(rows, db->SnapshotDisk().value()).first->second;
}

CarveOptions DecodeOptions(bool intern) {
  CarveOptions options;
  options.intern_strings = intern;
  return options;
}

Result<CarveResult> CarveImage(const Bytes& image, bool intern) {
  CarverConfig config;
  config.params = GetDialect("postgres_like").value();
  Carver carver(config, DecodeOptions(intern));
  return carver.Carve(image);
}

struct AllocSample {
  double allocs_per_page = 0;
  double bytes_per_page = 0;
};

/// One measured carve of the prepared image: operator-new count and bytes
/// over the whole Carve() call, divided by pages carved.
AllocSample MeasureCarve(const Bytes& image, bool intern) {
  std::uint64_t count0 = g_alloc_count.load(std::memory_order_relaxed);
  std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  auto carve = CarveImage(image, intern);
  std::uint64_t count1 = g_alloc_count.load(std::memory_order_relaxed);
  std::uint64_t bytes1 = g_alloc_bytes.load(std::memory_order_relaxed);
  AllocSample sample;
  if (carve.ok() && !carve->pages.empty()) {
    double pages = static_cast<double>(carve->pages.size());
    sample.allocs_per_page = static_cast<double>(count1 - count0) / pages;
    sample.bytes_per_page = static_cast<double>(bytes1 - bytes0) / pages;
  }
  return sample;
}

void RunCarveDecode(benchmark::State& state, bool intern) {
  const Bytes& image = ImageForRows(static_cast<int>(state.range(0)));
  AllocSample sample;
  for (auto _ : state) {
    sample = MeasureCarve(image, intern);
    benchmark::DoNotOptimize(sample);
  }
  // The headline counters: allocations (and allocated bytes) per carved
  // page for this decode mode, plus the interned-vs-owned reduction
  // factor measured on the same image in the same process.
  state.counters["allocs_per_page"] = sample.allocs_per_page;
  state.counters["alloc_bytes_per_page"] = sample.bytes_per_page;
  AllocSample owned = intern ? MeasureCarve(image, /*intern=*/false) : sample;
  AllocSample interned = intern ? sample : MeasureCarve(image, /*intern=*/true);
  if (interned.allocs_per_page > 0) {
    state.counters["alloc_reduction_x"] =
        owned.allocs_per_page / interned.allocs_per_page;
  }
}

void BM_CarveDecodeInterned(benchmark::State& state) {
  RunCarveDecode(state, /*intern=*/true);
}
BENCHMARK(BM_CarveDecodeInterned)
    ->Arg(4000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_CarveDecodeOwned(benchmark::State& state) {
  RunCarveDecode(state, /*intern=*/false);
}
BENCHMARK(BM_CarveDecodeOwned)
    ->Arg(4000)->Arg(20000)->Unit(benchmark::kMillisecond);

// ---- columnar vs. row-at-a-time WHERE ------------------------------------

const CarveResult& CarveForRows(int rows) {
  static std::map<int, CarveResult>& cache =
      *new std::map<int, CarveResult>();
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;
  auto carve = CarveImage(ImageForRows(rows), /*intern=*/true);
  return cache.emplace(rows, std::move(*carve)).first->second;
}

void RunFilter(benchmark::State& state, bool columnar) {
  MetaQueryOptions options;
  options.columnar_filter = columnar;
  MetaQuerySession session(options);
  (void)session.RegisterCarve(CarveForRows(static_cast<int>(state.range(0))),
                              "Carv");
  // Conjunctive predicate over an interned low-cardinality string column,
  // a double range, and the row-status tag: exactly the shape the
  // columnar fast path compiles (equality via pool id / cached hash, no
  // per-row std::string).
  const char* query =
      "SELECT OID, Customer, Amount FROM CarvOrders "
      "WHERE City = 'metropolitan-district-07' AND Amount >= 100 AND "
      "RowStatus = 'ACTIVE'";
  size_t rows = 0;
  for (auto _ : state) {
    auto result = session.Query(query);
    if (!result.ok()) state.SkipWithError("query failed");
    rows = result->rows.size();
    benchmark::DoNotOptimize(result);
  }
  const BatchExecStats& stats = session.last_batch_stats();
  if (columnar && stats.columnar_batches == 0) {
    state.SkipWithError("columnar path did not engage");
  }
  if (!columnar && stats.columnar_batches != 0) {
    state.SkipWithError("columnar path ran with columnar_filter off");
  }
  state.counters["matched_rows"] = static_cast<double>(rows);
  state.counters["columnar_batches"] =
      static_cast<double>(stats.columnar_batches);
  state.counters["row_batches"] = static_cast<double>(stats.row_batches);
}

void BM_FilterColumnar(benchmark::State& state) {
  RunFilter(state, /*columnar=*/true);
}
BENCHMARK(BM_FilterColumnar)
    ->Arg(4000)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_FilterRowAtATime(benchmark::State& state) {
  RunFilter(state, /*columnar=*/false);
}
BENCHMARK(BM_FilterRowAtATime)
    ->Arg(4000)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
