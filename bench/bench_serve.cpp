// E16 — continuous-audit daemon sustained throughput
// (docs/continuous_audit.md): a seeded fleet of MiniDB instances ticking
// against dbfa::AuditDaemon. One iteration is one fleet-wide tick — every
// instance runs its workload batch, captures storage, and submits — plus a
// Drain() barrier, so the measured time is the sustained capture-to-audit
// pipeline rate, not just enqueue cost. Legs scale the fleet: /64 is the
// CI smoke leg (compared against BENCH_serve.json by tools/check_bench.py),
// /1000 is the acceptance bar for fleet scale.
//
// The delay policy (block_on_full) is used so throughput is measured
// without dropped captures; queue memory stays bounded either way and the
// high-water counter proves it. Instances are sized to several pages with
// a small per-tick mutation so warm ingests exercise the artifact cache —
// the daemon's steady state.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "serve/audit_daemon.h"
#include "workload/fleet.h"

namespace {

using namespace dbfa;

namespace fs = std::filesystem;

std::string FreshRoot() {
  fs::path dir = fs::temp_directory_path() / "bench_serve_root";
  fs::remove_all(dir);
  return dir.string();
}

void BM_ServeSustainedIngest(benchmark::State& state) {
  FleetOptions fleet_options;
  fleet_options.instances = static_cast<size_t>(state.range(0));
  fleet_options.seed_rows = 360;  // a few pages per instance
  fleet_options.ops_per_tick = 3;
  fleet_options.attack_rate = 0.02;  // sparse attacks -> finding latency
  fleet_options.seed = 1303;

  ServeOptions serve_options;
  serve_options.root = FreshRoot();
  serve_options.shards = 8;
  serve_options.queue_capacity = 64;
  serve_options.block_on_full = true;

  auto fleet = FleetSimulator::Make(fleet_options);
  if (!fleet.ok()) {
    state.SkipWithError("fleet setup failed");
    return;
  }
  auto daemon = AuditDaemon::Start(serve_options);
  if (!daemon.ok()) {
    state.SkipWithError("daemon start failed");
    return;
  }
  for (size_t i = 0; i < (*fleet)->size(); ++i) {
    if (!(*daemon)
             ->AddInstance(FleetSimulator::InstanceName(i), (*fleet)->Config())
             .ok()) {
      state.SkipWithError("register failed");
      return;
    }
  }

  // Warmup tick outside the timed region: the first capture of each
  // instance is the cold full carve + full detection, a one-time cost the
  // sustained rate should not include.
  int64_t bytes = 0;
  auto tick_all = [&]() -> bool {
    for (size_t i = 0; i < (*fleet)->size(); ++i) {
      auto image = (*fleet)->Tick(i);
      if (!image.ok()) return false;
      bytes += static_cast<int64_t>(image->size());
      if (!(*daemon)->SubmitCapture(i, std::move(*image), (*fleet)->Log(i))
               .ok()) {
        return false;
      }
    }
    (*daemon)->Drain();
    return true;
  };
  if (!tick_all()) {
    state.SkipWithError("warmup tick failed");
    return;
  }
  bytes = 0;

  for (auto _ : state) {
    if (!tick_all()) {
      state.SkipWithError("tick failed");
      return;
    }
  }

  if (!(*daemon)->Shutdown().ok()) {
    state.SkipWithError("shutdown reported an invariant violation");
    return;
  }
  ServeStats stats = (*daemon)->Stats();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>((*fleet)->size()));
  state.SetBytesProcessed(bytes);
  state.counters["instances"] = static_cast<double>((*fleet)->size());
  state.counters["findings"] = static_cast<double>(stats.findings);
  state.counters["finding_p50_ms"] = stats.finding_latency.p50 * 1e3;
  state.counters["finding_p95_ms"] = stats.finding_latency.p95 * 1e3;
  state.counters["ingest_p50_ms"] = stats.ingest_latency.p50 * 1e3;
  state.counters["ingest_p95_ms"] = stats.ingest_latency.p95 * 1e3;
  state.counters["artifact_hit_pct"] = 100.0 * stats.ArtifactHitRate();
  state.counters["queue_high_water"] =
      static_cast<double>(stats.MaxQueueHighWater());
  state.counters["rejected"] = static_cast<double>(stats.captures_rejected);
}
BENCHMARK(BM_ServeSustainedIngest)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
