// E10 — forensic-evidence lifetime (Section III-D, after [7]): what
// fraction of deleted records remains carvable as subsequent inserts
// arrive, parameterized by the page-reuse policy, plus the VACUUM cliff.
#include <cstdio>
#include <set>

#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "storage/dialects.h"

namespace {

using namespace dbfa;

/// Deletes a contiguous block of `deleted` rows (clustered deletes free
/// whole pages, which is when reuse policies diverge), then inserts new
/// rows and reports the fraction of deleted rows still carvable.
double SurvivingFraction(double reuse_threshold, int deleted,
                         int post_inserts, bool vacuum) {
  DatabaseOptions options;
  options.page_reuse_threshold = reuse_threshold;
  auto db = Database::Open(options).value();
  (void)db->ExecuteSql(
      "CREATE TABLE Log (Id INT NOT NULL, Msg VARCHAR(40), PRIMARY KEY "
      "(Id))");
  const int kRows = 600;
  for (int i = 1; i <= kRows; ++i) {
    (void)db->ExecuteSql(StrFormat(
        "INSERT INTO Log VALUES (%d, 'message-%08d-padding')", i, i));
  }
  const int kDeleted = deleted;
  (void)db->ExecuteSql(
      StrFormat("DELETE FROM Log WHERE Id <= %d", kDeleted));
  for (int i = 0; i < post_inserts; ++i) {
    (void)db->ExecuteSql(StrFormat(
        "INSERT INTO Log VALUES (%d, 'message-%08d-padding')",
        100000 + i, i));
  }
  if (vacuum) (void)db->ExecuteSql("VACUUM Log");

  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver carver(config);
  auto carve = carver.Carve(db->SnapshotDisk().value()).value();
  std::set<int64_t> survivors;
  for (const CarvedRecord* r :
       carve.RecordsForTable("Log", RowStatus::kDeleted)) {
    if (r->typed && r->values[0].type() == ValueType::kInt) {
      int64_t id = r->values[0].as_int();
      if (id >= 1 && id <= kDeleted) survivors.insert(id);
    }
  }
  return static_cast<double>(survivors.size()) / kDeleted;
}

}  // namespace

int main() {
  std::printf(
      "E10 — deleted-record evidence lifetime (600 rows, contiguous block "
      "deleted,\nthen 600 inserts; fraction of deleted rows still "
      "carvable)\n\n");
  std::printf("%-14s %-26s %-26s %-12s\n", "rows deleted",
              "reuse disabled", "reuse at 50%% dead", "after");
  std::printf("%-14s %-26s %-26s %-12s\n", "",
              "(Oracle-style PCTFREE)", "(aggressive engine)", "VACUUM");
  for (int deleted : {60, 150, 300, 450, 600}) {
    double keep = SurvivingFraction(2.0, deleted, 600, false);
    double reuse = SurvivingFraction(0.5, deleted, 600, false);
    double vacuumed = SurvivingFraction(2.0, deleted, 600, true);
    std::printf("%-14d %-26.3f %-26.3f %-12.3f\n", deleted, keep, reuse,
                vacuumed);
  }
  std::printf(
      "\nPaper claim (Section III-D / [7]): 'given a low volume of DELETE "
      "operations\nin Oracle, DBDetective would detect attacks with higher "
      "accuracy because...\npercent page utilization prevents deleted data "
      "from being overwritten.'\nExpected shape: the reuse-disabled column "
      "stays at 1.0 regardless of delete\nvolume; the aggressive column "
      "falls as larger delete blocks free whole pages\nfor reuse (only "
      "rows sharing a page with survivors persist); VACUUM is 0.\n");
  return 0;
}
