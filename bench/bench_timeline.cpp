// E9 — LogEventAnalysis (Section III-C): backdating detection rate versus
// the number of backdated statements, for both the naive attacker (clock
// set back, log appended) and the careful attacker (log re-sorted by
// timestamp to hide the inversions).
#include <cstdio>

#include <algorithm>

#include "common/strings.h"
#include "core/carver.h"
#include "storage/dialects.h"
#include "timeline/log_event_analyzer.h"
#include "workload/synthetic.h"

namespace {

using namespace dbfa;

struct Outcome {
  size_t backdated_flagged = 0;
  size_t honest_flagged = 0;
};

Outcome RunScenario(int backdated, bool resort_log, uint64_t seed) {
  DatabaseOptions options;
  options.dialect = "oracle_like";  // stores row identifiers
  auto db = Database::Open(options).value();
  TableSchema schema = AccountsSchema("Accounts");
  (void)db->CreateTable(schema);
  for (int i = 1; i <= 60; ++i) {
    (void)db->ExecuteSql(StrFormat(
        "INSERT INTO Accounts VALUES (%d, 'User%d', 'City', 1.0)", i, i));
  }
  int64_t now = db->clock().Peek();
  db->clock().Set(now - 500'000);
  for (int i = 0; i < backdated; ++i) {
    (void)db->ExecuteSql(StrFormat(
        "INSERT INTO Accounts VALUES (%d, 'Backdated%d', 'City', 1.0)",
        9000 + i, i));
  }
  db->clock().Set(now);
  for (int i = 61; i <= 80; ++i) {
    (void)db->ExecuteSql(StrFormat(
        "INSERT INTO Accounts VALUES (%d, 'User%d', 'City', 1.0)", i, i));
  }

  AuditLog log = db->audit_log();
  if (resort_log) {
    std::vector<AuditEntry> entries = log.entries();
    std::stable_sort(entries.begin(), entries.end(),
                     [](const AuditEntry& a, const AuditEntry& b) {
                       return a.timestamp < b.timestamp;
                     });
    std::string text;
    for (size_t i = 0; i < entries.size(); ++i) {
      text += StrFormat("%zu|%lld|", i + 1,
                        static_cast<long long>(entries[i].timestamp));
      text += entries[i].sql;
      text += "\n";
    }
    log = AuditLog::FromText(text).value();
  }

  CarverConfig config;
  config.params = GetDialect("oracle_like").value();
  Carver carver(config);
  auto carve = carver.Carve(db->SnapshotDisk().value()).value();
  LogEventAnalyzer analyzer(&carve, &log);
  auto report = analyzer.Analyze().value();
  Outcome outcome;
  for (const BackdateFinding& f : report.findings) {
    if (f.sql.find("Backdated") != std::string::npos) {
      ++outcome.backdated_flagged;
    } else {
      ++outcome.honest_flagged;
    }
  }
  (void)seed;
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "E9 — backdated-log detection (oracle_like dialect, 80 honest "
      "inserts)\n\n");
  std::printf("%-12s | %-22s | %-22s\n", "", "naive attacker",
              "careful attacker");
  std::printf("%-12s | %-22s | %-22s\n", "backdated", "(appended log)",
              "(re-sorted log)");
  std::printf("%-12s | %-10s %-11s | %-10s %-11s\n", "statements",
              "caught", "false pos", "caught", "false pos");
  for (int k : {1, 2, 4, 8, 16}) {
    Outcome naive = RunScenario(k, /*resort_log=*/false, k);
    Outcome careful = RunScenario(k, /*resort_log=*/true, k);
    std::printf("%-12d | %zu/%-8d %-11zu | %zu/%-8d %-11zu\n", k,
                naive.backdated_flagged, k, naive.honest_flagged,
                careful.backdated_flagged, k, careful.honest_flagged);
  }
  std::printf(
      "\nPaper claim (Section III-C): 'the order of the [row ids] must be "
      "consistent\nwith the order of the log file commands' — storage "
      "metadata a privileged user\ncannot modify exposes backdating even "
      "when the log file itself is rewritten.\nExpected shape: all "
      "backdated statements caught, zero false positives, in both\n"
      "columns.\n");
  return 0;
}
