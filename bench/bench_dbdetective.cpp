// E6 — DBDetective detection accuracy (Figure 4 / Section III-D): precision
// and recall of unattributed-delete detection versus attack volume, and
// recall degradation as post-attack activity overwrites evidence under an
// aggressive page-reuse policy.
//
// Also benchmarks unattributed-modification matching throughput: the
// prebound matcher (predicates compiled once per carved schema, statements
// bucketed per table, logged INSERT rows hashed) against the original
// name-resolving tuple-at-a-time reference path. The accuracy tables print
// to stderr so `--benchmark_format=json` output on stdout stays
// machine-readable.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "sql/parser.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace {

using namespace dbfa;

struct Accuracy {
  double precision = 1.0;
  double recall = 1.0;
  size_t flagged = 0;
};

/// Runs one scenario: logged workload, an unlogged attack (scattered
/// single-row deletes, or one contiguous range delete when
/// `contiguous_attack`), optional post-attack logged inserts, detection.
Accuracy RunScenario(int attack_deletes, int post_ops,
                     double reuse_threshold, uint64_t seed,
                     bool contiguous_attack = false) {
  DatabaseOptions options;
  options.page_reuse_threshold = reuse_threshold;
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", seed);
  (void)workload.Setup(300);
  (void)workload.Run(150, OpMix{}, /*logged=*/true);

  // The attack (logging off); remember the victims' values.
  Rng rng(seed * 31 + 7);
  std::vector<Record> attacked;
  db->audit_log().SetEnabled(false);
  if (contiguous_attack) {
    // Wipe a contiguous id block — frees whole pages, the case where
    // reuse policies diverge.
    int64_t lo = 1;
    int64_t hi = lo + attack_deletes - 1;
    (void)db->heap("Accounts")->Scan([&](RowPointer, const Record& rec) {
      int64_t id = rec[0].as_int();
      if (id >= lo && id <= hi) attacked.push_back(rec);
      return Status::Ok();
    });
    auto where = sql::ParseExpression(StrFormat(
        "Id BETWEEN %lld AND %lld", static_cast<long long>(lo),
        static_cast<long long>(hi)));
    (void)db->Delete("Accounts", *where);
  } else {
    for (int k = 0; k < attack_deletes; ++k) {
      Record victim;
      (void)db->heap("Accounts")->Scan([&](RowPointer, const Record& rec) {
        if (victim.empty() && rng.Bernoulli(0.02)) victim = rec;
        return Status::Ok();
      });
      if (victim.empty()) continue;
      auto where = sql::ParseExpression(StrFormat(
          "Id = %lld", static_cast<long long>(victim[0].as_int())));
      auto n = db->Delete("Accounts", *where);
      if (n.ok() && *n == 1) attacked.push_back(victim);
    }
  }
  db->audit_log().SetEnabled(true);

  // Post-attack legitimate activity: pure inserts, so any recall loss
  // comes from physical evidence overwrite, not from later logged DELETE
  // predicates coincidentally matching the victims.
  OpMix inserts_only;
  inserts_only.insert_weight = 1.0;
  inserts_only.delete_weight = 0.0;
  inserts_only.update_weight = 0.0;
  inserts_only.select_weight = 0.0;
  (void)workload.Run(post_ops, inserts_only, /*logged=*/true);

  // Detect.
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver carver(config);
  auto carve = carver.Carve(db->SnapshotDisk().value()).value();
  DbDetective detective(&carve, &db->audit_log());
  auto found = detective.FindUnattributedModifications().value();

  size_t true_hits = 0;
  size_t deletions_flagged = 0;
  for (const UnattributedModification& m : found) {
    if (m.kind != UnattributedModification::Kind::kDelete) continue;
    ++deletions_flagged;
    for (const Record& victim : attacked) {
      if (CompareRecords(m.values, victim) == 0) {
        ++true_hits;
        break;
      }
    }
  }
  Accuracy acc;
  acc.flagged = deletions_flagged;
  acc.recall = attacked.empty() ? 1.0
                                : static_cast<double>(true_hits) /
                                      static_cast<double>(attacked.size());
  acc.precision = deletions_flagged == 0
                      ? 1.0
                      : static_cast<double>(true_hits) /
                            static_cast<double>(deletions_flagged);
  return acc;
}

void PrintAccuracyTables() {
  std::fprintf(
      stderr,
      "E6 — DBDetective unattributed-delete detection accuracy\n"
      "(300-row Accounts table, 150 logged mixed ops before the attack)\n\n");

  std::fprintf(stderr, "Table 1: accuracy vs attack volume (no page reuse)\n");
  std::fprintf(stderr, "%-16s %-10s %-11s %-8s\n", "attack deletes", "recall",
               "precision", "flagged");
  for (int k : {1, 2, 4, 8, 16, 32}) {
    Accuracy acc = RunScenario(k, /*post_ops=*/0, /*reuse=*/2.0,
                               /*seed=*/1000 + k);
    std::fprintf(stderr, "%-16d %-10.3f %-11.3f %-8zu\n", k, acc.recall,
                 acc.precision, acc.flagged);
  }

  std::fprintf(
      stderr,
      "\nTable 2: recall vs post-attack inserts (one unlogged 200-row "
      "range delete)\n");
  std::fprintf(stderr, "%-12s %-26s %-26s\n", "post ops",
               "reuse disabled (Oracle)", "aggressive reuse (0.5)");
  for (int post : {0, 100, 300, 900}) {
    Accuracy keep = RunScenario(200, post, 2.0, 42, true);
    Accuracy reuse = RunScenario(200, post, 0.5, 42, true);
    std::fprintf(stderr, "%-12d recall %-19.3f recall %-19.3f\n", post,
                 keep.recall, reuse.recall);
  }
  std::fprintf(
      stderr,
      "\nPaper claim (Section III-D): detection accuracy is high and "
      "degrades with the\nvolume of subsequent operations; conservative "
      "page-utilization policies (Oracle)\npreserve deleted evidence "
      "longer. Expected shape: Table 1 ~1.0/1.0 throughout;\nTable 2 "
      "reuse-enabled recall decays with post-attack volume while the "
      "reuse-\ndisabled column stays at 1.0.\n\n");
}

// ---------------------------------------------------------------------------
// Matching throughput: prebound vs reference, versus table cardinality.

/// A carved image plus its audit log: `rows` logged multi-row inserts, 60
/// logged range DELETEs covering 90% of the ids (so most carved records are
/// deleted and must be attributed through predicate matching), 20 logged
/// UPDATEs, and a small unlogged attack so the report is non-trivial.
struct MatchScenario {
  std::unique_ptr<Database> db;  // owns the audit log
  CarveResult carve;
};

const MatchScenario& ScenarioForRows(int rows) {
  static std::map<int, MatchScenario>& cache =
      *new std::map<int, MatchScenario>();
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;

  MatchScenario s;
  s.db = Database::Open(DatabaseOptions{}).value();
  (void)s.db->ExecuteSql(
      "CREATE TABLE Accounts (Id INT NOT NULL, Name VARCHAR(24), City "
      "VARCHAR(24), Balance DOUBLE, PRIMARY KEY (Id))");
  for (int i = 1; i <= rows;) {
    std::string sql = "INSERT INTO Accounts VALUES ";
    for (int j = 0; j < 500 && i <= rows; ++j, ++i) {
      if (j > 0) sql += ", ";
      sql += StrFormat("(%d, 'acct%06d', 'city%02d', %d.25)", i, i, i % 40,
                       i % 997);
    }
    (void)s.db->ExecuteSql(sql);
  }
  // 60 logged range deletes over the first 90% of ids: carved deleted
  // records outnumber active ones, and each must scan the predicate list
  // until its own range matches.
  int deleted_span = rows * 9 / 10;
  int step = deleted_span / 60 > 0 ? deleted_span / 60 : 1;
  for (int lo = 1; lo <= deleted_span; lo += step) {
    int hi = std::min(lo + step - 1, deleted_span);
    (void)s.db->ExecuteSql(StrFormat(
        "DELETE FROM Accounts WHERE Id BETWEEN %d AND %d", lo, hi));
  }
  // 20 logged updates in the surviving range: active records that match no
  // insert row and must be attributed through the UPDATE post-image.
  for (int k = 0; k < 20; ++k) {
    (void)s.db->ExecuteSql(StrFormat(
        "UPDATE Accounts SET Balance = %d.5 WHERE Id = %d", k,
        deleted_span + 1 + k));
  }
  // The unlogged attack: a few deletes and inserts the log cannot explain.
  s.db->audit_log().SetEnabled(false);
  (void)s.db->ExecuteSql(StrFormat(
      "DELETE FROM Accounts WHERE Id BETWEEN %d AND %d", deleted_span + 40,
      deleted_span + 49));
  (void)s.db->ExecuteSql(StrFormat(
      "INSERT INTO Accounts VALUES (%d, 'Mallory', 'Nowhere', 13.37)",
      rows + 1));
  s.db->audit_log().SetEnabled(true);

  CarverConfig config;
  config.params = GetDialect(s.db->params().dialect).value();
  Carver carver(config);
  s.carve = carver.Carve(s.db->SnapshotDisk().value()).value();
  return cache.emplace(rows, std::move(s)).first->second;
}

void RunMatching(benchmark::State& state, bool prebind) {
  const MatchScenario& s = ScenarioForRows(static_cast<int>(state.range(0)));
  DetectiveOptions options;
  options.prebind = prebind;
  DbDetective detective(&s.carve, &s.db->audit_log(), nullptr, options);
  size_t checked = 0;
  size_t flagged = 0;
  for (auto _ : state) {
    size_t deleted = 0, active = 0;
    auto found = detective.FindUnattributedModifications(&deleted, &active);
    if (!found.ok()) state.SkipWithError("matching failed");
    checked = deleted + active;
    flagged = found->size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["records_checked"] = static_cast<double>(checked);
  state.counters["flagged"] = static_cast<double>(flagged);
}

void BM_UnattributedMatching(benchmark::State& state) {
  RunMatching(state, /*prebind=*/true);
}
BENCHMARK(BM_UnattributedMatching)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// The pre-PR matcher: per-record column-name resolution against every
/// logged statement for the table.
void BM_UnattributedMatchingReference(benchmark::State& state) {
  RunMatching(state, /*prebind=*/false);
}
BENCHMARK(BM_UnattributedMatchingReference)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PrintAccuracyTables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
