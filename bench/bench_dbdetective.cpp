// E6 — DBDetective detection accuracy (Figure 4 / Section III-D): precision
// and recall of unattributed-delete detection versus attack volume, and
// recall degradation as post-attack activity overwrites evidence under an
// aggressive page-reuse policy.
#include <cstdio>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "sql/parser.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace {

using namespace dbfa;

struct Accuracy {
  double precision = 1.0;
  double recall = 1.0;
  size_t flagged = 0;
};

/// Runs one scenario: logged workload, an unlogged attack (scattered
/// single-row deletes, or one contiguous range delete when
/// `contiguous_attack`), optional post-attack logged inserts, detection.
Accuracy RunScenario(int attack_deletes, int post_ops,
                     double reuse_threshold, uint64_t seed,
                     bool contiguous_attack = false) {
  DatabaseOptions options;
  options.page_reuse_threshold = reuse_threshold;
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", seed);
  (void)workload.Setup(300);
  (void)workload.Run(150, OpMix{}, /*logged=*/true);

  // The attack (logging off); remember the victims' values.
  Rng rng(seed * 31 + 7);
  std::vector<Record> attacked;
  db->audit_log().SetEnabled(false);
  if (contiguous_attack) {
    // Wipe a contiguous id block — frees whole pages, the case where
    // reuse policies diverge.
    int64_t lo = 1;
    int64_t hi = lo + attack_deletes - 1;
    (void)db->heap("Accounts")->Scan([&](RowPointer, const Record& rec) {
      int64_t id = rec[0].as_int();
      if (id >= lo && id <= hi) attacked.push_back(rec);
      return Status::Ok();
    });
    auto where = sql::ParseExpression(StrFormat(
        "Id BETWEEN %lld AND %lld", static_cast<long long>(lo),
        static_cast<long long>(hi)));
    (void)db->Delete("Accounts", *where);
  } else {
    for (int k = 0; k < attack_deletes; ++k) {
      Record victim;
      (void)db->heap("Accounts")->Scan([&](RowPointer, const Record& rec) {
        if (victim.empty() && rng.Bernoulli(0.02)) victim = rec;
        return Status::Ok();
      });
      if (victim.empty()) continue;
      auto where = sql::ParseExpression(StrFormat(
          "Id = %lld", static_cast<long long>(victim[0].as_int())));
      auto n = db->Delete("Accounts", *where);
      if (n.ok() && *n == 1) attacked.push_back(victim);
    }
  }
  db->audit_log().SetEnabled(true);

  // Post-attack legitimate activity: pure inserts, so any recall loss
  // comes from physical evidence overwrite, not from later logged DELETE
  // predicates coincidentally matching the victims.
  OpMix inserts_only;
  inserts_only.insert_weight = 1.0;
  inserts_only.delete_weight = 0.0;
  inserts_only.update_weight = 0.0;
  inserts_only.select_weight = 0.0;
  (void)workload.Run(post_ops, inserts_only, /*logged=*/true);

  // Detect.
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver carver(config);
  auto carve = carver.Carve(db->SnapshotDisk().value()).value();
  DbDetective detective(&carve, &db->audit_log());
  auto found = detective.FindUnattributedModifications().value();

  size_t true_hits = 0;
  size_t deletions_flagged = 0;
  for (const UnattributedModification& m : found) {
    if (m.kind != UnattributedModification::Kind::kDelete) continue;
    ++deletions_flagged;
    for (const Record& victim : attacked) {
      if (CompareRecords(m.values, victim) == 0) {
        ++true_hits;
        break;
      }
    }
  }
  Accuracy acc;
  acc.flagged = deletions_flagged;
  acc.recall = attacked.empty()
                   ? 1.0
                   : static_cast<double>(true_hits) / attacked.size();
  acc.precision = deletions_flagged == 0
                      ? 1.0
                      : static_cast<double>(true_hits) / deletions_flagged;
  return acc;
}

}  // namespace

int main() {
  std::printf(
      "E6 — DBDetective unattributed-delete detection accuracy\n"
      "(300-row Accounts table, 150 logged mixed ops before the attack)\n\n");

  std::printf("Table 1: accuracy vs attack volume (no page reuse)\n");
  std::printf("%-16s %-10s %-11s %-8s\n", "attack deletes", "recall",
              "precision", "flagged");
  for (int k : {1, 2, 4, 8, 16, 32}) {
    Accuracy acc = RunScenario(k, /*post_ops=*/0, /*reuse=*/2.0,
                               /*seed=*/1000 + k);
    std::printf("%-16d %-10.3f %-11.3f %-8zu\n", k, acc.recall,
                acc.precision, acc.flagged);
  }

  std::printf(
      "\nTable 2: recall vs post-attack inserts (one unlogged 200-row "
      "range delete)\n");
  std::printf("%-12s %-26s %-26s\n", "post ops",
              "reuse disabled (Oracle)", "aggressive reuse (0.5)");
  for (int post : {0, 100, 300, 900}) {
    Accuracy keep = RunScenario(200, post, 2.0, 42, true);
    Accuracy reuse = RunScenario(200, post, 0.5, 42, true);
    std::printf("%-12d recall %-19.3f recall %-19.3f\n", post, keep.recall,
                reuse.recall);
  }
  std::printf(
      "\nPaper claim (Section III-D): detection accuracy is high and "
      "degrades with the\nvolume of subsequent operations; conservative "
      "page-utilization policies (Oracle)\npreserve deleted evidence "
      "longer. Expected shape: Table 1 ~1.0/1.0 throughout;\nTable 2 "
      "reuse-enabled recall decays with post-attack volume while the "
      "reuse-\ndisabled column stays at 1.0.\n");
  return 0;
}
