// E11 — PLI (Section IV-a): pages read per range query — PLI vs full scan
// vs an ideal clustered index — across ingest-order jitter levels, plus
// the ingest-cost asymmetry PLI exists to avoid.
#include <chrono>
#include <cstdio>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"
#include "pli/pli.h"

namespace {

using namespace dbfa;

struct Setup {
  std::unique_ptr<Database> db;
  double clustering = 0;
};

/// Loads `rows` timestamps with +-jitter around insertion order.
Setup LoadEvents(int rows, int jitter, bool with_index, uint64_t seed) {
  Setup setup;
  setup.db = Database::Open(DatabaseOptions{}).value();
  (void)setup.db->ExecuteSql(
      "CREATE TABLE Events (ts INT NOT NULL, payload VARCHAR(24))");
  if (with_index) {
    (void)setup.db->ExecuteSql("CREATE INDEX idx_ts ON Events (ts)");
  }
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    int64_t ts = 100000 + i + (jitter > 0 ? rng.Uniform(-jitter, jitter) : 0);
    (void)setup.db->ExecuteSql(StrFormat(
        "INSERT INTO Events VALUES (%lld, 'event-padding-%04d')",
        static_cast<long long>(ts), i % 1000));
  }
  return setup;
}

/// Exact pages holding rows in [lo, hi] — what an ideal clustered index
/// would read.
size_t ExactPages(Database* db, int64_t lo, int64_t hi) {
  std::set<uint32_t> pages;
  (void)db->heap("Events")->Scan([&](RowPointer ptr, const Record& rec) {
    int64_t ts = rec[0].as_int();
    if (ts >= lo && ts <= hi) pages.insert(ptr.page_id);
    return Status::Ok();
  });
  return pages.size();
}

}  // namespace

int main() {
  const int kRows = 4000;
  std::printf(
      "E11 — PLI range-query I/O (%d rows; range width 200 around the "
      "middle)\n\n",
      kRows);
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "jitter", "clustering",
              "PLI pages", "exact pages", "full scan");
  for (int jitter : {0, 5, 50, 500, 4000}) {
    Setup setup = LoadEvents(kRows, jitter, /*with_index=*/false, 9 + jitter);
    auto pli = PhysicalLocationIndex::BuildFromDatabase(setup.db.get(),
                                                        "Events", "ts", 4)
                   .value();
    int64_t lo = 100000 + kRows / 2;
    int64_t hi = lo + 200;
    size_t pli_pages = pli.LookupPages(Value::Int(lo), Value::Int(hi)).size();
    size_t exact = ExactPages(setup.db.get(), lo, hi);
    std::printf("%-10d %-12.2f %-12zu %-12zu %-12zu\n", jitter,
                pli.ClusteringFactor(), pli_pages, exact,
                pli.total_pages());
  }

  std::printf("\nIngest cost: maintained secondary index vs none "
              "(PLI built once afterwards)\n");
  for (bool with_index : {false, true}) {
    auto start = std::chrono::steady_clock::now();
    Setup setup = LoadEvents(kRows, 5, with_index, 77);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    double build_seconds = 0;
    if (!with_index) {
      auto b0 = std::chrono::steady_clock::now();
      auto pli = PhysicalLocationIndex::BuildFromDatabase(setup.db.get(),
                                                          "Events", "ts", 4);
      build_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - b0)
                          .count();
      if (!pli.ok()) return 1;
    }
    std::printf("  %-28s ingest %.3fs%s\n",
                with_index ? "with maintained B-Tree" : "no index (PLI after)",
                seconds,
                with_index
                    ? ""
                    : StrFormat(" + one-off PLI build %.3fs", build_seconds)
                          .c_str());
  }
  std::printf(
      "\nPaper claim (Section IV-a / [11]): 'clustering slowdown can often "
      "be avoided'\nby indexing the physical location of approximately "
      "clustered attributes.\nExpected shape: at low jitter PLI reads "
      "close to the exact page count and far\nless than a full scan; as "
      "jitter grows PLI degrades toward the full scan while\nthe ingest-"
      "cost advantage over a maintained index persists.\n");
  return 0;
}
