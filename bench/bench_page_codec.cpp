// Ablation — page-codec microbenchmarks underlying every experiment:
// record encode/decode per string mode, page checksum cost per algorithm,
// and slot-directory insertion per placement. These quantify the design
// choices DESIGN.md calls out (generic formatter driven by parameters).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "storage/dialects.h"
#include "storage/page_formatter.h"

namespace {

using namespace dbfa;

TableSchema BenchSchema() {
  TableSchema s;
  s.name = "T";
  s.columns = {{"id", ColumnType::kInt, 0, false},
               {"name", ColumnType::kVarchar, 32, true},
               {"city", ColumnType::kVarchar, 24, true},
               {"balance", ColumnType::kDouble, 0, true}};
  return s;
}

Record BenchRow(int i) {
  return {Value::Int(i), Value::Str("customer-name-" + std::to_string(i)),
          Value::Str("some-city"), Value::Real(i * 1.5)};
}

void BM_EncodeRecord(benchmark::State& state) {
  PageLayoutParams params =
      GetDialect(BuiltinDialectNames()[state.range(0)]).value();
  PageFormatter fmt(params);
  TableSchema schema = BenchSchema();
  Record row = BenchRow(42);
  for (auto _ : state) {
    auto encoded = fmt.EncodeRecord(schema, row, 42);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetLabel(params.dialect + "/" + StringModeName(params.string_mode));
}
BENCHMARK(BM_EncodeRecord)->DenseRange(0, 7);

void BM_ParseAndDecodeRecord(benchmark::State& state) {
  PageLayoutParams params =
      GetDialect(BuiltinDialectNames()[state.range(0)]).value();
  PageFormatter fmt(params);
  TableSchema schema = BenchSchema();
  Bytes page(params.page_size);
  fmt.InitPage(page.data(), 1, 2, PageType::kData);
  auto encoded = fmt.EncodeRecord(schema, BenchRow(42), 42).value();
  uint16_t slot = fmt.InsertRecordBytes(page.data(), encoded).value();
  auto info = fmt.GetSlot(page.data(), slot);
  for (auto _ : state) {
    auto parsed = fmt.ParseRecordAt(ByteView(page.data(), page.size()),
                                    info->offset);
    auto decoded = fmt.DecodeTyped(*parsed, schema);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetLabel(params.dialect + "/" + StringModeName(params.string_mode));
}
BENCHMARK(BM_ParseAndDecodeRecord)->DenseRange(0, 7);

void BM_ChecksumUpdate(benchmark::State& state) {
  // One representative dialect per checksum kind.
  static const char* kDialects[] = {"mysql_like", "postgres_like",
                                    "oracle_like", "sqlite_like"};
  PageLayoutParams params = GetDialect(kDialects[state.range(0)]).value();
  PageFormatter fmt(params);
  Bytes page(params.page_size);
  Rng rng(1);
  for (auto& b : page) b = static_cast<uint8_t>(rng.NextU64());
  fmt.InitPage(page.data(), 1, 2, PageType::kData);
  for (auto _ : state) {
    fmt.UpdateChecksum(page.data());
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          params.page_size);
  state.SetLabel(std::string(ChecksumKindName(params.checksum_kind)) + "/" +
                 std::to_string(params.page_size) + "B");
}
BENCHMARK(BM_ChecksumUpdate)->DenseRange(0, 3);

void BM_FillPage(benchmark::State& state) {
  // Insert rows until full, per slot placement (front vs back directory).
  PageLayoutParams params =
      GetDialect(state.range(0) == 0 ? "postgres_like" : "sqlserver_like")
          .value();
  PageFormatter fmt(params);
  TableSchema schema = BenchSchema();
  auto encoded = fmt.EncodeRecord(schema, BenchRow(7), 7).value();
  Bytes page(params.page_size);
  size_t per_page = 0;
  for (auto _ : state) {
    fmt.InitPage(page.data(), 1, 2, PageType::kData);
    per_page = 0;
    while (fmt.InsertRecordBytes(page.data(), encoded).ok()) ++per_page;
    benchmark::DoNotOptimize(page.data());
  }
  state.counters["records_per_page"] = static_cast<double>(per_page);
  state.SetLabel(SlotPlacementName(params.slot_placement));
}
BENCHMARK(BM_FillPage)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
