// dbfa_snapshot — manage a snapshot repository with content-addressed
// incremental carving (docs/snapshot_store.md).
//
//   dbfa_snapshot init   <repo-dir> <config.conf> [--scan-step=N]
//                        [--parse-bad-checksum-pages]
//   dbfa_snapshot ingest <repo-dir> <image> [--threads=N]
//   dbfa_snapshot list   <repo-dir>
//   dbfa_snapshot diff   <repo-dir> <base-id> <target-id>
//   dbfa_snapshot detect <repo-dir> <base-id> <target-id> <audit.log>
//   dbfa_snapshot fsck   <repo-dir>
//
// ingest dedupes the capture against every earlier snapshot and re-carves
// only new/changed pages; detect re-matches only records from pages that
// changed since <base-id> against the audit log; fsck re-verifies the
// stores' block checksums and manifest reachability, exiting 3 with a
// per-corruption report when the repository is damaged.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/carver.h"
#include "core/config_io.h"
#include "engine/audit_log.h"
#include "snapshot/snapshot_repo.h"
#include "storage/disk_image.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbfa_snapshot init   <repo-dir> <config.conf> [--scan-step=N]\n"
      "                            [--parse-bad-checksum-pages]\n"
      "       dbfa_snapshot ingest <repo-dir> <image> [--threads=N]\n"
      "       dbfa_snapshot list   <repo-dir>\n"
      "       dbfa_snapshot diff   <repo-dir> <base-id> <target-id>\n"
      "       dbfa_snapshot detect <repo-dir> <base-id> <target-id> "
      "<audit.log>\n"
      "       dbfa_snapshot fsck   <repo-dir>\n");
  return 2;
}

/// Strict numeric parse; strtoull's silent 0 on junk is unacceptable for
/// snapshot ids.
bool ParseU64Arg(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::string dir = argv[2];

  if (command == "init") {
    if (argc < 4) return Usage();
    auto config = LoadConfig(argv[3]);
    if (!config.ok()) {
      std::fprintf(stderr, "config: %s\n",
                   config.status().ToString().c_str());
      return 1;
    }
    CarveOptions options;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--scan-step=", 0) == 0) {
        uint64_t v = 0;
        if (!ParseU64Arg(arg.c_str() + 12, &v)) return Usage();
        options.scan_step = static_cast<size_t>(v);
      } else if (arg == "--parse-bad-checksum-pages") {
        options.parse_bad_checksum_pages = true;
      } else {
        return Usage();
      }
    }
    auto repo = SnapshotRepo::Create(dir, *config, options);
    if (!repo.ok()) {
      std::fprintf(stderr, "init: %s\n", repo.status().ToString().c_str());
      return 1;
    }
    std::printf("initialized snapshot repository at %s (%s, %u-byte pages)\n",
                dir.c_str(), (*repo)->config().params.dialect.c_str(),
                (*repo)->config().params.page_size);
    return 0;
  }

  if (command == "ingest") {
    if (argc < 4) return Usage();
    size_t threads = 0;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--threads=", 0) == 0) {
        uint64_t v = 0;
        if (!ParseU64Arg(arg.c_str() + 10, &v)) return Usage();
        threads = static_cast<size_t>(v);
      } else {
        return Usage();
      }
    }
    auto repo = SnapshotRepo::Open(dir, threads);
    if (!repo.ok()) {
      std::fprintf(stderr, "open: %s\n", repo.status().ToString().c_str());
      return 1;
    }
    auto image = LoadImage(argv[3]);
    if (!image.ok()) {
      std::fprintf(stderr, "image: %s\n", image.status().ToString().c_str());
      return 1;
    }
    auto stats = (*repo)->Ingest(*image);
    if (!stats.ok()) {
      std::fprintf(stderr, "ingest: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", stats->ToString().c_str());
    return 0;
  }

  if (command == "list") {
    auto repo = SnapshotRepo::Open(dir);
    if (!repo.ok()) {
      std::fprintf(stderr, "open: %s\n", repo.status().ToString().c_str());
      return 1;
    }
    auto snapshots = (*repo)->List();
    if (snapshots.empty()) {
      std::printf("repository at %s holds no snapshots\n", dir.c_str());
      return 0;
    }
    for (const SnapshotInfo& info : snapshots) {
      std::printf("%s\n", info.ToString().c_str());
    }
    return 0;
  }

  if (command == "diff") {
    uint64_t base = 0;
    uint64_t target = 0;
    if (argc != 5 || !ParseU64Arg(argv[3], &base) ||
        !ParseU64Arg(argv[4], &target)) {
      return Usage();
    }
    auto repo = SnapshotRepo::Open(dir);
    if (!repo.ok()) {
      std::fprintf(stderr, "open: %s\n", repo.status().ToString().c_str());
      return 1;
    }
    auto diff = (*repo)->Diff(base, target);
    if (!diff.ok()) {
      std::fprintf(stderr, "diff: %s\n", diff.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", diff->ToString().c_str());
    return 0;
  }

  if (command == "detect") {
    uint64_t base = 0;
    uint64_t target = 0;
    if (argc != 6 || !ParseU64Arg(argv[3], &base) ||
        !ParseU64Arg(argv[4], &target)) {
      return Usage();
    }
    auto repo = SnapshotRepo::Open(dir);
    if (!repo.ok()) {
      std::fprintf(stderr, "open: %s\n", repo.status().ToString().c_str());
      return 1;
    }
    auto log = AuditLog::LoadFrom(argv[5]);
    if (!log.ok()) {
      std::fprintf(stderr, "log: %s\n", log.status().ToString().c_str());
      return 1;
    }
    auto detection = (*repo)->DetectIncremental(base, target, *log);
    if (!detection.ok()) {
      std::fprintf(stderr, "detect: %s\n",
                   detection.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", detection->ToString().c_str());
    return detection->modifications.empty() ? 0 : 3;
  }

  if (command == "fsck") {
    if (argc != 3) return Usage();
    auto report = SnapshotRepo::Fsck(dir);
    if (!report.ok()) {
      std::fprintf(stderr, "fsck: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
    return report->Clean() ? 0 : 3;
  }

  return Usage();
}
