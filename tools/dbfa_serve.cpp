// dbfa_serve — fleet-scale continuous-audit daemon driver
// (docs/continuous_audit.md).
//
//   dbfa_serve simulate <root> [--instances=N] [--ticks=N] [--shards=N]
//                       [--queue-capacity=N] [--block-on-full]
//                       [--attack-rate=P] [--seed-rows=N] [--ops-per-tick=N]
//                       [--dialect=NAME] [--seed=N] [--status] [--verify]
//   dbfa_serve status   <root>
//
// simulate runs a seeded fleet of MiniDB instances against the daemon:
// every tick each instance executes a workload batch (optionally injecting
// the Section III-A unlogged-statement attack), captures its storage, and
// submits the capture. The daemon ingests each capture into the instance's
// snapshot repository and re-matches the delta against the audit log;
// unattributed modifications land in <root>/findings.feed and counters in
// <root>/serve_stats.json.
//
// --verify scores the findings feed against the simulator's ground truth
// and the daemon's queue invariants; any violation exits 3 (the CI soak
// gate). status pretty-prints the stats JSON of a previous run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/audit_daemon.h"
#include "workload/fleet.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbfa_serve simulate <root> [--instances=N] [--ticks=N]\n"
      "                           [--shards=N] [--queue-capacity=N]\n"
      "                           [--block-on-full] [--attack-rate=P]\n"
      "                           [--seed-rows=N] [--ops-per-tick=N]\n"
      "                           [--dialect=NAME] [--seed=N]\n"
      "                           [--status] [--verify]\n"
      "       dbfa_serve status   <root>\n");
  return 2;
}

bool ParseU64Arg(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseDoubleArg(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != nullptr && *end == '\0';
}

struct SimulateArgs {
  dbfa::FleetOptions fleet;
  dbfa::ServeOptions serve;
  uint64_t ticks = 4;
  bool print_status = false;
  bool verify = false;
};

/// Scores one simulate run: clean instances must have zero findings,
/// attacked instances with at least one successfully audited post-attack
/// capture must have at least one, and the daemon's final invariant check
/// must be "ok". Returns the number of violations, printing each.
size_t Verify(const dbfa::FleetSimulator& fleet,
              const dbfa::AuditDaemon& daemon, const dbfa::Status& shutdown,
              const std::vector<bool>& post_attack_accepted) {
  size_t violations = 0;
  if (!shutdown.ok()) {
    std::fprintf(stderr, "VIOLATION: shutdown: %s\n",
                 shutdown.ToString().c_str());
    ++violations;
  }
  std::vector<size_t> findings_per_instance(fleet.size(), 0);
  for (const dbfa::ServeFinding& finding : daemon.Findings()) {
    bool matched = false;
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (finding.instance == dbfa::FleetSimulator::InstanceName(i)) {
        ++findings_per_instance[i];
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "VIOLATION: finding for unknown instance: %s\n",
                   finding.ToString().c_str());
      ++violations;
    }
  }
  dbfa::ServeStats stats = daemon.Stats();
  for (size_t i = 0; i < fleet.size(); ++i) {
    size_t attacks = fleet.Attacks(i);
    if (attacks == 0 && findings_per_instance[i] != 0) {
      std::fprintf(stderr,
                   "VIOLATION: clean instance %s has %zu finding(s)\n",
                   dbfa::FleetSimulator::InstanceName(i).c_str(),
                   findings_per_instance[i]);
      ++violations;
    }
    // An attacked instance is only guaranteed a finding if some capture
    // taken after its first attack was accepted and audited cleanly;
    // under forced backpressure every post-attack capture may have been
    // rejected, and a failed ingest audits nothing.
    if (attacks > 0 && findings_per_instance[i] == 0 &&
        post_attack_accepted[i] && stats.instances[i].captures_failed == 0) {
      std::fprintf(
          stderr,
          "VIOLATION: attacked instance %s (%zu attack(s)) has no "
          "findings despite %llu audited capture(s)\n",
          dbfa::FleetSimulator::InstanceName(i).c_str(), attacks,
          static_cast<unsigned long long>(
              stats.instances[i].captures_completed));
      ++violations;
    }
  }
  return violations;
}

int Simulate(const SimulateArgs& args) {
  auto fleet = dbfa::FleetSimulator::Make(args.fleet);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet.status().ToString().c_str());
    return 1;
  }
  auto daemon = dbfa::AuditDaemon::Start(args.serve);
  if (!daemon.ok()) {
    std::fprintf(stderr, "daemon: %s\n", daemon.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < (*fleet)->size(); ++i) {
    auto id = (*daemon)->AddInstance(dbfa::FleetSimulator::InstanceName(i),
                                     (*fleet)->Config());
    if (!id.ok()) {
      std::fprintf(stderr, "register: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  uint64_t rejected = 0;
  // Ground truth for --verify: was any capture taken at-or-after an
  // instance's first attack actually accepted? (Tick captures after
  // injecting, so the same tick's capture already contains the attack.)
  std::vector<bool> post_attack_accepted((*fleet)->size(), false);
  for (uint64_t tick = 0; tick < args.ticks; ++tick) {
    for (size_t i = 0; i < (*fleet)->size(); ++i) {
      auto image = (*fleet)->Tick(i);
      if (!image.ok()) {
        std::fprintf(stderr, "tick: %s\n", image.status().ToString().c_str());
        return 1;
      }
      dbfa::Status submitted = (*daemon)->SubmitCapture(
          i, std::move(*image), (*fleet)->Log(i));
      if (submitted.code() == dbfa::StatusCode::kUnavailable) {
        ++rejected;  // backpressure working as designed
      } else if (!submitted.ok()) {
        std::fprintf(stderr, "submit: %s\n", submitted.ToString().c_str());
        return 1;
      } else if ((*fleet)->Attacks(i) > 0) {
        post_attack_accepted[i] = true;
      }
    }
  }
  (*daemon)->Drain();
  dbfa::Status shutdown = (*daemon)->Shutdown();
  if (args.print_status) {
    std::fputs((*daemon)->Stats().ToString().c_str(), stdout);
  }
  std::printf(
      "simulated %zu instance(s) x %llu tick(s): %llu findings, "
      "%llu rejected capture(s); stats in %s\n",
      (*fleet)->size(), static_cast<unsigned long long>(args.ticks),
      static_cast<unsigned long long>((*daemon)->Stats().findings),
      static_cast<unsigned long long>(rejected),
      (std::string(args.serve.root) + "/" +
       dbfa::AuditDaemon::kStatsFile).c_str());
  if (args.verify) {
    size_t violations =
        Verify(**fleet, **daemon, shutdown, post_attack_accepted);
    if (violations != 0) {
      std::fprintf(stderr, "verify: %zu violation(s)\n", violations);
      return 3;
    }
    std::printf("verify: ok\n");
  } else if (!shutdown.ok()) {
    std::fprintf(stderr, "shutdown: %s\n", shutdown.ToString().c_str());
    return 1;
  }
  return 0;
}

int PrintStatus(const std::string& root) {
  std::string path = root + "/" + dbfa::AuditDaemon::kStatsFile;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "status: cannot open %s (did a simulate run "
                 "complete?)\n", path.c_str());
    return 1;
  }
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    std::fwrite(buf, 1, n, stdout);
  }
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  if (command == "status") return PrintStatus(argv[2]);
  if (command != "simulate") return Usage();

  SimulateArgs args;
  args.serve.root = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    uint64_t v = 0;
    double d = 0.0;
    if (arg.rfind("--instances=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 12, &v) || v == 0) return Usage();
      args.fleet.instances = static_cast<size_t>(v);
    } else if (arg.rfind("--ticks=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 8, &v)) return Usage();
      args.ticks = v;
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 9, &v) || v == 0) return Usage();
      args.serve.shards = static_cast<size_t>(v);
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 17, &v)) return Usage();
      args.serve.queue_capacity = static_cast<size_t>(v);
    } else if (arg == "--block-on-full") {
      args.serve.block_on_full = true;
    } else if (arg.rfind("--attack-rate=", 0) == 0) {
      if (!ParseDoubleArg(arg.c_str() + 14, &d) || d < 0.0 || d > 1.0) {
        return Usage();
      }
      args.fleet.attack_rate = d;
    } else if (arg.rfind("--seed-rows=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 12, &v)) return Usage();
      args.fleet.seed_rows = static_cast<int>(v);
    } else if (arg.rfind("--ops-per-tick=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 15, &v)) return Usage();
      args.fleet.ops_per_tick = static_cast<int>(v);
    } else if (arg.rfind("--dialect=", 0) == 0) {
      args.fleet.dialect = arg.substr(10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseU64Arg(arg.c_str() + 7, &v)) return Usage();
      args.fleet.seed = v;
    } else if (arg == "--status") {
      args.print_status = true;
    } else if (arg == "--verify") {
      args.verify = true;
    } else {
      return Usage();
    }
  }
  return Simulate(args);
}
