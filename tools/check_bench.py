#!/usr/bin/env python3
"""Benchmark-regression gate over Google Benchmark JSON files.

Compares a current run (e.g. a CI smoke pass) against a committed baseline
(BENCH_*.json) benchmark-by-benchmark and fails when any common benchmark
got slower than ``tolerance`` times its baseline. Stdlib only, so CI can
run it with any python3.

Representative time per benchmark (by ``run_name``): the aggregate median
when present, else the aggregate mean, else the median over raw iteration
entries. Times are normalized through ``time_unit`` before comparison, so
a baseline recorded in ms compares correctly against a run emitted in ns.

Exit codes: 0 ok, 1 regression (suppressed by --warn-only), 2 usage or
no-overlap errors (never suppressed: comparing disjoint files means the
gate is miswired, not that performance is fine).
"""

import argparse
import json
import statistics
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _entry_time_ns(entry):
    """real_time of one benchmarks[] entry, normalized to nanoseconds."""
    unit = entry.get("time_unit", "ns")
    if unit not in _UNIT_NS:
        raise ValueError(f"unknown time_unit {unit!r} in {entry.get('name')}")
    return float(entry["real_time"]) * _UNIT_NS[unit]


def representative_times(doc):
    """Maps run_name -> representative time in ns for one benchmark JSON."""
    aggregates = {}  # run_name -> {aggregate_name: ns}
    iterations = {}  # run_name -> [ns, ...]
    for entry in doc.get("benchmarks", []):
        name = entry.get("run_name", entry.get("name"))
        if name is None or "real_time" not in entry:
            continue
        if entry.get("run_type") == "aggregate":
            # Skip relative aggregates like cv: they are ratios, not times.
            if entry.get("aggregate_time", "time") != "time":
                continue
            aggregates.setdefault(name, {})[entry.get("aggregate_name")] = (
                _entry_time_ns(entry)
            )
        else:
            iterations.setdefault(name, []).append(_entry_time_ns(entry))

    times = {}
    for name, aggs in aggregates.items():
        if "median" in aggs:
            times[name] = aggs["median"]
        elif "mean" in aggs:
            times[name] = aggs["mean"]
    for name, samples in iterations.items():
        if name not in times:
            times[name] = statistics.median(samples)
    return times


def compare(baseline, current, tolerance):
    """Returns (regressions, improvements, common) over two run_name maps.

    A regression is current > tolerance * baseline; an improvement (reported
    informationally) is current < baseline / tolerance.
    """
    regressions = []
    improvements = []
    common = sorted(set(baseline) & set(current))
    for name in common:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 0.0
        if ratio > tolerance:
            regressions.append((name, ratio))
        elif ratio != 0.0 and ratio < 1.0 / tolerance:
            improvements.append((name, ratio))
    return regressions, improvements, common


def run_gate(baseline_path, current_path, tolerance, warn_only):
    try:
        with open(baseline_path) as f:
            baseline = representative_times(json.load(f))
        with open(current_path) as f:
            current = representative_times(json.load(f))
    except (OSError, ValueError, KeyError) as err:
        print(f"check_bench: cannot load inputs: {err}", file=sys.stderr)
        return 2

    regressions, improvements, common = compare(baseline, current, tolerance)
    if not common:
        print(
            f"check_bench: no common benchmarks between {baseline_path} and "
            f"{current_path} — the gate is comparing the wrong files",
            file=sys.stderr,
        )
        return 2

    print(
        f"check_bench: {len(common)} benchmark(s) compared against "
        f"{baseline_path} (tolerance {tolerance:g}x)"
    )
    for name, ratio in improvements:
        print(f"  improved   {name}: {ratio:.2f}x of baseline")
    for name, ratio in regressions:
        print(
            f"  REGRESSION {name}: {ratio:.2f}x of baseline "
            f"(current {current[name]:.0f} ns vs baseline "
            f"{baseline[name]:.0f} ns)"
        )
    if regressions:
        if warn_only:
            print("check_bench: regressions found (warn-only, not failing)")
            return 0
        return 1
    print("check_bench: ok")
    return 0


def _synthetic(named_ns):
    """A minimal Google-Benchmark-shaped doc from {run_name: (ns, unit)}."""
    benchmarks = []
    for name, (value, unit) in named_ns.items():
        benchmarks.append(
            {
                "name": f"{name}_median",
                "run_name": name,
                "run_type": "aggregate",
                "aggregate_name": "median",
                "real_time": value,
                "time_unit": unit,
            }
        )
    return {"context": {}, "benchmarks": benchmarks}


def self_test():
    """Exercises the gate logic on synthetic documents; exits nonzero on
    any behavioral break so the suite can run it as a ctest."""
    # Unit normalization: 2 ms baseline == 2e6 ns current.
    base = representative_times(_synthetic({"BM_a": (2.0, "ms")}))
    cur = representative_times(_synthetic({"BM_a": (2.0e6, "ns")}))
    regs, _, common = compare(base, cur, 1.5)
    assert common == ["BM_a"] and not regs, "unit normalization broke"

    # Regression detection at the tolerance edge.
    cur_slow = representative_times(_synthetic({"BM_a": (3.1, "ms")}))
    regs, _, _ = compare(base, cur_slow, 1.5)
    assert [n for n, _ in regs] == ["BM_a"], "regression not detected"
    regs, _, _ = compare(base, cur_slow, 2.0)
    assert not regs, "tolerance not honored"

    # Improvement is informational, never a failure.
    cur_fast = representative_times(_synthetic({"BM_a": (0.5, "ms")}))
    regs, improvements, _ = compare(base, cur_fast, 1.5)
    assert not regs and [n for n, _ in improvements] == ["BM_a"]

    # Median preferred over mean; iterations used when no aggregates.
    doc = {
        "benchmarks": [
            {
                "run_name": "BM_b",
                "run_type": "aggregate",
                "aggregate_name": "mean",
                "real_time": 100.0,
                "time_unit": "ns",
            },
            {
                "run_name": "BM_b",
                "run_type": "aggregate",
                "aggregate_name": "median",
                "real_time": 90.0,
                "time_unit": "ns",
            },
            {
                "run_name": "BM_c",
                "run_type": "iteration",
                "real_time": 7.0,
                "time_unit": "ns",
            },
            {
                "run_name": "BM_c",
                "run_type": "iteration",
                "real_time": 9.0,
                "time_unit": "ns",
            },
            {
                "run_name": "BM_c",
                "run_type": "iteration",
                "real_time": 8.0,
                "time_unit": "ns",
            },
        ]
    }
    times = representative_times(doc)
    assert times["BM_b"] == 90.0, "median not preferred over mean"
    assert times["BM_c"] == 8.0, "iteration median wrong"

    # Disjoint files are a wiring error, not a pass.
    regs, _, common = compare(
        representative_times(_synthetic({"BM_x": (1.0, "ns")})),
        representative_times(_synthetic({"BM_y": (1.0, "ns")})),
        1.5,
    )
    assert not common, "disjoint inputs must have no common benchmarks"

    print("check_bench: self-test ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="committed BENCH_*.json")
    parser.add_argument("current", nargs="?", help="fresh benchmark JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="fail when current > tolerance * baseline (default 1.5)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (wiring/usage errors still fail)",
    )
    parser.add_argument(
        "--self-test", action="store_true", help="run the built-in checks"
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.print_usage(sys.stderr)
        return 2
    if args.tolerance <= 1.0:
        print("check_bench: --tolerance must be > 1.0", file=sys.stderr)
        return 2
    return run_gate(args.baseline, args.current, args.tolerance,
                    args.warn_only)


if __name__ == "__main__":
    sys.exit(main())
