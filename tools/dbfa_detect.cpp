// dbfa_detect — run DBDetective over an image + audit log, optionally
// producing a court-ready evidence package for the findings.
//
//   dbfa_detect <image> <config.conf> <audit.log> [--evidence=DIR]
//               [--threads=N]
//
// --threads=N carves the image with the parallel pipeline (N workers;
// 0 = hardware concurrency) before analysis; findings are identical.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/carver.h"
#include "core/parallel_carver.h"
#include "detective/confidence.h"
#include "detective/evidence.h"
#include "storage/disk_image.h"

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: dbfa_detect <image> <config.conf> <audit.log> "
                 "[--evidence=DIR] [--threads=N]\n");
    return 2;
  }
  std::string evidence_dir;
  bool parallel = false;
  CarveOptions options;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--evidence=", 0) == 0) evidence_dir = arg.substr(11);
    if (arg.rfind("--threads=", 0) == 0) {
      options.num_threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
      parallel = options.num_threads != 1;
    }
  }
  auto config = LoadConfig(argv[2]);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  auto image = LoadImage(argv[1]);
  if (!image.ok()) {
    std::fprintf(stderr, "image: %s\n", image.status().ToString().c_str());
    return 1;
  }
  auto log = AuditLog::LoadFrom(argv[3]);
  if (!log.ok()) {
    std::fprintf(stderr, "log: %s\n", log.status().ToString().c_str());
    return 1;
  }
  Result<CarveResult> carve =
      parallel ? ParallelCarver(*config, options).Carve(*image)
               : Carver(*config, options).Carve(*image);
  if (!carve.ok()) {
    std::fprintf(stderr, "carve: %s\n", carve.status().ToString().c_str());
    return 1;
  }
  DbDetective detective(&*carve, &*log);
  auto report = detective.Analyze();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->ToString().c_str());
  ConfidenceReport confidence = EstimateDetectionConfidence(*carve, *log);
  std::printf("%s", confidence.ToString().c_str());

  if (!evidence_dir.empty() && !report->modifications.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(evidence_dir, ec);
    EvidenceCollector collector(*config);
    auto package = collector.Collect(*image, *carve, report->modifications);
    if (!package.ok()) {
      std::fprintf(stderr, "evidence: %s\n",
                   package.status().ToString().c_str());
      return 1;
    }
    if (auto s = package->SaveTo(evidence_dir); !s.ok()) {
      std::fprintf(stderr, "evidence: %s\n", s.ToString().c_str());
      return 1;
    }
    auto verified = EvidenceCollector::Verify(*package, *log);
    std::printf("\nevidence package written to %s (%zu pages), independent "
                "verification: %s\n",
                evidence_dir.c_str(),
                package->image.size() / config->params.page_size,
                verified.ok() ? "PASSED" : verified.ToString().c_str());
  }
  return report->Clean() ? 0 : 3;  // 3: suspicious activity found
}
