#!/usr/bin/env python3
"""dbfa_lockcheck: cross-TU lock-order analysis for the dbfa tree.

Statically enforces the deadlock-freedom discipline documented in
docs/lock_order.md. Every dbfa::Mutex carries a (name, rank) identity from
common/lock_rank.h; this tool extracts every mutex declaration, every
DBFA_ACQUIRED_BEFORE/AFTER annotation, and every acquisition site
(MutexLock scopes, DBFA_REQUIRES bodies, CondVar::Wait) across the whole
tree, builds the global lock-order graph, and rejects:

  lock-cycle          the combined observed + declared order graph has a
                      cycle (two code paths acquire the same locks in
                      opposite orders) — a latent deadlock. The witness
                      cycle is printed edge by edge.
  rank-order          a site acquires a mutex whose rank is not strictly
                      greater than a rank already held (or an ordering
                      annotation contradicts the ranks). Rank order is the
                      machine-checkable form of the global order.
  unranked-multilock  a scope nests two locks where either side has no
                      rank; unranked mutexes are only legal while they
                      stay leaf-only.
  blocking-under-lock a blocking call under a held lock: file I/O
                      (fopen/fwrite/std::filesystem mutations),
                      BoundedQueue Push/Pop, ThreadPool Wait/ParallelFor,
                      or a CondVar::Wait on anything but the innermost
                      held mutex. Blocking while holding a lock turns
                      local slowness into fleet-wide convoying and is the
                      other half of most real deadlocks.

Suppression: append "// dbfa-lockcheck: allow(<rule>): <why>" on the
offending line or the comment block above it. An allow on a MutexLock
line exempts blocking-under-lock for that whole hold scope (the
justification is about the lock, not one call under it).

Analysis is per stem group (foo.h + foo.cc): member mutexes declared in
the header resolve at acquisition sites in the paired source file, and
DBFA_REQUIRES annotations on header declarations mark the corresponding
out-of-line definition bodies as holding the named mutex. Known blind
spots (docs/lock_order.md): REQUIRES callers in *other* TUs, and joins
hidden behind destructors (pool_.reset()) — the runtime validator
(DBFA_LOCK_DEBUG) and TSan cover those.

Run over the tree (writes lock_graph.dot next to the invocation):
    python3 tools/dbfa_lockcheck/dbfa_lockcheck.py
Regression-test the checker against tests/lockcheck_fixtures/:
    python3 tools/dbfa_lockcheck/dbfa_lockcheck.py --self-test

Lexical, stdlib-only by design, like tools/dbfa_lint (whose stripper this
reuses): the container toolchain has no libclang, and the discipline is
expressible over comment/string-stripped token text because the tree only
ever locks through dbfa::Mutex / MutexLock (enforced by dbfa_lint's
raw-sync rule).
"""

import argparse
import os
import re
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "dbfa_lint"))
from dbfa_lint import balanced_span, line_of, strip_comments_and_strings

RULES = ("lock-cycle", "rank-order", "unranked-multilock",
         "blocking-under-lock")

ALLOW_RE = re.compile(r"dbfa-lockcheck:\s*allow\(([a-z-]+)\)")

UNRANKED = -1

# Mutex member/variable declarations, optionally annotated and initialized:
#   mutable Mutex mu_ DBFA_ACQUIRED_AFTER(a_, b_){"name", lock_rank::kX};
# Runs over stripped code; the initializer text (the lock name literal) is
# recovered from the original text at the same offsets, which the stripper
# preserves.
MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*"
    r"((?:DBFA_ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)*)"
    r"(\{[^;{}]*\})?\s*;", re.S)
ACQ_ATTR_RE = re.compile(r"DBFA_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")
INIT_RE = re.compile(r'"([^"]*)"\s*(?:,\s*([A-Za-z_][\w:]*|-?\d+))?', re.S)

MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&\s*([^);]+?)\s*\)")
REQUIRES_RE = re.compile(r"DBFA_REQUIRES\s*\(([^)]*)\)")
CV_WAIT_RE = re.compile(r"(?:\.|->)\s*Wait\s*\(\s*&\s*([^);]+?)\s*\)")

# Calls that block (or may block) the calling thread. Kept deliberately
# conservative: every pattern is either real file I/O or one of this
# repo's own blocking primitives. std::filesystem::path is a pure value
# type, not I/O, hence the carve-out.
BLOCKING_RE = re.compile(
    r"\b(?:std::)?(?:f(?:open|close|read|write|flush|printf|sync))\s*\("
    r"|\bstd::filesystem::(?!path\b)\w+\s*\("
    r"|(?:\.|->)\s*(?:Push|TryPush|Pop|ParallelFor|Submit)\s*\("
    r"|(?:\.|->)\s*Wait\s*\(\s*\)")
# Of the above, these never block: TryPush returns kFull immediately and
# Submit only enqueues. They are still matched so the message can say why
# a site is or is not flagged, then filtered here.
NONBLOCKING_TOKENS = ("TryPush", "Submit")

RANK_CONST_RE = re.compile(r"\bk(\w+)\s*=\s*(-?\d+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class MutexDecl:
    """One Mutex member/variable: its C++ member name, lock name, rank,
    and declared ordering constraints (member names of the other side)."""

    def __init__(self, member, lock_name, rank, path, line):
        self.member = member
        self.lock_name = lock_name  # None = anonymous
        self.rank = rank
        self.path = path
        self.line = line
        self.before = []  # member names this lock is acquired before
        self.after = []   # member names this lock is acquired after

    def describe(self):
        name = self.lock_name if self.lock_name else f"<unnamed {self.member}>"
        rank = f"rank {self.rank}" if self.rank != UNRANKED else "unranked"
        return f"'{name}' ({rank}, declared {self.path}:{self.line})"


class Hold:
    """One entry of the simulated held-lock stack during a scope walk."""

    def __init__(self, member, decl, depth, line, exempt):
        self.member = member
        self.decl = decl
        self.depth = depth
        self.line = line
        self.exempt = exempt  # allow(blocking-under-lock) on the lock site


class LockGraph:
    """Global lock-order graph: nodes are lock names, edges mean "acquired
    before", each edge remembering the first witness site."""

    def __init__(self):
        self.edges = {}  # from_name -> {to_name: witness}
        self.nodes = {}  # lock name -> MutexDecl (first seen)

    def add_node(self, decl):
        if decl.lock_name and decl.lock_name not in self.nodes:
            self.nodes[decl.lock_name] = decl

    def add_edge(self, src, dst, witness):
        self.edges.setdefault(src, {}).setdefault(dst, witness)

    def find_cycle(self):
        """Returns a cycle as [(from, to, witness), ...] or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {}
        stack = []

        def visit(node):
            color[node] = GRAY
            stack.append(node)
            for nxt, witness in sorted(self.edges.get(node, {}).items()):
                if color.get(nxt, WHITE) == GRAY:
                    cycle_nodes = stack[stack.index(nxt):] + [nxt]
                    return [(a, b, self.edges[a][b]) for a, b in
                            zip(cycle_nodes, cycle_nodes[1:])]
                if color.get(nxt, WHITE) == WHITE:
                    found = visit(nxt)
                    if found:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in sorted(self.edges):
            if color.get(node, WHITE) == WHITE:
                found = visit(node)
                if found:
                    return found
        return None

    def to_dot(self):
        lines = ["digraph lock_order {", "  rankdir=LR;",
                 "  node [shape=box, fontname=\"monospace\"];"]
        for name in sorted(self.nodes):
            decl = self.nodes[name]
            rank = (f"rank {decl.rank}" if decl.rank != UNRANKED
                    else "unranked")
            lines.append(f'  "{name}" [label="{name}\\n{rank}"];')
        for src in sorted(self.edges):
            for dst, witness in sorted(self.edges[src].items()):
                style = ', style=dashed' if witness.startswith("declared") \
                    else ''
                lines.append(
                    f'  "{src}" -> "{dst}" [label="{witness}"{style}];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def allowed(rule, lineno, comments, code):
    """Same contract as dbfa_lint.allowed, for dbfa-lockcheck markers."""
    code_lines = code.split("\n")

    def matches(ln):
        m = ALLOW_RE.search(comments.get(ln, ""))
        return bool(m and m.group(1) == rule)

    if matches(lineno):
        return True
    ln = lineno - 1
    while (ln >= 1 and ln in comments
           and not code_lines[ln - 1].strip()):
        if matches(ln):
            return True
        ln -= 1
    return False


def load_ranks(root):
    """Parses the rank enum in src/common/lock_rank.h into a token map
    accepting both spellings ("kAuditState", "lock_rank::kAuditState")."""
    ranks = {}
    path = os.path.join(root, "src", "common", "lock_rank.h")
    if not os.path.exists(path):
        return ranks
    with open(path, encoding="utf-8") as f:
        code, _ = strip_comments_and_strings(f.read())
    for m in RANK_CONST_RE.finditer(code):
        for spelling in (f"k{m.group(1)}", f"lock_rank::k{m.group(1)}",
                         f"dbfa::lock_rank::k{m.group(1)}"):
            ranks[spelling] = int(m.group(2))
    return ranks


def base_member(expr):
    """'daemon->feed_mu_' -> 'feed_mu_'; 'shards_[i]->mu' -> 'mu'."""
    last = re.split(r"\.|->", expr.strip())[-1].strip()
    m = re.search(r"(\w+)\s*$", last)
    return m.group(1) if m else last


def parse_decls(relpath, code, text, ranks):
    """All Mutex declarations in one file: member name -> MutexDecl."""
    decls = {}
    for m in MUTEX_DECL_RE.finditer(code):
        member = m.group(1)
        line = line_of(m.start(), code)
        lock_name, rank = None, UNRANKED
        if m.group(3):
            # Lock name and rank token live inside a (blanked) string
            # literal and the initializer; read them from the original
            # text, whose offsets the stripper preserves.
            init = text[m.start(3):m.end(3)]
            im = INIT_RE.search(init)
            if im:
                lock_name = im.group(1)
                tok = im.group(2)
                if tok is not None:
                    if re.fullmatch(r"-?\d+", tok):
                        rank = int(tok)
                    else:
                        rank = ranks.get(tok, UNRANKED)
        decl = MutexDecl(member, lock_name, rank, relpath, line)
        for am in ACQ_ATTR_RE.finditer(m.group(2)):
            targets = [t.strip() for t in am.group(2).split(",") if t.strip()]
            (decl.before if am.group(1) == "BEFORE" else
             decl.after).extend(targets)
        decls[member] = decl
    return decls


def header_requires(code):
    """Function name -> mutex member names its body requires held, from
    DBFA_REQUIRES annotations on declarations (applied to the paired .cc
    definitions and to inline bodies in the header itself)."""
    out = {}
    for m in REQUIRES_RE.finditer(code):
        head = code[max(0, m.start() - 400):m.start()]
        fm = None
        for fm in re.finditer(r"(\w+)\s*\(", head):
            pass  # last call-ish token before the attribute = function name
        if fm:
            members = [base_member(t) for t in m.group(1).split(",")
                       if t.strip()]
            out.setdefault(fm.group(1), []).extend(members)
    return out


def requires_regions(code, req_map):
    """(start, end, members) spans whose bodies hold mutexes by contract:
    inline definitions annotated DBFA_REQUIRES, and out-of-line
    definitions of functions the paired header annotated."""
    regions = []
    # Inline: ... DBFA_REQUIRES(mu_) { body }
    for m in REQUIRES_RE.finditer(code):
        tail = code[m.end():m.end() + 200]
        bm = re.match(r"\s*(?:const\s*)?(?:noexcept\s*)?\{", tail)
        if not bm:
            continue
        open_pos = m.end() + bm.end() - 1
        close = balanced_span(code, open_pos, "{", "}")
        members = [base_member(t) for t in m.group(1).split(",")
                   if t.strip()]
        regions.append((open_pos, close, members))
    # Out-of-line: Class::Func(...) ... { with Func annotated in the header.
    for func, members in req_map.items():
        for m in re.finditer(r"::\s*" + re.escape(func) + r"\s*\(", code):
            close_paren = balanced_span(code, m.end() - 1)
            tail = code[close_paren:close_paren + 80]
            bm = re.match(r"\s*(?:const\s*)?(?:noexcept\s*)?\{", tail)
            if not bm:
                continue
            open_pos = close_paren + bm.end() - 1
            close = balanced_span(code, open_pos, "{", "}")
            regions.append((open_pos, close, members))
    return regions


def analyze_scopes(relpath, code, comments, decls, regions, graph,
                   findings):
    """Walks every brace scope simulating the held-lock stack; emits
    rank-order / unranked-multilock / blocking-under-lock findings and
    feeds observed nestings into the global graph."""
    events = []
    for i, ch in enumerate(code):
        if ch == "{":
            events.append((i, 0, "open", None))
        elif ch == "}":
            events.append((i, 0, "close", None))
    for start, _, members in regions:
        events.append((start, 1, "require", members))
    for m in MUTEXLOCK_RE.finditer(code):
        events.append((m.start(), 2, "acquire", base_member(m.group(1))))
    for m in CV_WAIT_RE.finditer(code):
        events.append((m.start(), 2, "wait", base_member(m.group(1))))
    for m in BLOCKING_RE.finditer(code):
        tok = m.group(0).strip(" \t.:()->")
        if tok in NONBLOCKING_TOKENS:
            continue
        events.append((m.start(), 2, "blocking", tok))
    events.sort(key=lambda e: (e[0], e[1]))

    depth = 0
    holds = []

    def describe(member):
        d = decls.get(member)
        return d.describe() if d else f"'{member}' (no declaration found)"

    def on_acquire(pos, member, via):
        ln = line_of(pos, code)
        d = decls.get(member)
        rank = d.rank if d else UNRANKED
        name = d.lock_name if d else None
        for h in holds:
            if h.member == member:
                continue  # re-entry via REQUIRES region of the same lock
            h_rank = h.decl.rank if h.decl else UNRANKED
            h_name = h.decl.lock_name if h.decl else None
            if h_name and name:
                if h_name == name:
                    if not allowed("lock-cycle", ln, comments, code):
                        findings.append(Finding(
                            relpath, ln, "lock-cycle",
                            f"acquiring {describe(member)} while a lock of "
                            "the same name is already held (self-deadlock)"))
                else:
                    graph.add_edge(h_name, name, f"{relpath}:{ln}")
            if h_rank != UNRANKED and rank != UNRANKED and h_rank >= rank:
                if not allowed("rank-order", ln, comments, code):
                    findings.append(Finding(
                        relpath, ln, "rank-order",
                        f"acquiring {describe(member)} while holding "
                        f"{describe(h.member)}: ranks must strictly "
                        "increase down the stack (common/lock_rank.h)"))
            if h_rank == UNRANKED or rank == UNRANKED:
                if not allowed("unranked-multilock", ln, comments, code):
                    findings.append(Finding(
                        relpath, ln, "unranked-multilock",
                        f"nesting {describe(member)} under "
                        f"{describe(h.member)} with an unranked side; give "
                        "both a rank from common/lock_rank.h before "
                        "nesting them"))
        exempt = allowed("blocking-under-lock", ln, comments, code)
        holds.append(Hold(member, d, depth, ln, exempt))
        if d:
            graph.add_node(d)

    for pos, _, kind, payload in events:
        if kind == "open":
            depth += 1
        elif kind == "close":
            depth -= 1
            holds = [h for h in holds if h.depth <= depth]
        elif kind == "require":
            for member in payload:
                on_acquire(pos, member, "requires")
        elif kind == "acquire":
            on_acquire(pos, payload, "lock")
        elif kind == "wait":
            if not holds:
                continue
            if holds[-1].member == payload:
                continue  # waiting on the innermost held lock: the one
                # legal blocking call under a lock (the wait releases it)
            ln = line_of(pos, code)
            if any(h.exempt for h in holds):
                continue
            if allowed("blocking-under-lock", ln, comments, code):
                continue
            held = ", ".join(describe(h.member) for h in holds)
            findings.append(Finding(
                relpath, ln, "blocking-under-lock",
                f"CondVar::Wait(&{payload}) while the innermost held lock "
                f"is different (held: {held}); a wait only releases its "
                "own mutex, so everything else stays locked for the full "
                "sleep"))
        elif kind == "blocking":
            if not holds:
                continue
            ln = line_of(pos, code)
            if any(h.exempt for h in holds):
                continue
            if allowed("blocking-under-lock", ln, comments, code):
                continue
            held = ", ".join(describe(h.member) for h in holds)
            findings.append(Finding(
                relpath, ln, "blocking-under-lock",
                f"blocking call {payload}() under a held lock (held: "
                f"{held}); hoist the I/O out of the critical section or "
                "justify with // dbfa-lockcheck: "
                "allow(blocking-under-lock): <why>"))


def add_declared_edges(relpath, code, comments, decls, group_decls, graph,
                       findings):
    """Feeds DBFA_ACQUIRED_BEFORE/AFTER annotations into the graph and
    cross-checks them against the ranks."""
    for decl in decls.values():
        graph.add_node(decl)
        pairs = [(decl, t, "before") for t in decl.before] + \
                [(decl, t, "after") for t in decl.after]
        for src_decl, target, direction in pairs:
            other = group_decls.get(base_member(target))
            if other is None or not src_decl.lock_name \
                    or not other.lock_name:
                continue
            graph.add_node(other)
            first, second = ((src_decl, other) if direction == "before"
                             else (other, src_decl))
            graph.add_edge(first.lock_name, second.lock_name,
                           f"declared at {relpath}:{src_decl.line}")
            if (first.rank != UNRANKED and second.rank != UNRANKED
                    and first.rank >= second.rank
                    and not allowed("rank-order", src_decl.line, comments,
                                    code)):
                findings.append(Finding(
                    relpath, src_decl.line, "rank-order",
                    f"annotation orders {first.describe()} before "
                    f"{second.describe()} but the ranks say the opposite; "
                    "fix the ranks or the annotation"))


def check_cycles(graph, findings):
    cycle = graph.find_cycle()
    if cycle is None:
        return
    steps = []
    for src, dst, witness in cycle:
        steps.append(f"  '{src}' -> '{dst}'  ({witness})")
    head = cycle[0][0]
    findings.append(Finding(
        graph.nodes[head].path if head in graph.nodes else "<graph>",
        graph.nodes[head].line if head in graph.nodes else 0,
        "lock-cycle",
        "the global lock-order graph has a cycle — two code paths acquire "
        "these locks in opposite orders:\n" + "\n".join(steps)))


# ---- drivers --------------------------------------------------------------

def iter_source_files(root):
    for top in ("src", "tools", "bench"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if name.endswith((".cc", ".h", ".cpp")):
                    yield os.path.join(dirpath, name)


def analyze_tree(root, paths, ranks):
    """Full analysis: returns (findings, graph)."""
    findings = []
    graph = LockGraph()
    files = sorted(paths) if paths else sorted(iter_source_files(root))

    parsed = {}  # relpath -> (code, comments, text, decls)
    for path in files:
        relpath = os.path.relpath(os.path.abspath(path), root).replace(
            os.sep, "/")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        code, comments = strip_comments_and_strings(text)
        parsed[relpath] = (code, comments, text,
                          parse_decls(relpath, code, text, ranks))

    def stem_partner(relpath):
        stem, ext = os.path.splitext(relpath)
        if ext == ".h":
            for other_ext in (".cc", ".cpp"):
                if stem + other_ext in parsed:
                    return stem + other_ext
        else:
            if stem + ".h" in parsed:
                return stem + ".h"
        return None

    for relpath in sorted(parsed):
        code, comments, text, decls = parsed[relpath]
        group_decls = dict(decls)
        req_map = header_requires(code) if relpath.endswith(".h") else {}
        partner = stem_partner(relpath)
        if partner:
            p_code, _, _, p_decls = parsed[partner]
            for member, decl in p_decls.items():
                group_decls.setdefault(member, decl)
            if partner.endswith(".h"):
                req_map = header_requires(p_code)
        add_declared_edges(relpath, code, comments, decls, group_decls,
                           graph, findings)
        regions = requires_regions(code, req_map)
        analyze_scopes(relpath, code, comments, group_decls, regions,
                       graph, findings)

    check_cycles(graph, findings)
    return findings, graph


FIXTURE_HEADER_RE = re.compile(
    r"//\s*dbfa-lockcheck-fixture:\s*expect=(\S+)")


def run_self_test(root):
    """Each fixture in tests/lockcheck_fixtures/ is analyzed in isolation
    and declares the exact per-rule finding counts it must produce
    ("expect=lock-cycle:1,rank-order:1" or "expect=none"). A rule that
    stops firing on its known-bad fixture fails the suite."""
    fixture_dir = os.path.join(root, "tests", "lockcheck_fixtures")
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith((".cc", ".h")))
    if not fixtures:
        print("self-test: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    exercised = set()
    for name in fixtures:
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        m = FIXTURE_HEADER_RE.search(text)
        if not m:
            print(f"self-test: {name}: missing dbfa-lockcheck-fixture "
                  "header")
            failures += 1
            continue
        expected = {}
        if m.group(1) != "none":
            for part in m.group(1).split(","):
                rule, _, count = part.partition(":")
                if rule not in RULES:
                    print(f"self-test: {name}: unknown rule {rule}")
                    failures += 1
                expected[rule] = int(count)
        findings, _ = analyze_tree(root, [path], ranks={})
        got = {}
        for f in findings:
            got[f.rule] = got.get(f.rule, 0) + 1
        if got != expected:
            print(f"self-test: {name}: expected {expected or 'no findings'}"
                  f", got {got or 'no findings'}")
            for f in findings:
                print(f"  {f}")
            failures += 1
        exercised.update(r for r, n in expected.items() if n > 0)
    missing = set(RULES) - exercised
    if missing:
        print(f"self-test: no failing fixture exercises: "
              f"{', '.join(sorted(missing))}")
        failures += 1
    if failures == 0:
        print(f"self-test: {len(fixtures)} fixtures ok, "
              f"all {len(RULES)} rules exercised")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to check (default: src/, tools/, "
                             "bench/)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above script)")
    parser.add_argument("--dot", default="lock_graph.dot",
                        help="write the lock-order graph here (Graphviz); "
                             "empty string disables")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite in "
                             "tests/lockcheck_fixtures/")
    args = parser.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(script_dir))

    if args.self_test:
        return run_self_test(root)

    ranks = load_ranks(root)
    findings, graph = analyze_tree(root, args.paths, ranks)
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as f:
            f.write(graph.to_dot())
    for f in findings:
        print(f)
    if findings:
        print(f"dbfa_lockcheck: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"dbfa_lockcheck: clean ({len(graph.nodes)} named locks, "
          f"{sum(len(e) for e in graph.edges.values())} order edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
