// dbfa_carve — carve a storage image with a configuration file.
//
//   dbfa_carve <image> <config.conf> [--records[=N]] [--deleted]
//              [--catalog] [--indexes] [--step=BYTES] [--threads=N]
//
// Prints the artifact summary; flags add record listings (all or
// delete-marked only), catalog content, and index-entry counts.
// --threads=N carves with the parallel chunked pipeline (N workers;
// 0 = hardware concurrency); output is byte-identical to the default
// serial carve.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/carver.h"
#include "core/parallel_carver.h"
#include "storage/disk_image.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbfa_carve <image> <config.conf> [--records[=N]] [--deleted]\n"
      "                  [--catalog] [--indexes] [--step=BYTES] "
      "[--threads=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 3) return Usage();
  std::string image_path = argv[1];
  std::string config_path = argv[2];
  bool show_records = false;
  bool deleted_only = false;
  bool show_catalog = false;
  bool show_indexes = false;
  size_t max_records = 50;
  bool parallel = false;
  CarveOptions options;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--records=", 0) == 0) {
      show_records = true;
      max_records = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg == "--records") {
      show_records = true;
    } else if (arg == "--deleted") {
      show_records = true;
      deleted_only = true;
    } else if (arg == "--catalog") {
      show_catalog = true;
    } else if (arg == "--indexes") {
      show_indexes = true;
    } else if (arg.rfind("--step=", 0) == 0) {
      options.scan_step = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.num_threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
      parallel = options.num_threads != 1;
    } else {
      return Usage();
    }
  }

  auto config = LoadConfig(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  auto image = LoadImage(image_path);
  if (!image.ok()) {
    std::fprintf(stderr, "image: %s\n", image.status().ToString().c_str());
    return 1;
  }
  Result<CarveResult> result =
      parallel ? ParallelCarver(*config, options).Carve(*image)
               : Carver(*config, options).Carve(*image);
  if (!result.ok()) {
    std::fprintf(stderr, "carve: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n%s\n", result->Summary().c_str(),
              result->stats.ToString().c_str());

  if (show_catalog) {
    std::printf("\n-- system catalog --\n");
    for (const CarvedCatalogEntry& e : result->catalog_entries) {
      std::printf("  [%s] %-6s %-24s object=%u table=%u root=%u\n",
                  RowStatusName(e.status), e.entry_type.c_str(),
                  e.name.c_str(), e.object_id, e.table_object_id,
                  e.root_page);
    }
  }
  if (show_records) {
    std::printf("\n-- records%s --\n", deleted_only ? " (deleted only)" : "");
    size_t shown = 0;
    for (const CarvedRecord& r : result->records) {
      if (deleted_only && r.status != RowStatus::kDeleted) continue;
      if (shown++ >= max_records) {
        std::printf("  ... (truncated; use --records=N)\n");
        break;
      }
      const TableSchema* schema = nullptr;
      auto it = result->schemas.find(r.object_id);
      if (it != result->schemas.end()) schema = &it->second;
      std::printf("  [%s] %s page %u slot %u %s\n", RowStatusName(r.status),
                  schema != nullptr ? schema->name.c_str() : "?",
                  r.page_id, r.slot, RecordToString(r.values).c_str());
    }
  }
  if (show_indexes) {
    std::printf("\n-- indexes --\n");
    for (const auto& [object_id, meta] : result->indexes) {
      std::printf("  %-24s object=%u root=%u entries=%zu%s\n",
                  meta.name.c_str(), object_id, meta.root_page,
                  result->EntriesForIndex(object_id).size(),
                  meta.dropped ? " (dropped)" : "");
    }
  }
  return 0;
}
