// dbfa_reenact — transaction reenactment: replay the audit log on a
// reference engine and compare the claimed state against carved storage
// (docs/reenactment.md).
//
//   dbfa_reenact replay       <config.conf> <audit.log> [--upto=SEQ]
//                             [--skip=SEQ]... [--fingerprint]
//   dbfa_reenact provenance   <config.conf> <audit.log> <image>
//   dbfa_reenact recover      <config.conf> <audit.log> <image>
//                             [--script-out=FILE] [--verify]
//   dbfa_reenact validate-log <config.conf> <audit.log> <image>
//   dbfa_reenact simulate     <scenario> <out-dir>
//
// replay materializes the state the log claims (optionally a prefix, or a
// what-if history without the skipped entries). provenance classifies
// every logged transaction against carved evidence. recover emits the
// surgical undo script for unlogged tampering; --verify replays it on the
// materialized carved state and byte-compares fingerprints. validate-log
// runs the Section III-C backdating detectors. simulate writes a synthetic
// scenario (config.conf, audit.log, storage.img) for the other
// subcommands: "clean", "tamper" (unlogged byte-level edits), "backdate"
// (clock set back + log re-sorted to hide the inversions).
//
// Exit codes: 0 consistent/clean, 1 operational error, 2 usage,
// 3 inconsistency detected (backdating, contradicted provenance, or
// corrupted rows).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/carver.h"
#include "core/config_io.h"
#include "engine/audit_log.h"
#include "reenact/log_validator.h"
#include "reenact/provenance.h"
#include "reenact/recovery.h"
#include "reenact/reenactor.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"
#include "workload/synthetic.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbfa_reenact replay       <config.conf> <audit.log>\n"
      "                                 [--upto=SEQ] [--skip=SEQ]... "
      "[--fingerprint]\n"
      "       dbfa_reenact provenance   <config.conf> <audit.log> <image>\n"
      "       dbfa_reenact recover      <config.conf> <audit.log> <image>\n"
      "                                 [--script-out=FILE] [--verify]\n"
      "       dbfa_reenact validate-log <config.conf> <audit.log> <image>\n"
      "       dbfa_reenact simulate     <clean|tamper|backdate> <out-dir>\n");
  return 2;
}

bool ParseU64Arg(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

struct LoadedCase {
  dbfa::CarverConfig config;
  dbfa::AuditLog log;
};

/// Loads the <config.conf> <audit.log> pair every subcommand starts with.
int LoadCase(const char* config_path, const char* log_path, LoadedCase* out) {
  auto config = dbfa::LoadConfig(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  auto log = dbfa::AuditLog::LoadFrom(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "log: %s\n", log.status().ToString().c_str());
    return 1;
  }
  out->config = *std::move(config);
  out->log = *std::move(log);
  return 0;
}

dbfa::Result<dbfa::CarveResult> CarveImage(const dbfa::CarverConfig& config,
                                           const char* image_path) {
  DBFA_ASSIGN_OR_RETURN(dbfa::Bytes image, dbfa::LoadImage(image_path));
  dbfa::Carver carver(config);
  return carver.Carve(image);
}

int WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "write %s: cannot open\n", path.c_str());
    return 1;
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    std::fprintf(stderr, "write %s: short write\n", path.c_str());
    return 1;
  }
  return 0;
}

// ---- simulate ---------------------------------------------------------------

/// Builds one synthetic instance, applies the scenario's attack, and writes
/// config.conf / audit.log / storage.img under `dir`. The scenarios mirror
/// the E2E tests, so CI can assert the documented exit codes end to end.
int Simulate(const std::string& scenario, const std::string& dir) {
  using namespace dbfa;
  // oracle_like stores row ids, which the backdating detectors need; the
  // other scenarios work under any dialect, so one choice serves all.
  DatabaseOptions options;
  options.dialect = "oracle_like";
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  SyntheticWorkload workload(db->get(), "Accounts", /*seed=*/1234);
  Status status = workload.Setup(/*rows=*/40);
  if (status.ok()) status = workload.Run(30, OpMix{}, /*logged=*/true);
  if (!status.ok()) {
    std::fprintf(stderr, "workload: %s\n", status.ToString().c_str());
    return 1;
  }

  std::string log_text;
  if (scenario == "clean") {
    log_text = (*db)->audit_log().ToText();
  } else if (scenario == "tamper") {
    // Unlogged byte-level edits, then more legitimate logged traffic that
    // recovery must preserve.
    RowPointer victim{};
    status = (*db)->heap("Accounts")->Scan([&](RowPointer ptr, const Record&) {
      victim = ptr;
      return Status::Ok();
    });
    if (status.ok()) {
      // Balance is a DOUBLE: any replacement keeps the encoded length.
      status = TamperOverwriteField(db->get(), "Accounts", victim, "Balance",
                                    Value::Real(9999.25));
    }
    if (status.ok()) {
      status = TamperInsertRecord(
          db->get(), "Accounts",
          {Value::Int(990001), Value::Str("Ghost"), Value::Str("Nowhere"),
           Value::Real(0.5)});
    }
    if (status.ok()) status = workload.Run(10, OpMix{}, /*logged=*/true);
    if (!status.ok()) {
      std::fprintf(stderr, "tamper: %s\n", status.ToString().c_str());
      return 1;
    }
    log_text = (*db)->audit_log().ToText();
  } else if (scenario == "backdate") {
    // Set the clock back, insert, restore — then rewrite the log sorted by
    // timestamp with renumbered seqs so no inversion remains. Only the
    // storage row-id order still witnesses the true order.
    int64_t now = (*db)->clock().Peek();
    (*db)->clock().Set(now - 90'000);
    for (int i = 0; i < 3 && status.ok(); ++i) {
      status = workload.RunStatement(
          StrFormat("INSERT INTO Accounts VALUES (%d, 'Evil%d', 'City', 1.0)",
                    990100 + i, i),
          /*logged=*/true);
    }
    (*db)->clock().Set(now);
    if (!status.ok()) {
      std::fprintf(stderr, "backdate: %s\n", status.ToString().c_str());
      return 1;
    }
    std::vector<AuditEntry> entries = (*db)->audit_log().entries();
    std::stable_sort(entries.begin(), entries.end(),
                     [](const AuditEntry& a, const AuditEntry& b) {
                       return a.timestamp < b.timestamp;
                     });
    for (size_t i = 0; i < entries.size(); ++i) {
      log_text += StrFormat("%zu|%lld|", i + 1,
                            static_cast<long long>(entries[i].timestamp));
      log_text += entries[i].sql;
      log_text += "\n";
    }
  } else {
    return Usage();
  }

  auto image = (*db)->SnapshotDisk();
  if (!image.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", image.status().ToString().c_str());
    return 1;
  }
  CarverConfig config;
  config.params = GetDialect(options.dialect).value();

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "mkdir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (int rc = WriteTextFile(dir + "/config.conf", ConfigToText(config));
      rc != 0) {
    return rc;
  }
  if (int rc = WriteTextFile(dir + "/audit.log", log_text); rc != 0) return rc;
  if (auto s = SaveImage(dir + "/storage.img", *image); !s.ok()) {
    std::fprintf(stderr, "image: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "simulated '%s' scenario in %s (%zu logged statements, %zu image "
      "bytes)\n",
      scenario.c_str(), dir.c_str(), (*db)->audit_log().entries().size(),
      image->size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 3) return Usage();
  std::string command = argv[1];

  if (command == "simulate") {
    if (argc != 4) return Usage();
    return Simulate(argv[2], argv[3]);
  }

  if (argc < 4) return Usage();
  LoadedCase input;
  if (int rc = LoadCase(argv[2], argv[3], &input); rc != 0) return rc;
  Reenactor reenactor(input.config);

  if (command == "replay") {
    ReplayOptions options;
    bool fingerprint = false;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      uint64_t v = 0;
      if (arg.rfind("--upto=", 0) == 0) {
        if (!ParseU64Arg(arg.c_str() + 7, &v)) return Usage();
        options.upto_seq = v;
      } else if (arg.rfind("--skip=", 0) == 0) {
        if (!ParseU64Arg(arg.c_str() + 7, &v)) return Usage();
        options.skip_seqs.insert(v);
      } else if (arg == "--fingerprint") {
        fingerprint = true;
      } else {
        return Usage();
      }
    }
    auto state = reenactor.Replay(input.log, options);
    if (!state.ok()) {
      std::fprintf(stderr, "replay: %s\n", state.status().ToString().c_str());
      return 1;
    }
    for (const StatementOutcome& outcome : state->outcomes) {
      std::printf("%s\n", outcome.ToString().c_str());
    }
    std::printf("replayed %zu statements (%zu applied, %zu failed)\n",
                state->outcomes.size(), state->applied, state->failed);
    if (fingerprint) {
      auto print = state->Fingerprint();
      if (!print.ok()) {
        std::fprintf(stderr, "fingerprint: %s\n",
                     print.status().ToString().c_str());
        return 1;
      }
      std::printf("%s", print->c_str());
    }
    return 0;
  }

  // The remaining subcommands all join the replay against a carved image.
  if (argc < 5) return Usage();
  auto carve = CarveImage(input.config, argv[4]);
  if (!carve.ok()) {
    std::fprintf(stderr, "carve: %s\n", carve.status().ToString().c_str());
    return 1;
  }

  if (command == "provenance") {
    if (argc != 5) return Usage();
    ProvenanceAnalyzer analyzer(reenactor);
    auto report = analyzer.Analyze(input.log, *carve);
    if (!report.ok()) {
      std::fprintf(stderr, "provenance: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
    return report->Consistent() ? 0 : 3;
  }

  if (command == "recover") {
    std::string script_out;
    bool verify = false;
    for (int i = 5; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--script-out=", 0) == 0) {
        script_out = arg.substr(13);
      } else if (arg == "--verify") {
        verify = true;
      } else {
        return Usage();
      }
    }
    RecoveryPlanner planner(reenactor);
    auto script = planner.Plan(input.log, *carve);
    if (!script.ok()) {
      std::fprintf(stderr, "recover: %s\n",
                   script.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", script->ToString().c_str());
    if (!script_out.empty()) {
      if (int rc = WriteTextFile(script_out, script->ToSql()); rc != 0) {
        return rc;
      }
      std::printf("recovery script written to %s\n", script_out.c_str());
    }
    if (verify) {
      auto verification = planner.Verify(*script, input.log, *carve);
      if (!verification.ok()) {
        std::fprintf(stderr, "verify: %s\n",
                     verification.status().ToString().c_str());
        return 1;
      }
      std::printf("verification: recovered state %s the claimed replay\n",
                  verification->byte_identical ? "byte-identical to"
                                               : "DIFFERS from");
      if (!verification->byte_identical) return 1;
    }
    return script->Clean() ? 0 : 3;
  }

  if (command == "validate-log") {
    if (argc != 5) return Usage();
    LogValidator validator(reenactor);
    auto report = validator.Validate(input.log, *carve);
    if (!report.ok()) {
      std::fprintf(stderr, "validate-log: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
    return report->Consistent() ? 0 : 3;
  }

  return Usage();
}
