#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit in compile_commands.json, in parallel, and
# fails on any finding — the zero-warning gate CI's static-analysis job
# enforces.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [REPORT_FILE]
#   BUILD_DIR    build tree configured with CMAKE_EXPORT_COMPILE_COMMANDS
#                (the default for this project); default: build
#   REPORT_FILE  where the full tidy output is written; default:
#                BUILD_DIR/clang-tidy-report.txt (uploaded as a CI artifact)
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
REPORT="${2:-$BUILD_DIR/clang-tidy-report.txt}"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: $TIDY not found (set CLANG_TIDY to the binary to use)." >&2
  exit 2
fi

# First-party TUs only: third-party headers are excluded by
# HeaderFilterRegex, third-party sources by this list.
mapfile -t FILES < <(
  python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if any(part in f for part in ("/src/", "/tools/", "/bench/")):
        print(f)
EOF
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "error: no first-party files found in compile_commands.json" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "clang-tidy over ${#FILES[@]} files ($JOBS jobs), report: $REPORT"

printf '%s\0' "${FILES[@]}" |
  xargs -0 -n 1 -P "$JOBS" "$TIDY" -p "$BUILD_DIR" --quiet 2>/dev/null \
  | tee "$REPORT"

# xargs exit status is non-zero if any invocation failed; findings also
# show up as "warning:"/"error:" lines in the report.
if grep -qE '(warning|error):' "$REPORT"; then
  echo "clang-tidy: findings detected (see $REPORT)" >&2
  exit 1
fi
echo "clang-tidy: clean"
