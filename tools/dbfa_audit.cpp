// dbfa_audit — run DBStorageAuditor over a storage image: B-Tree integrity
// verification plus index/table cross-matching for file-tampering evidence.
//
//   dbfa_audit <image> <config.conf> [--naive]
#include <cstdio>
#include <cstring>
#include <string>

#include "auditor/storage_auditor.h"
#include "storage/disk_image.h"

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 3) {
    std::fprintf(stderr, "usage: dbfa_audit <image> <config.conf> "
                         "[--naive]\n");
    return 2;
  }
  StorageAuditor::Options options;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--naive") == 0) {
      options.sorted_matching = false;
    }
  }
  auto config = LoadConfig(argv[2]);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  auto image = LoadImage(argv[1]);
  if (!image.ok()) {
    std::fprintf(stderr, "image: %s\n", image.status().ToString().c_str());
    return 1;
  }
  StorageAuditor auditor(*config, options);
  auto report = auditor.Audit(*image);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->ToString().c_str());
  return report->Clean() ? 0 : 3;
}
