// dbfa_fuzz — the adversarial image fuzzing campaign (docs/fuzzing.md).
//
//   dbfa_fuzz [--seed=N] [--mutants=N] [--dialects=a,b,...]
//             [--corpus-out=DIR] [--scratch=DIR] [--time-budget=SECONDS]
//   dbfa_fuzz --smoke                 # fixed-seed, time-boxed CI run
//   dbfa_fuzz --replay=DIR            # replay a committed corpus
//   dbfa_fuzz --make-corpus=DIR [--seed=N]   # regenerate curated corpus
//
// The campaign builds a clean synthetic image per dialect, applies
// seed-driven stacks of adversarial mutations, and checks every mutant
// under the never-crash + bounded-misattribution oracle (serial carve,
// parallel carves at 1/2/8 threads, snapshot ingest round-trips,
// detective runs, wrong-dialect carves). Failures are minimized and
// distilled into corpus entries.
//
// Exit codes: 0 clean, 1 fatal error, 2 usage, 3 oracle violations.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/strings.h"
#include "fuzz/campaign.h"
#include "fuzz/corpus.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbfa_fuzz [--seed=N] [--mutants=N] [--dialects=a,b,...]\n"
      "                 [--corpus-out=DIR] [--scratch=DIR]\n"
      "                 [--time-budget=SECONDS] [--smoke]\n"
      "       dbfa_fuzz --replay=DIR\n"
      "       dbfa_fuzz --make-corpus=DIR [--seed=N]\n");
  return 2;
}

std::string DefaultScratchDir() {
  std::error_code ec;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path(ec) / "dbfa_fuzz_scratch";
  if (ec) dir = "dbfa_fuzz_scratch";
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbfa;
  CampaignOptions options;
  options.seed = 1;
  // The full default campaign: >= 10,000 mutants across the 8 dialects.
  options.mutants_per_dialect = 1250;
  std::string replay_dir;
  std::string make_corpus_dir;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--mutants=", 0) == 0) {
      options.mutants_per_dialect =
          std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--dialects=", 0) == 0) {
      for (const std::string& d : Split(arg.substr(11), ',')) {
        std::string t(Trim(d));
        if (!t.empty()) options.dialects.push_back(t);
      }
    } else if (arg.rfind("--corpus-out=", 0) == 0) {
      options.corpus_dir = arg.substr(13);
    } else if (arg.rfind("--scratch=", 0) == 0) {
      options.scratch_dir = arg.substr(10);
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      options.time_budget_seconds = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_dir = arg.substr(9);
    } else if (arg.rfind("--make-corpus=", 0) == 0) {
      make_corpus_dir = arg.substr(14);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      return Usage();
    }
  }

  if (!make_corpus_dir.empty()) {
    Result<size_t> n = WriteCuratedCorpus(make_corpus_dir, options.seed);
    if (!n.ok()) {
      std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu corpus entries to %s\n", *n,
                make_corpus_dir.c_str());
    return 0;
  }

  if (!replay_dir.empty()) {
    Result<std::vector<std::string>> sidecars =
        ListCorpusSidecars(replay_dir);
    if (!sidecars.ok()) {
      std::fprintf(stderr, "%s\n", sidecars.status().ToString().c_str());
      return 1;
    }
    std::string scratch = options.scratch_dir.empty() ? DefaultScratchDir()
                                                      : options.scratch_dir;
    size_t failures = 0;
    for (const std::string& sidecar : *sidecars) {
      Status s = ReplayCorpusEntry(sidecar, scratch);
      std::printf("%-60s %s\n", sidecar.c_str(),
                  s.ok() ? "ok" : s.ToString().c_str());
      if (!s.ok()) ++failures;
    }
    std::printf("replayed %zu entries, %zu failures\n", sidecars->size(),
                failures);
    return failures == 0 ? 0 : 3;
  }

  if (smoke) {
    // Fixed seed, bounded wall clock: the CI configuration. Small enough
    // for an ASan build, large enough to cross every mutator/dialect pair.
    options.seed = 1;
    options.mutants_per_dialect = 40;
    options.time_budget_seconds = options.time_budget_seconds > 0
                                      ? options.time_budget_seconds
                                      : 60.0;
  }
  if (options.scratch_dir.empty()) options.scratch_dir = DefaultScratchDir();

  FuzzCampaign campaign(options);
  Result<CampaignReport> report = campaign.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->ToString().c_str());
  return report->failures.empty() ? 0 : 3;
}
