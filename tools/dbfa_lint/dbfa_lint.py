#!/usr/bin/env python3
"""dbfa_lint: project-specific invariant checker for the dbfa tree.

Enforces invariants the generic tools (clang-tidy, -Wthread-safety) cannot
express, documented in docs/static_analysis.md:

  raw-byte-read     reinterpret_cast / memcpy outside the audited byte
                    accessors (common/bytes.h, sql/row_codec, common/
                    checksum — see allowlist.txt). All type punning over
                    carved, hostile input must go through bounds-checked,
                    reviewed code.
  nodiscard-status  Status/Result must stay [[nodiscard]] in
                    src/common/status.h, and explicitly discarded calls
                    ("(void)Foo(...)") need a justifying allow comment —
                    a dropped Status loses an error on the floor.
  unordered-iter    no std::unordered_{map,set} iteration in the
                    determinism-critical merge/carver/detective code
                    unless the site is annotated as order-insensitive or
                    feeding a sort: hash-order iteration silently breaks
                    the bit-identical-output contract.
  naked-rand-time   no rand()/srand()/time() in src/: forensic runs must
                    be reproducible; randomness comes from the seeded
                    common/rng.h, timestamps from the virtual clock.
  hot-loop-string   no std::string construction (std::string temporaries,
                    std::to_string, stringstreams, .ToString()) inside
                    regions bracketed by "// dbfa:hot-loop-begin" ...
                    "// dbfa:hot-loop-end" markers. Those kernels run per
                    carved row; string work must stay on StringRef /
                    string_view (pool identity, cached hash, memcmp) or
                    move outside the loop.
  raw-sync          no raw std::mutex / lock_guard / unique_lock /
                    scoped_lock / condition_variable in src/ outside
                    common/mutex.h (see allowlist.txt). All locking goes
                    through dbfa::Mutex so it carries a (name, rank)
                    identity and stays visible to the thread-safety
                    annotations, dbfa_lockcheck's cross-TU lock-order
                    analysis, and the DBFA_LOCK_DEBUG runtime validator —
                    a raw std primitive is invisible to all three.

Suppression: append "// dbfa-lint: allow(<rule>): <why>" on the offending
line or the line above it. File-level exemptions live in allowlist.txt
next to this script.

Run over the tree (from anywhere inside the repo):
    python3 tools/dbfa_lint/dbfa_lint.py
Regression-test the linter itself against tests/lint_fixtures/:
    python3 tools/dbfa_lint/dbfa_lint.py --self-test

Lexical, stdlib-only by design: the container toolchain has no libclang,
and every invariant above is expressible over comment/string-stripped
token text. Scanned files are the first-party .cc/.h/.cpp sources; the
optional compile_commands.json is not required.
"""

import argparse
import os
import re
import sys

RULES = ("raw-byte-read", "nodiscard-status", "unordered-iter",
         "naked-rand-time", "hot-loop-string", "raw-sync")

# Directories (relative to the repo root) whose output ordering is part of
# the bit-identical determinism contract; unordered-iter fires only here.
DETERMINISM_DIRS = (
    "src/core/",
    "src/metaquery/",
    "src/detective/",
    "src/snapshot/",
)

ALLOW_RE = re.compile(r"dbfa-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Returns (code, comments) where `code` is `text` with comments and
    string/char literals blanked (newlines preserved, so line numbers
    survive) and `comments` maps line number -> concatenated comment text
    on that line."""
    code = []
    comments = {}
    i, n, line = 0, len(text), 1

    def note_comment(ln, s):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            note_comment(line, text[i:j])
            code.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            for off, part in enumerate(chunk.split("\n")):
                note_comment(line + off, part)
            code.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = j
        elif c == '"' or c == "'":
            # R"delim(...)delim" raw strings first.
            if c == '"' and i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^(\s]*)\(', text[i - 1:i + 20])
                if m:
                    end = text.find(f"){m.group(1)}\"", i)
                    j = n if end == -1 else end + len(m.group(1)) + 2
                    chunk = text[i:j]
                    code.append(re.sub(r"[^\n]", " ", chunk))
                    line += chunk.count("\n")
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            code.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            if c == "\n":
                line += 1
            code.append(c)
            i += 1
    return "".join(code), comments


def allowed(rule, lineno, comments, code):
    """True if the finding line, or the contiguous comment block directly
    above it, carries "dbfa-lint: allow(<rule>)"."""
    code_lines = code.split("\n")

    def matches(ln):
        m = ALLOW_RE.search(comments.get(ln, ""))
        return bool(m and m.group(1) == rule)

    if matches(lineno):
        return True
    ln = lineno - 1
    # Walk up through comment-only lines (blank code after stripping).
    while (ln >= 1 and ln in comments
           and not code_lines[ln - 1].strip()):
        if matches(ln):
            return True
        ln -= 1
    return False


def line_of(pos, code):
    return code.count("\n", 0, pos) + 1


def balanced_span(code, open_pos, open_ch="(", close_ch=")"):
    """Returns the position just past the matching close bracket."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


# ---- raw-byte-read --------------------------------------------------------

RAW_BYTE_RE = re.compile(r"\breinterpret_cast\b|\b(?:std::)?memcpy\s*\(")


def check_raw_byte_read(relpath, code, comments, findings):
    if not relpath.startswith("src/"):
        return
    for m in RAW_BYTE_RE.finditer(code):
        ln = line_of(m.start(), code)
        if allowed("raw-byte-read", ln, comments, code):
            continue
        tok = "reinterpret_cast" if "reinterpret" in m.group(0) else "memcpy"
        findings.append(Finding(
            relpath, ln, "raw-byte-read",
            f"raw {tok} outside the audited byte accessors; use "
            "AsByteView/AsStringView/CopyBytes or the common/bytes.h "
            "codecs (file-level exemptions: tools/dbfa_lint/allowlist.txt)"))


# ---- nodiscard-status -----------------------------------------------------

DISCARD_CAST_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_(][^;{}]*\(")


def check_nodiscard_status(relpath, code, comments, findings):
    if relpath == "src/common/status.h":
        for cls in ("Status", "Result"):
            if not re.search(
                    r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b", code):
                findings.append(Finding(
                    relpath, 1, "nodiscard-status",
                    f"class {cls} must be declared [[nodiscard]] so "
                    "dropped errors fail the build"))
    if not relpath.startswith("src/"):
        return
    for m in DISCARD_CAST_RE.finditer(code):
        ln = line_of(m.start(), code)
        if allowed("nodiscard-status", ln, comments, code):
            continue
        findings.append(Finding(
            relpath, ln, "nodiscard-status",
            "explicitly discarded call result; if the Status genuinely "
            "cannot be acted on, justify it with "
            "// dbfa-lint: allow(nodiscard-status): <why>"))


# ---- unordered-iter -------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<")
USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::unordered_(?:map|set)\s*<")
FOR_RE = re.compile(r"\bfor\s*\(")


def unordered_variables(code):
    """Names of variables (or members/params) whose declared type is an
    unordered container or a same-file alias of one."""
    aliases = set(USING_ALIAS_RE.findall(code))
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        end = balanced_span(code, m.end() - 1, "<", ">")
        tail = code[end:end + 80]
        dm = re.match(r"\s*[*&]*\s*(\w+)", tail)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    for alias in aliases:
        for dm in re.finditer(r"\b" + alias + r"\s*[*&]*\s+(\w+)", code):
            names.add(dm.group(1))
    return names


def check_unordered_iter(relpath, code, comments, findings):
    if not any(relpath.startswith(d) for d in DETERMINISM_DIRS):
        return
    names = unordered_variables(code)
    if not names:
        return
    for m in FOR_RE.finditer(code):
        open_pos = m.end() - 1
        close = balanced_span(code, open_pos)
        header = code[open_pos + 1:close - 1]
        # Split a range-for header on its top-level ':' (ignore '::').
        depth, split = 0, -1
        for i, ch in enumerate(header):
            if ch in "(<[{":
                depth += 1
            elif ch in ")>]}":
                depth -= 1
            elif (ch == ":" and depth == 0
                  and (i == 0 or header[i - 1] != ":")
                  and (i + 1 >= len(header) or header[i + 1] != ":")):
                split = i
                break
        if split == -1:
            continue
        target = header[split + 1:].strip()
        target = target.lstrip("*& ")
        base = re.split(r"\.|->", target)[-1].strip()
        if base in names:
            ln = line_of(m.start(), code)
            if allowed("unordered-iter", ln, comments, code):
                continue
            findings.append(Finding(
                relpath, ln, "unordered-iter",
                f"iteration over unordered container '{base}' in "
                "determinism-critical code; hash order must not reach the "
                "output — sort first, or annotate the site "
                "// dbfa-lint: allow(unordered-iter): <why ordering "
                "cannot leak>"))


# ---- naked-rand-time ------------------------------------------------------

RAND_TIME_RE = re.compile(
    r"(?<![\w.>])(?<!->)\b(rand|srand|time)\s*\(")


def check_rand_time(relpath, code, comments, findings):
    if not relpath.startswith("src/"):
        return
    for m in RAND_TIME_RE.finditer(code):
        # `time(...)` only counts as libc time() when called with no args,
        # NULL, nullptr, or 0 — Clock::time(x) style methods stay legal.
        if m.group(1) == "time":
            close = balanced_span(code, m.end() - 1)
            arg = code[m.end():close - 1].strip()
            if arg not in ("", "NULL", "nullptr", "0", "&t"):
                continue
        ln = line_of(m.start(), code)
        if allowed("naked-rand-time", ln, comments, code):
            continue
        findings.append(Finding(
            relpath, ln, "naked-rand-time",
            f"naked {m.group(1)}() breaks reproducibility; use the seeded "
            "dbfa::Rng (common/rng.h) or the engine's virtual clock"))


# ---- hot-loop-string ------------------------------------------------------

HOT_STRING_RE = re.compile(
    r"\bstd::(?:string\b(?!_view)|to_string\s*\("
    r"|[io]?stringstream\b)"
    r"|(?:\.|->)\s*ToString\s*\(")


def hot_loop_regions(comments):
    """(begin, end) line pairs for "dbfa:hot-loop-begin/end" marker
    comments; an unmatched begin extends to end-of-file so a deleted end
    marker cannot silently disable the rule."""
    begins = sorted(ln for ln, txt in comments.items()
                    if "dbfa:hot-loop-begin" in txt)
    ends = sorted(ln for ln, txt in comments.items()
                  if "dbfa:hot-loop-end" in txt)
    regions = []
    ei = 0
    for b in begins:
        while ei < len(ends) and ends[ei] <= b:
            ei += 1
        e = ends[ei] if ei < len(ends) else float("inf")
        ei += 1
        regions.append((b, e))
    return regions


def check_hot_loop_string(relpath, code, comments, findings):
    regions = hot_loop_regions(comments)
    if not regions:
        return
    for m in HOT_STRING_RE.finditer(code):
        ln = line_of(m.start(), code)
        if not any(b < ln < e for b, e in regions):
            continue
        if allowed("hot-loop-string", ln, comments, code):
            continue
        tok = m.group(0).strip(" \t.(->")
        findings.append(Finding(
            relpath, ln, "hot-loop-string",
            f"{tok} inside a dbfa:hot-loop region; this code runs per "
            "carved row — compare via StringRef/string_view (pool id, "
            "cached hash, memcmp) and build strings outside the loop, or "
            "justify with // dbfa-lint: allow(hot-loop-string): <why>"))


# ---- raw-sync -------------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable(?:_any)?)\b")


def check_raw_sync(relpath, code, comments, findings):
    if not relpath.startswith("src/"):
        return
    for m in RAW_SYNC_RE.finditer(code):
        ln = line_of(m.start(), code)
        if allowed("raw-sync", ln, comments, code):
            continue
        findings.append(Finding(
            relpath, ln, "raw-sync",
            f"raw std::{m.group(1)} outside common/mutex.h; use "
            "dbfa::Mutex / MutexLock / CondVar so the lock has a (name, "
            "rank) identity and stays visible to -Wthread-safety, "
            "dbfa_lockcheck, and the DBFA_LOCK_DEBUG validator "
            "(file-level exemptions: tools/dbfa_lint/allowlist.txt)"))


CHECKS = {
    "raw-byte-read": check_raw_byte_read,
    "nodiscard-status": check_nodiscard_status,
    "unordered-iter": check_unordered_iter,
    "naked-rand-time": check_rand_time,
    "hot-loop-string": check_hot_loop_string,
    "raw-sync": check_raw_sync,
}


# ---- driver ---------------------------------------------------------------

def load_allowlist(path):
    """allowlist.txt lines: "<rule> <path-prefix>  # why"."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            stripped = raw.split("#", 1)[0].strip()
            if not stripped:
                continue
            parts = stripped.split()
            if len(parts) != 2 or parts[0] not in RULES:
                raise SystemExit(
                    f"allowlist: bad line {raw.rstrip()!r} "
                    f"(want '<rule> <path-prefix>')")
            entries.append((parts[0], parts[1]))
    return entries


def lint_text(relpath, text, allowlist):
    findings = []
    code, comments = strip_comments_and_strings(text)
    for rule, check in CHECKS.items():
        if any(r == rule and relpath.startswith(prefix)
               for r, prefix in allowlist):
            continue
        check(relpath, code, comments, findings)
    return findings


def iter_source_files(root):
    for top in ("src", "tools", "bench"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if name.endswith((".cc", ".h", ".cpp")):
                    yield os.path.join(dirpath, name)


def run_tree(root, paths, allowlist):
    findings = []
    files = paths or sorted(iter_source_files(root))
    for path in files:
        relpath = os.path.relpath(os.path.abspath(path), root).replace(
            os.sep, "/")
        with open(path, encoding="utf-8") as f:
            findings.extend(lint_text(relpath, f.read(), allowlist))
    return findings


FIXTURE_HEADER_RE = re.compile(
    r"//\s*dbfa-lint-fixture:\s*path=(\S+)\s+rule=(\S+)\s+expect=(\d+)")


def run_self_test(root, allowlist):
    """Every fixture declares the pretend path it is linted under, the rule
    it exercises, and how many findings of that rule it must produce; a
    rule that stops firing on its known-bad fixture fails the suite."""
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith((".cc", ".h")))
    if not fixtures:
        print("self-test: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    exercised = set()
    for name in fixtures:
        with open(os.path.join(fixture_dir, name), encoding="utf-8") as f:
            text = f.read()
        m = FIXTURE_HEADER_RE.search(text)
        if not m:
            print(f"self-test: {name}: missing dbfa-lint-fixture header")
            failures += 1
            continue
        pretend, rule, expect = m.group(1), m.group(2), int(m.group(3))
        if rule not in RULES:
            print(f"self-test: {name}: unknown rule {rule}")
            failures += 1
            continue
        got = [f for f in lint_text(pretend, text, allowlist)
               if f.rule == rule]
        if len(got) != expect:
            print(f"self-test: {name}: expected {expect} {rule} "
                  f"finding(s) under pretend path {pretend}, got "
                  f"{len(got)}")
            for f in got:
                print(f"  {f}")
            failures += 1
        if expect > 0:
            exercised.add(rule)
    missing = set(RULES) - exercised
    if missing:
        print(f"self-test: no failing fixture exercises: "
              f"{', '.join(sorted(missing))}")
        failures += 1
    if failures == 0:
        print(f"self-test: {len(fixtures)} fixtures ok, "
              f"all {len(RULES)} rules exercised")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: src/, tools/, bench/)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above script)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: next to the script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite in tests/lint_fixtures/")
    args = parser.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(script_dir))
    allowlist = load_allowlist(
        args.allowlist or os.path.join(script_dir, "allowlist.txt"))

    if args.self_test:
        return run_self_test(root, allowlist)

    findings = run_tree(root, args.paths, allowlist)
    for f in findings:
        print(f)
    if findings:
        print(f"dbfa_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("dbfa_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
