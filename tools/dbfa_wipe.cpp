// dbfa_wipe — sanitize a storage image in place: erase deleted records,
// dangling index values, catalog remnants and unallocated pages, repairing
// page metadata (Section II-D's defensive anti-forensics).
//
//   dbfa_wipe <image> <config.conf> [-o <out.img>]
//
// Without -o the input image is overwritten.
#include <cstdio>
#include <cstring>
#include <string>

#include "antiforensics/wiper.h"
#include "storage/disk_image.h"

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: dbfa_wipe <image> <config.conf> [-o <out.img>]\n");
    return 2;
  }
  std::string out_path = argv[1];
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }
  auto config = LoadConfig(argv[2]);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  auto image = LoadImage(argv[1]);
  if (!image.ok()) {
    std::fprintf(stderr, "image: %s\n", image.status().ToString().c_str());
    return 1;
  }
  Wiper wiper(*config);
  auto report = wiper.WipeImage(&*image);
  if (!report.ok()) {
    std::fprintf(stderr, "wipe: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (auto s = SaveImage(out_path, *image); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s\nwrote %s\n", report->ToString().c_str(),
              out_path.c_str());
  return 0;
}
