// dbfa_mkimage — produce a demo storage image (plus matching audit log)
// for exercising dbfa_carve/dbfa_audit without writing code: builds a
// MiniDB of the chosen dialect, runs a seeded workload including deletes,
// updates, a dropped table and two unlogged attack operations.
//
//   dbfa_mkimage <dialect> <out.img> [<out.log>] [--seed=N]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/database.h"
#include "storage/disk_image.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: dbfa_mkimage <dialect> <out.img> [<out.log>] "
                 "[--seed=N]\n");
    return 2;
  }
  uint64_t seed = 42;
  std::string log_path;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      log_path = arg;
    }
  }
  DatabaseOptions options;
  options.dialect = argv[1];
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  SyntheticWorkload workload(db->get(), "Accounts", seed);
  if (!workload.Setup(250).ok() ||
      !workload.Run(200, OpMix{}, /*logged=*/true).ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }
  // A dropped table with a secret.
  (void)(*db)->ExecuteSql(
      "CREATE TABLE Shadow (k INT, secret VARCHAR(32), PRIMARY KEY (k))");
  (void)(*db)->ExecuteSql(
      "INSERT INTO Shadow VALUES (1, 'the-dropped-secret')");
  (void)(*db)->ExecuteSql("DROP TABLE Shadow");
  // The attack: two unlogged operations.
  (void)workload.RunStatement("DELETE FROM Accounts WHERE Owner = 'Thomas'",
                              /*logged=*/false);
  (void)workload.RunStatement(
      "INSERT INTO Accounts VALUES (99001, 'Mallory', 'Shadow', 1.0)",
      /*logged=*/false);

  auto image = (*db)->SnapshotDisk();
  if (!image.ok()) return 1;
  if (auto s = SaveImage(argv[2], *image); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bytes, dialect %s)\n", argv[2], image->size(),
              argv[1]);
  if (!log_path.empty()) {
    if (auto s = (*db)->audit_log().SaveTo(log_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu entries; the 2 attack ops are absent)\n",
                log_path.c_str(), (*db)->audit_log().entries().size());
  }
  return 0;
}
