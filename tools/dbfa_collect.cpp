// dbfa_collect — run the black-box parameter collector against a MiniDB
// instance of the chosen dialect and write the configuration file.
//
//   dbfa_collect <dialect> <out.conf>
#include <cstdio>
#include <string>

#include "core/parameter_collector.h"
#include "engine/database.h"
#include "storage/dialects.h"

int main(int argc, char** argv) {
  using namespace dbfa;
  if (argc != 3) {
    std::fprintf(stderr, "usage: dbfa_collect <dialect> <out.conf>\n"
                         "dialects:");
    for (const std::string& name : BuiltinDialectNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  DatabaseOptions options;
  options.dialect = argv[1];
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  MiniDbBlackBox blackbox(db->get());
  ParameterCollector collector;
  auto config = collector.Collect(&blackbox);
  if (!config.ok()) {
    std::fprintf(stderr, "collection failed: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  if (auto s = SaveConfig(argv[2], *config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", argv[2]);
  return 0;
}
