#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace dbfa {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> blocks;
  for (size_t n : {1u, 7u, 8u, 64u, 3u, 129u}) {
    char* p = arena.Allocate(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u)
        << "n=" << n;
    std::memset(p, 0xAB, n);  // ASan/valgrind would flag an overlap or OOB
    blocks.emplace_back(p, n);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t j = i + 1; j < blocks.size(); ++j) {
      char* a = blocks[i].first;
      char* b = blocks[j].first;
      EXPECT_TRUE(a + blocks[i].second <= b || b + blocks[j].second <= a)
          << "blocks " << i << " and " << j << " overlap";
    }
  }
}

TEST(ArenaTest, RespectsExplicitAlignment) {
  Arena arena;
  arena.Allocate(1);  // misalign the bump cursor
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    char* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(ArenaTest, ChunksGrowGeometricallyAndOversizedGetsDedicatedChunk) {
  Arena arena(/*initial_chunk_bytes=*/64);
  EXPECT_EQ(arena.chunk_count(), 0u);  // chunks appear on first use
  arena.Allocate(1);
  EXPECT_EQ(arena.chunk_count(), 1u);

  // Filling well past the first chunk forces growth; doubling keeps the
  // chunk count logarithmic in the bytes allocated.
  for (int i = 0; i < 200; ++i) arena.Allocate(16, /*align=*/1);
  size_t chunks_after_fill = arena.chunk_count();
  EXPECT_GE(chunks_after_fill, 2u);
  EXPECT_LE(chunks_after_fill, 8u);

  // An allocation larger than kMaxChunkBytes gets its own exactly-sized
  // chunk instead of distorting the growth schedule.
  size_t before = arena.bytes_reserved();
  char* big = arena.Allocate(Arena::kMaxChunkBytes + 123, /*align=*/1);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5C, Arena::kMaxChunkBytes + 123);
  EXPECT_EQ(arena.chunk_count(), chunks_after_fill + 1);
  EXPECT_GE(arena.bytes_reserved(), before + Arena::kMaxChunkBytes + 123);
}

TEST(ArenaTest, AccountingTracksUsedAndReserved) {
  Arena arena(/*initial_chunk_bytes=*/128);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);

  arena.Allocate(100, /*align=*/1);
  EXPECT_EQ(arena.bytes_used(), 100u);
  EXPECT_GE(arena.bytes_reserved(), 128u);

  // Alignment padding counts as used: the padded bytes are not available
  // to later allocations.
  arena.Allocate(1, /*align=*/1);
  size_t used_before = arena.bytes_used();
  arena.Allocate(8, /*align=*/8);
  EXPECT_GE(arena.bytes_used(), used_before + 8);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, PointersStayValidAcrossGrowth) {
  Arena arena(/*initial_chunk_bytes=*/64);
  // Write a distinct pattern into early allocations, then allocate enough
  // to grow the arena many times; the early bytes must be untouched (bump
  // allocators never move or reuse handed-out memory).
  char* first = arena.Allocate(32, /*align=*/1);
  std::memset(first, 0x11, 32);
  for (int i = 0; i < 10000; ++i) arena.Allocate(64, /*align=*/1);
  for (size_t i = 0; i < 32; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(first[i]), 0x11u) << "byte " << i;
  }
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  char* p = arena.Allocate(0);
  EXPECT_NE(p, nullptr);
}

}  // namespace
}  // namespace dbfa
