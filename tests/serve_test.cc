// AuditDaemon: graceful shutdown draining in-flight captures, findings
// equivalence with the one-shot detective over the same capture sequence,
// stats/queue invariants under forced backpressure, and zero findings for
// a clean fleet. Labeled serve-sanitize: `ctest -L serve` runs them in
// every build and the TSan job's `-L 'sanitize|snapshot'` picks them up
// for race coverage.
#include "serve/audit_daemon.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "storage/dialects.h"
#include "storage/value.h"
#include "workload/fleet.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

std::string FreshRoot(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

FleetOptions SmallFleet(size_t instances, double attack_rate) {
  FleetOptions options;
  options.instances = instances;
  options.seed_rows = 24;
  options.ops_per_tick = 4;
  options.attack_rate = attack_rate;
  options.seed = 99;
  return options;
}

TEST(ServeTest, ShutdownDrainsInFlightCaptures) {
  auto fleet = FleetSimulator::Make(SmallFleet(6, 0.5));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ServeOptions serve;
  serve.root = FreshRoot("serve_drain");
  serve.shards = 2;
  serve.queue_capacity = 64;
  auto daemon = AuditDaemon::Start(serve);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  for (size_t i = 0; i < (*fleet)->size(); ++i) {
    ASSERT_TRUE((*daemon)
                    ->AddInstance(FleetSimulator::InstanceName(i),
                                  (*fleet)->Config())
                    .ok());
  }
  // Submit two ticks of captures and shut down immediately — no Drain().
  // Every accepted capture must still be processed before Shutdown returns.
  uint64_t accepted = 0;
  for (int tick = 0; tick < 2; ++tick) {
    for (size_t i = 0; i < (*fleet)->size(); ++i) {
      auto image = (*fleet)->Tick(i);
      ASSERT_TRUE(image.ok()) << image.status().ToString();
      Status submitted =
          (*daemon)->SubmitCapture(i, std::move(*image), (*fleet)->Log(i));
      if (submitted.ok()) ++accepted;
    }
  }
  ASSERT_TRUE((*daemon)->Shutdown().ok());
  ServeStats stats = (*daemon)->Stats();
  EXPECT_EQ(stats.captures_completed + stats.captures_failed, accepted);
  EXPECT_EQ(stats.captures_failed, 0u);
  EXPECT_EQ(stats.invariants, "ok");
  // The stats file is written as part of shutdown.
  EXPECT_TRUE(fs::exists(fs::path(serve.root) / AuditDaemon::kStatsFile));
  // Intake is refused after shutdown.
  Status late = (*daemon)->SubmitCapture(0, Bytes{1, 2, 3}, (*fleet)->Log(0));
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
}

TEST(ServeTest, FindingsMatchOneShotDetectiveOnSameCaptures) {
  // One instance, attacked every tick. The daemon audits incrementally
  // (full detection on capture 1, delta-only re-matching after); the
  // reference below carves every capture from scratch and runs the full
  // Figure-4 match. Their deduplicated finding sets must be identical.
  FleetOptions fleet_options = SmallFleet(1, 1.0);
  auto fleet = FleetSimulator::Make(fleet_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ServeOptions serve;
  serve.root = FreshRoot("serve_equiv");
  serve.shards = 1;
  auto daemon = AuditDaemon::Start(serve);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  ASSERT_TRUE((*daemon)
                  ->AddInstance(FleetSimulator::InstanceName(0),
                                (*fleet)->Config())
                  .ok());

  std::set<std::string> expected;
  CarverConfig config = (*fleet)->Config();
  Carver carver(config, CarveOptions{});
  for (int tick = 0; tick < 4; ++tick) {
    auto image = (*fleet)->Tick(0);
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    // Reference: one-shot carve + full detection of this very capture
    // against the log as collected at capture time.
    AuditLog log_at_capture = (*fleet)->Log(0);
    auto carve = carver.Carve(*image);
    ASSERT_TRUE(carve.ok()) << carve.status().ToString();
    DbDetective detective(&*carve, &log_at_capture);
    auto mods = detective.FindUnattributedModifications();
    ASSERT_TRUE(mods.ok()) << mods.status().ToString();
    for (const UnattributedModification& mod : *mods) {
      expected.insert(mod.Key());
    }
    ASSERT_TRUE(
        (*daemon)->SubmitCapture(0, std::move(*image), log_at_capture).ok());
  }
  (*daemon)->Drain();
  ASSERT_TRUE((*daemon)->Shutdown().ok());

  std::set<std::string> actual;
  for (const ServeFinding& finding : (*daemon)->Findings()) {
    EXPECT_EQ(finding.instance, FleetSimulator::InstanceName(0));
    actual.insert(finding.mod.Key());
  }
  EXPECT_EQ(actual, expected);
  EXPECT_GE(actual.size(), 1u) << "attacked every tick, expected findings";
}

TEST(ServeTest, BackpressureRejectsAndKeepsCountersConsistent) {
  auto fleet = FleetSimulator::Make(SmallFleet(8, 0.0));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ServeOptions serve;
  serve.root = FreshRoot("serve_backpressure");
  serve.shards = 1;          // one worker...
  serve.queue_capacity = 1;  // ...and a single-slot queue: rejects certain
  auto daemon = AuditDaemon::Start(serve);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  for (size_t i = 0; i < (*fleet)->size(); ++i) {
    ASSERT_TRUE((*daemon)
                    ->AddInstance(FleetSimulator::InstanceName(i),
                                  (*fleet)->Config())
                    .ok());
  }
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (int tick = 0; tick < 3; ++tick) {
    for (size_t i = 0; i < (*fleet)->size(); ++i) {
      auto image = (*fleet)->Tick(i);
      ASSERT_TRUE(image.ok()) << image.status().ToString();
      Status submitted =
          (*daemon)->SubmitCapture(i, std::move(*image), (*fleet)->Log(i));
      if (submitted.ok()) {
        ++accepted;
      } else {
        ASSERT_EQ(submitted.code(), StatusCode::kUnavailable)
            << submitted.ToString();
        ++rejected;
      }
    }
  }
  (*daemon)->Drain();
  ASSERT_TRUE((*daemon)->Shutdown().ok());
  ServeStats stats = (*daemon)->Stats();
  EXPECT_GT(rejected, 0u) << "a 1-slot queue must have pushed back";
  EXPECT_EQ(stats.captures_submitted, accepted + rejected);
  EXPECT_EQ(stats.captures_rejected, rejected);
  EXPECT_EQ(stats.captures_completed, accepted);
  EXPECT_EQ(stats.MaxQueueHighWater(), 1u);
  EXPECT_EQ(stats.invariants, "ok");
  // Clean fleet: backpressure must only ever drop work, never invent
  // findings.
  EXPECT_EQ(stats.findings, 0u);
}

TEST(ServeTest, CleanFleetProducesNoFindings) {
  auto fleet = FleetSimulator::Make(SmallFleet(4, 0.0));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ServeOptions serve;
  serve.root = FreshRoot("serve_clean");
  serve.shards = 2;
  auto daemon = AuditDaemon::Start(serve);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  for (size_t i = 0; i < (*fleet)->size(); ++i) {
    ASSERT_TRUE((*daemon)
                    ->AddInstance(FleetSimulator::InstanceName(i),
                                  (*fleet)->Config())
                    .ok());
  }
  for (int tick = 0; tick < 3; ++tick) {
    for (size_t i = 0; i < (*fleet)->size(); ++i) {
      auto image = (*fleet)->Tick(i);
      ASSERT_TRUE(image.ok()) << image.status().ToString();
      ASSERT_TRUE((*daemon)
                      ->SubmitCapture(i, std::move(*image), (*fleet)->Log(i))
                      .ok());
    }
  }
  (*daemon)->Drain();
  ASSERT_TRUE((*daemon)->Shutdown().ok());
  ServeStats stats = (*daemon)->Stats();
  EXPECT_EQ(stats.findings, 0u);
  EXPECT_TRUE((*daemon)->Findings().empty());
  EXPECT_EQ(stats.captures_failed, 0u);
  EXPECT_EQ(stats.snapshots, 12u);  // 4 instances x 3 ticks, none rejected
  // Warm re-ingests of mostly-unchanged instances must hit the dedup path.
  EXPECT_GT(stats.pages_reused, 0u);
}

TEST(ServeTest, StatsJsonIsWrittenAndWellFormed) {
  auto fleet = FleetSimulator::Make(SmallFleet(2, 0.0));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ServeOptions serve;
  serve.root = FreshRoot("serve_json");
  auto daemon = AuditDaemon::Start(serve);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  for (size_t i = 0; i < (*fleet)->size(); ++i) {
    ASSERT_TRUE((*daemon)
                    ->AddInstance(FleetSimulator::InstanceName(i),
                                  (*fleet)->Config())
                    .ok());
  }
  auto image = (*fleet)->Tick(0);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(
      (*daemon)->SubmitCapture(0, std::move(*image), (*fleet)->Log(0)).ok());
  (*daemon)->Drain();
  ASSERT_TRUE((*daemon)->Shutdown().ok());

  std::string json = (*daemon)->Stats().ToJson();
  EXPECT_NE(json.find("\"format\": \"dbfa-serve-stats v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"captures_completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"invariants\": \"ok\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ServeTest, ResolveFindingClearsDedupAndAllowsRereport) {
  // One hand-built instance: a logged workload plus one unlogged INSERT
  // (the Section III-A attack). The attack row persists in storage, so
  // every capture re-detects it; the dedup set must suppress the repeats
  // until ResolveFinding clears the entry.
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 17);
  ASSERT_TRUE(workload.Setup(24).ok());
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Accounts VALUES (9001, 'Ghost', 'X', 1.0)")
          .ok());
  db->audit_log().SetEnabled(true);
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();

  ServeOptions serve;
  serve.root = FreshRoot("serve_resolve");
  serve.shards = 1;
  auto daemon = AuditDaemon::Start(serve);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  ASSERT_TRUE((*daemon)->AddInstance("inst", config).ok());

  auto submit = [&] {
    auto image = db->SnapshotDisk();
    ASSERT_TRUE(image.ok());
    ASSERT_TRUE(
        (*daemon)->SubmitCapture(0, std::move(*image), db->audit_log()).ok());
    (*daemon)->Drain();
  };
  submit();
  auto findings = (*daemon)->Findings();
  ASSERT_EQ(findings.size(), 1u);
  UnattributedModification mod = findings[0].mod;

  // Logged traffic appends to the attack row's page, so the incremental
  // re-match sees the row again — and the dedup entry suppresses it.
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Accounts VALUES (200, 'A', 'B', 2.0)")
          .ok());
  submit();
  EXPECT_EQ((*daemon)->Findings().size(), 1u);

  // Unknown instance ids are NotFound; resolution is idempotent.
  EXPECT_EQ((*daemon)->ResolveFinding(5, mod).status().code(),
            StatusCode::kNotFound);
  auto cleared = (*daemon)->ResolveFinding(0, mod);
  ASSERT_TRUE(cleared.ok());
  EXPECT_TRUE(*cleared);
  auto again = (*daemon)->ResolveFinding(0, mod);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again) << "entry already cleared";

  // After resolution a recurrence is re-reported as a fresh feed line.
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Accounts VALUES (201, 'C', 'D', 3.0)")
          .ok());
  submit();
  findings = (*daemon)->Findings();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[1].mod.Key(), mod.Key());

  ASSERT_TRUE((*daemon)->Shutdown().ok());
  ServeStats stats = (*daemon)->Stats();
  EXPECT_EQ(stats.findings_resolved, 1u);
  EXPECT_EQ(stats.invariants, "ok");
  EXPECT_NE(stats.ToJson().find("\"findings_resolved\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace dbfa
