#include "sql/row_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace dbfa::sql {
namespace {

Record RoundTrip(const Record& r) {
  std::string buf;
  AppendRecord(r, &buf);
  Record out;
  size_t pos = 0;
  Status s = DecodeRecord(buf, &pos, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(pos, buf.size());
  return out;
}

void ExpectSameValue(const Value& a, const Value& b) {
  ASSERT_EQ(a.type(), b.type());
  EXPECT_EQ(Value::Compare(a, b), 0);
}

TEST(RowCodecTest, RoundTripsEveryValueType) {
  Record r;
  r.push_back(Value::Null());
  r.push_back(Value::Int(0));
  r.push_back(Value::Int(std::numeric_limits<int64_t>::min()));
  r.push_back(Value::Int(std::numeric_limits<int64_t>::max()));
  r.push_back(Value::Real(3.25));
  r.push_back(Value::Real(-0.0));
  r.push_back(Value::Str(""));
  r.push_back(Value::Str(std::string("nul\0inside", 10)));
  r.push_back(Value::Str(std::string(70000, 'q')));  // > one u16
  Record out = RoundTrip(r);
  ASSERT_EQ(out.size(), r.size());
  for (size_t i = 0; i < r.size(); ++i) ExpectSameValue(r[i], out[i]);
}

TEST(RowCodecTest, DoubleBitsSurviveExactly) {
  // The codec must preserve the bit pattern, not just the numeric value:
  // -0.0 compares equal to 0.0 but renders differently.
  for (double d : {-0.0, 0.1, std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::infinity()}) {
    Record out = RoundTrip({Value::Real(d)});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(std::signbit(out[0].as_double()), std::signbit(d));
    EXPECT_EQ(out[0].as_double(), d);
  }
}

TEST(RowCodecTest, EmptyRecord) {
  Record out = RoundTrip({});
  EXPECT_TRUE(out.empty());
}

TEST(RowCodecTest, ConcatenatedRecordsDecodeInSequence) {
  std::string buf;
  AppendRecord({Value::Int(1)}, &buf);
  AppendRecord({Value::Str("two")}, &buf);
  size_t pos = 0;
  Record a;
  Record b;
  ASSERT_TRUE(DecodeRecord(buf, &pos, &a).ok());
  ASSERT_TRUE(DecodeRecord(buf, &pos, &b).ok());
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_EQ(b[0].as_string(), "two");
}

TEST(RowCodecTest, RejectsTruncation) {
  std::string buf;
  AppendRecord({Value::Int(7), Value::Str("hello")}, &buf);
  // Every proper prefix must fail cleanly, never crash or loop.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Record out;
    size_t pos = 0;
    Status s = DecodeRecord(std::string_view(buf).substr(0, cut), &pos, &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
  }
}

TEST(RowCodecTest, RejectsUnknownTag) {
  std::string buf;
  AppendRecord({Value::Int(7)}, &buf);
  buf[4] = '\x7f';  // value tag follows the u32 count
  Record out;
  size_t pos = 0;
  Status s = DecodeRecord(buf, &pos, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(RowCodecTest, RejectsImplausibleWidth) {
  std::string buf(4, '\xff');  // count = 2^32-1, no payload
  Record out;
  size_t pos = 0;
  Status s = DecodeRecord(buf, &pos, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(RowCodecTest, MemoryEstimateTracksStringPayload) {
  Record small = {Value::Int(1)};
  Record big = {Value::Str(std::string(4096, 's'))};
  EXPECT_GE(EstimateRecordMemoryBytes(big),
            EstimateRecordMemoryBytes(small) + 4096 - sizeof(Value));
  // Pure function of the values: equal records estimate identically.
  Record copy = big;
  copy.reserve(100);  // capacity must not change the estimate
  EXPECT_EQ(EstimateRecordMemoryBytes(big), EstimateRecordMemoryBytes(copy));
}

}  // namespace
}  // namespace dbfa::sql
