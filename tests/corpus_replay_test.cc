// Replays every committed corpus entry (tests/corpus/) as its own test:
// a carver regression fails the ctest named after the exact adversarial
// artifact that caught it. DBFA_CORPUS_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/mutators.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> Sidecars() {
  auto list = ListCorpusSidecars(DBFA_CORPUS_DIR);
  return list.ok() ? *list : std::vector<std::string>{};
}

std::string ScratchDir() {
  fs::path dir = fs::path(::testing::TempDir()) / "corpus_replay_scratch";
  fs::create_directories(dir);
  return dir.string();
}

class ReplayCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayCorpus, Entry) {
  Status s = ReplayCorpusEntry(GetParam(), ScratchDir());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

std::string EntryName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = fs::path(info.param).stem().string();
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ReplayCorpus,
                         ::testing::ValuesIn(Sidecars()), EntryName);

// The acceptance bar for the committed corpus itself: enough entries, and
// the two attack classes the paper centres on are represented.
TEST(CorpusInventory, MeetsTheAcceptanceBar) {
  std::vector<std::string> sidecars = Sidecars();
  ASSERT_GE(sidecars.size(), 12u)
      << "committed corpus shrank below 12 entries";
  bool has_wipe_repair = false;
  bool has_confusion = false;
  for (const std::string& sidecar : sidecars) {
    auto entry = LoadCorpusEntry(sidecar);
    ASSERT_TRUE(entry.ok()) << sidecar << ": "
                            << entry.status().ToString();
    // The committed image must exist and stay small (it is in git).
    fs::path image = fs::path(sidecar).parent_path() /
                     (entry->name + ".img");
    ASSERT_TRUE(fs::exists(image)) << image;
    EXPECT_LE(fs::file_size(image), 512u * 1024u) << image;
    for (const Mutation& m : entry->mutations) {
      if (m.kind == MutatorKind::kWipeRepair) has_wipe_repair = true;
    }
    if (!entry->confusion_dialect.empty()) has_confusion = true;
  }
  EXPECT_TRUE(has_wipe_repair)
      << "no wiped+checksum-repaired corpus entry";
  EXPECT_TRUE(has_confusion) << "no dialect-confusion corpus entry";
}

}  // namespace
}  // namespace dbfa
