// Replays every committed corpus entry (tests/corpus/) as its own test:
// a carver regression fails the ctest named after the exact adversarial
// artifact that caught it. DBFA_CORPUS_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "common/string_pool.h"
#include "core/carver.h"
#include "engine/catalog.h"
#include "fuzz/corpus.h"
#include "fuzz/mutators.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> Sidecars() {
  auto list = ListCorpusSidecars(DBFA_CORPUS_DIR);
  return list.ok() ? *list : std::vector<std::string>{};
}

std::string ScratchDir() {
  fs::path dir = fs::path(::testing::TempDir()) / "corpus_replay_scratch";
  fs::create_directories(dir);
  return dir.string();
}

class ReplayCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayCorpus, Entry) {
  Status s = ReplayCorpusEntry(GetParam(), ScratchDir());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

std::string EntryName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = fs::path(info.param).stem().string();
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ReplayCorpus,
                         ::testing::ValuesIn(Sidecars()), EntryName);

// The acceptance bar for the committed corpus itself: enough entries, and
// the two attack classes the paper centres on are represented.
TEST(CorpusInventory, MeetsTheAcceptanceBar) {
  std::vector<std::string> sidecars = Sidecars();
  ASSERT_GE(sidecars.size(), 12u)
      << "committed corpus shrank below 12 entries";
  bool has_wipe_repair = false;
  bool has_confusion = false;
  for (const std::string& sidecar : sidecars) {
    auto entry = LoadCorpusEntry(sidecar);
    ASSERT_TRUE(entry.ok()) << sidecar << ": "
                            << entry.status().ToString();
    // The committed image must exist and stay small (it is in git).
    fs::path image = fs::path(sidecar).parent_path() /
                     (entry->name + ".img");
    ASSERT_TRUE(fs::exists(image)) << image;
    EXPECT_LE(fs::file_size(image), 512u * 1024u) << image;
    for (const Mutation& m : entry->mutations) {
      if (m.kind == MutatorKind::kWipeRepair) has_wipe_repair = true;
    }
    if (!entry->confusion_dialect.empty()) has_confusion = true;
  }
  EXPECT_TRUE(has_wipe_repair)
      << "no wiped+checksum-repaired corpus entry";
  EXPECT_TRUE(has_confusion) << "no dialect-confusion corpus entry";
}

// Interned-decode accounting over the whole committed corpus: every
// adversarial image is carved with interning on (the default), and every
// interned string cell must alias the pool's canonical copy — same data
// pointer, same id — with the pool's byte accounting internally consistent.
// A dangling or aliasing StringRef coming out of a hostile decode would
// fail the Find/pointer checks here (and light up ASan in that CI leg).
TEST(CorpusInventory, InternedCarvePoolAccountingIsConsistent) {
  for (const std::string& sidecar : Sidecars()) {
    auto entry = LoadCorpusEntry(sidecar);
    ASSERT_TRUE(entry.ok()) << sidecar << ": " << entry.status().ToString();
    fs::path image_path =
        fs::path(sidecar).parent_path() / (entry->name + ".img");
    auto image = LoadImage(image_path.string());
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    auto params = GetDialect(entry->dialect);
    ASSERT_TRUE(params.ok()) << params.status().ToString();
    CarverConfig config;
    config.params = *params;
    config.catalog_object_id = kCatalogObjectId;
    auto carve = Carver(config).Carve(*image);
    ASSERT_TRUE(carve.ok()) << entry->name << ": "
                            << carve.status().ToString();
    ASSERT_NE(carve->string_pool, nullptr) << entry->name;
    const StringPool& pool = *carve->string_pool;

    // Byte accounting: the shard arenas pack string content with no
    // per-allocation padding, so used bytes equal the distinct content
    // bytes exactly; reservations and BytesUsed() only add on top.
    StringPool::Stats stats = pool.GetStats();
    EXPECT_EQ(stats.arena_bytes_used, stats.string_bytes) << entry->name;
    EXPECT_GE(stats.arena_bytes_reserved, stats.arena_bytes_used);
    EXPECT_GE(pool.BytesUsed(),
              stats.arena_bytes_reserved + stats.table_bytes);

    size_t interned_cells = 0;
    for (const CarvedRecord& r : carve->records) {
      for (const Value& v : r.values) {
        if (v.type() == ValueType::kString && v.is_interned()) {
          ++interned_cells;
          const StringRef& ref = v.interned_ref();
          ASSERT_EQ(ref.pool_id, pool.pool_id()) << entry->name;
          auto canonical = pool.Find(ref.view());
          ASSERT_TRUE(canonical.has_value()) << entry->name;
          ASSERT_EQ(canonical->data, ref.data) << entry->name;
          ASSERT_EQ(canonical->id, ref.id) << entry->name;
        }
      }
    }
    // Cells can only reference strings the pool owns.
    EXPECT_GE(interned_cells, 0u);
  }
}

}  // namespace
}  // namespace dbfa
