// LogEventAnalysis tests: clock-backdating detection (Section III-C).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "core/carver.h"
#include "storage/dialects.h"
#include "timeline/log_event_analyzer.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

Result<CarveResult> CarveDisk(Database* db) {
  DBFA_ASSIGN_OR_RETURN(Bytes image, db->SnapshotDisk());
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver carver(config);
  return carver.Carve(image);
}

std::unique_ptr<Database> OpenRowIdDb() {
  // The storage-assisted detector matches records by row id, so use a
  // dialect that stores row identifiers (Section III-C's RowID).
  DatabaseOptions options;
  options.dialect = "oracle_like";
  return Database::Open(options).value();
}

TEST(TimelineTest, HonestClockIsConsistent) {
  auto db = OpenRowIdDb();
  SyntheticWorkload workload(db.get(), "Accounts", 9);
  ASSERT_TRUE(workload.Setup(60).ok());
  ASSERT_TRUE(workload.Run(60, OpMix{}, true).ok());
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  LogEventAnalyzer analyzer(&*carve, &db->audit_log());
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Consistent()) << report->ToString();
  EXPECT_GT(report->inserts_matched, 0u);
}

TEST(TimelineTest, ClockSetBackwardsDetectedBySeqInversion) {
  // The Section III-C attack verbatim: set the server clock back, act,
  // restore it. The appended entries carry timestamps earlier than their
  // predecessors.
  auto db = OpenRowIdDb();
  SyntheticWorkload workload(db.get(), "Accounts", 9);
  ASSERT_TRUE(workload.Setup(30).ok());

  int64_t now = db->clock().Peek();
  db->clock().Set(now - 50'000);  // backdate
  ASSERT_TRUE(db
                  ->ExecuteSql("INSERT INTO Accounts VALUES "
                               "(9001, 'Backdated', 'X', 0.0)")
                  .ok());
  db->clock().Set(now);  // restore

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  LogEventAnalyzer analyzer(&*carve, &db->audit_log());
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->Consistent());
  bool flagged = false;
  for (const BackdateFinding& f : report->findings) {
    if (f.sql.find("Backdated") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged) << report->ToString();
}

TEST(TimelineTest, ResortedLogExposedByStorageRowIds) {
  // A smarter attacker also rewrites the log file sorted by timestamp, so
  // no seq inversion remains. The storage row-id order still exposes the
  // backdated entries.
  auto db = OpenRowIdDb();
  TableSchema schema = AccountsSchema("Accounts");
  ASSERT_TRUE(db->CreateTable(schema).ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(db
                    ->ExecuteSql(StrFormat(
                        "INSERT INTO Accounts VALUES (%d, 'User%d', "
                        "'City', 1.0)",
                        i, i))
                    .ok());
  }
  // Backdated malicious inserts.
  int64_t now = db->clock().Peek();
  db->clock().Set(now - 90'000);
  for (int i = 100; i < 103; ++i) {
    ASSERT_TRUE(db
                    ->ExecuteSql(StrFormat(
                        "INSERT INTO Accounts VALUES (%d, 'Evil%d', "
                        "'City', 1.0)",
                        i, i))
                    .ok());
  }
  db->clock().Set(now);

  // Attacker rewrites the log sorted by timestamp (hiding inversions) and
  // renumbers seq to look pristine.
  std::vector<AuditEntry> entries = db->audit_log().entries();
  std::stable_sort(entries.begin(), entries.end(),
                   [](const AuditEntry& a, const AuditEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
  std::string forged_text;
  for (size_t i = 0; i < entries.size(); ++i) {
    forged_text += StrFormat("%zu|%lld|", i + 1,
                             static_cast<long long>(entries[i].timestamp));
    forged_text += entries[i].sql;
    forged_text += "\n";
  }
  auto forged = AuditLog::FromText(forged_text);
  ASSERT_TRUE(forged.ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  LogEventAnalyzer analyzer(&*carve, &*forged);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  // Seq-inversion detector finds nothing (log was re-sorted) ...
  // ... but the row-id detector flags the backdated inserts.
  size_t evil_flagged = 0;
  for (const BackdateFinding& f : report->findings) {
    EXPECT_NE(f.reason.find("row id"), std::string::npos) << f.ToString();
    if (f.sql.find("Evil") != std::string::npos) ++evil_flagged;
  }
  EXPECT_EQ(evil_flagged, 3u) << report->ToString();
  EXPECT_EQ(report->findings.size(), 3u)
      << "honest entries must not be flagged: " << report->ToString();
}

TEST(TimelineTest, EmptyLogIsConsistent) {
  auto db = OpenRowIdDb();
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  AuditLog empty;
  LogEventAnalyzer analyzer(&*carve, &empty);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Consistent());
}

TEST(TimelineTest, EmptyLogWithPopulatedStorageIsConsistent) {
  // An empty log over populated storage has nothing to order: the
  // analyzer must not crash on the carved rows and must not invent
  // findings (attributing those rows is the detective's job, not the
  // timeline's).
  auto db = OpenRowIdDb();
  SyntheticWorkload workload(db.get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(30).ok());
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  AuditLog empty;
  LogEventAnalyzer analyzer(&*carve, &empty);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Consistent()) << report->ToString();
  EXPECT_EQ(report->inserts_matched, 0u);
}

TEST(TimelineTest, DuplicateSeqEntriesDoNotConfuseTheDetectors) {
  // A clumsy forger can produce a log where two lines share one seq (e.g.
  // splicing files). The analyzer must stay well-defined: no crash, and
  // honest monotone timestamps stay consistent.
  auto db = OpenRowIdDb();
  SyntheticWorkload workload(db.get(), "Accounts", 6);
  ASSERT_TRUE(workload.Setup(10).ok());
  std::string text;
  for (const AuditEntry& e : db->audit_log().entries()) {
    // Every line claims seq 1 — the worst duplicate-id case.
    text += StrFormat("1|%lld|", static_cast<long long>(e.timestamp));
    text += e.sql;
    text += "\n";
  }
  auto forged = AuditLog::FromText(text);
  ASSERT_TRUE(forged.ok());
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  LogEventAnalyzer analyzer(&*carve, &*forged);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Consistent()) << report->ToString();
  EXPECT_LE(report->findings.size(), forged->entries().size());
}

TEST(TimelineTest, OutOfOrderTimestampsFlaggedWithoutStoredRowIds) {
  // Detector 1 (timestamp vs append order) needs no storage row ids, so
  // it works under dialects that don't persist them.
  DatabaseOptions options;  // default dialect: no stored row identifiers
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  ASSERT_TRUE(workload.Setup(15).ok());
  int64_t now = db->clock().Peek();
  db->clock().Set(now - 40'000);
  ASSERT_TRUE(db
                  ->ExecuteSql("INSERT INTO Accounts VALUES "
                               "(7001, 'OutOfOrder', 'X', 0.0)")
                  .ok());
  db->clock().Set(now);
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  LogEventAnalyzer analyzer(&*carve, &db->audit_log());
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Consistent());
  bool flagged = false;
  for (const BackdateFinding& f : report->findings) {
    if (f.sql.find("OutOfOrder") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged) << report->ToString();
}

TEST(TimelineTest, LongestNonDecreasingIndexesBasics) {
  // The minimal-outlier primitive both row-id detectors share.
  EXPECT_TRUE(LongestNonDecreasingIndexes({}).empty());
  EXPECT_EQ(LongestNonDecreasingIndexes({5}).size(), 1u);
  // Strictly decreasing: any single element is a maximal chain.
  EXPECT_EQ(LongestNonDecreasingIndexes({9, 7, 5}).size(), 1u);
  // Ties are non-decreasing, so they extend the chain.
  EXPECT_EQ(LongestNonDecreasingIndexes({1, 2, 2, 3}).size(), 4u);
  // One outlier in an otherwise sorted run.
  std::vector<size_t> kept =
      LongestNonDecreasingIndexes({1, 2, 99, 3, 4, 5});
  EXPECT_EQ(kept.size(), 5u);
  for (size_t index : kept) {
    EXPECT_NE(index, 2u) << "the outlier 99 must be excluded";
  }
}

}  // namespace
}  // namespace dbfa
