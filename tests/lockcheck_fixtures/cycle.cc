// dbfa-lockcheck-fixture: expect=lock-cycle:1,rank-order:1
//
// Deliberate AB/BA inversion — the canonical latent deadlock. One() takes
// a_ then b_, Two() takes b_ then a_; neither path deadlocks alone, but
// the combined order graph has the cycle a -> b -> a. The checker must
// name the cycle (lock-cycle) and flag Two()'s inner acquisition, whose
// rank does not strictly increase (rank-order). Never compiled; analyzed
// in isolation by dbfa_lockcheck --self-test.

struct TwoLocks {
  void One() {
    MutexLock la(&a_);
    MutexLock lb(&b_);  // a -> b: matches the ranks
    touch();
  }

  void Two() {
    MutexLock lb(&b_);
    MutexLock la(&a_);  // b -> a: rank inversion, and closes the cycle
    touch();
  }

  void touch();

  Mutex a_{"fixture/a", 10};
  Mutex b_{"fixture/b", 20};
};
