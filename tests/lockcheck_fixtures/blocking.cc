// dbfa-lockcheck-fixture: expect=blocking-under-lock:2
//
// Blocking calls under a held lock: file I/O (fwrite) and a bounded-queue
// Pop both sleep for unbounded time while every waiter on mu_ convoys
// behind them. The fixture also shows the two legal shapes — waiting on
// the innermost held mutex (the wait releases it) and a justified
// dbfa-lockcheck allow — which must NOT be flagged. Never compiled;
// analyzed in isolation by dbfa_lockcheck --self-test.

struct BlockingUnderLock {
  void WriteUnderLock() {
    MutexLock lock(&mu_);
    std::fwrite(buf_, 1, len_, file_);  // finding: I/O under mu_
  }

  void PopUnderLock() {
    MutexLock lock(&mu_);
    queue_.Pop(&task_);  // finding: queue wait under mu_
  }

  void WaitInnermost() {
    MutexLock lock(&mu_);
    while (!ready_) cv_.Wait(&mu_);  // legal: wait releases the held mu_
  }

  void JustifiedWrite() {
    // dbfa-lockcheck: allow(blocking-under-lock): mu_ is this file's
    // serialization point; the append and the mirror must be atomic.
    MutexLock lock(&mu_);
    std::fwrite(buf_, 1, len_, file_);
    mirror_.push_back(buf_);
  }

  Mutex mu_{"fixture/blocking", 10};
};
