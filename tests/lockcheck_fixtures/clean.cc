// dbfa-lockcheck-fixture: expect=none
//
// The disciplined shapes, all of which must pass: ranked locks nested in
// strictly increasing rank order with a matching ordering annotation,
// I/O hoisted outside the critical section, a TryPush (which never
// blocks) under a lock, and a condition wait on the innermost held
// mutex. Never compiled; analyzed in isolation by dbfa_lockcheck
// --self-test.

struct Disciplined {
  void NestInOrder() {
    MutexLock la(&a_);
    MutexLock lb(&b_);  // 10 -> 20: strictly increasing
    touch();
  }

  void HoistedIo() {
    std::string line;
    {
      MutexLock la(&a_);
      line = render();
    }
    std::fwrite(line.data(), 1, line.size(), file_);  // outside the lock
  }

  void NonBlockingUnderLock() {
    MutexLock la(&a_);
    queue_.TryPush(make_task());  // TryPush returns immediately on full
  }

  void WaitInnermost() {
    MutexLock la(&a_);
    while (!ready_) cv_.Wait(&a_);
  }

  void touch();

  Mutex a_ DBFA_ACQUIRED_BEFORE(b_){"fixture/outer", 10};
  Mutex b_ DBFA_ACQUIRED_AFTER(a_){"fixture/inner", 20};
};
