// dbfa-lockcheck-fixture: expect=unranked-multilock:1
//
// An unranked mutex pulled into a multi-lock scope. b_ has a name but no
// rank, which is legal only while it stays leaf-only; the moment Nest()
// holds it together with a_ the checker demands a rank, because an
// unranked lock cannot be placed in the machine-checkable global order.
// Never compiled; analyzed in isolation by dbfa_lockcheck --self-test.

struct UnrankedPair {
  void LeafOnly() {
    MutexLock lb(&b_);  // fine: b_ alone, no nesting
    touch();
  }

  void Nest() {
    MutexLock la(&a_);
    MutexLock lb(&b_);  // unranked b_ under a_: needs a lock_rank entry
    touch();
  }

  void touch();

  Mutex a_{"fixture/ranked", 10};
  Mutex b_{"fixture/unranked"};
};
