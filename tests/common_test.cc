#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/hexdump.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace dbfa {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad page");
  EXPECT_EQ(s.ToString(), "CORRUPTION: bad page");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status UseAssignOrReturn(int x, int* out) {
  DBFA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(0, &out).ok());
}

// ---- bytes -------------------------------------------------------------------

TEST(BytesTest, FixedWidthRoundTripBothEndians) {
  uint8_t buf[8];
  for (bool be : {false, true}) {
    WriteU16(buf, 0xBEEF, be);
    EXPECT_EQ(ReadU16(buf, be), 0xBEEF);
    WriteU32(buf, 0xDEADBEEF, be);
    EXPECT_EQ(ReadU32(buf, be), 0xDEADBEEFu);
    WriteU64(buf, 0x0123456789ABCDEFull, be);
    EXPECT_EQ(ReadU64(buf, be), 0x0123456789ABCDEFull);
  }
}

TEST(BytesTest, EndiannessActuallyDiffers) {
  uint8_t le[4];
  uint8_t be[4];
  WriteU32(le, 0x11223344, false);
  WriteU32(be, 0x11223344, true);
  EXPECT_EQ(le[0], 0x44);
  EXPECT_EQ(be[0], 0x11);
}

TEST(BytesTest, TryReadRejectsOutOfBounds) {
  Bytes b = {1, 2, 3};
  EXPECT_TRUE(TryReadU16(b, 1, false).has_value());
  EXPECT_FALSE(TryReadU16(b, 2, false).has_value());
  EXPECT_FALSE(TryReadU32(b, 0, false).has_value());
}

TEST(BytesTest, VarintRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    Bytes buf;
    size_t n = AppendVarint(&buf, v);
    EXPECT_EQ(n, buf.size());
    EXPECT_EQ(n, VarintLength(v));
    size_t consumed = 0;
    auto decoded = DecodeVarint(buf, 0, &consumed);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(consumed, n);
  }
}

TEST(BytesTest, VarintRejectsTruncation) {
  Bytes buf = {0x80, 0x80};  // two continuation bytes, no terminator
  EXPECT_FALSE(DecodeVarint(buf, 0, nullptr).has_value());
}

TEST(BytesTest, ByteViewSliceClamps) {
  Bytes b = {1, 2, 3, 4, 5};
  ByteView v(b);
  EXPECT_EQ(v.Slice(2).size(), 3u);
  EXPECT_EQ(v.Slice(2, 2).size(), 2u);
  EXPECT_EQ(v.Slice(9).size(), 0u);
  EXPECT_EQ(v.Slice(2)[0], 3);
}

// ---- checksums ----------------------------------------------------------------

TEST(ChecksumTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (classic check value).
  const char* s = "123456789";
  EXPECT_EQ(Crc32(ByteView(reinterpret_cast<const uint8_t*>(s), 9)),
            0xCBF43926u);
}

TEST(ChecksumTest, FletcherAndXorDetectChanges) {
  Bytes data(512, 0xAB);
  uint16_t f = Fletcher16(data);
  uint8_t x = Xor8(data);
  data[100] ^= 0x01;
  EXPECT_NE(Fletcher16(data), f);
  EXPECT_NE(Xor8(data), x);
}

TEST(ChecksumTest, StreamMatchesOneShot) {
  Bytes data;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(rng.NextU64()));
  for (ChecksumKind kind : {ChecksumKind::kCrc32, ChecksumKind::kFletcher16,
                            ChecksumKind::kXor8}) {
    ChecksumStream stream(kind);
    stream.Update(ByteView(data.data(), 123));
    stream.Update(ByteView(data.data() + 123, data.size() - 123));
    EXPECT_EQ(stream.Final(), ComputeChecksum(kind, data))
        << ChecksumKindName(kind);
  }
}

TEST(ChecksumTest, Widths) {
  EXPECT_EQ(ChecksumWidth(ChecksumKind::kNone), 0u);
  EXPECT_EQ(ChecksumWidth(ChecksumKind::kCrc32), 4u);
  EXPECT_EQ(ChecksumWidth(ChecksumKind::kFletcher16), 2u);
  EXPECT_EQ(ChecksumWidth(ChecksumKind::kXor8), 1u);
}

// ---- strings ------------------------------------------------------------------

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b"}, "; "), "a; b");
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringsTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("Christine", "Chris%"));
  EXPECT_TRUE(LikeMatch("Christopher", "Chris%"));
  EXPECT_FALSE(LikeMatch("Thomas", "Chris%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
  EXPECT_TRUE(LikeMatch("xayb", "%a%b"));
}

TEST(StringsTest, SqlQuote) {
  EXPECT_EQ(SqlQuote("it's"), "'it''s'");
  EXPECT_EQ(SqlQuote(""), "''");
}

// ---- rng / hexdump --------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, WordIsUpperAscii) {
  Rng rng(1);
  std::string w = rng.Word(16);
  EXPECT_EQ(w.size(), 16u);
  for (char c : w) {
    EXPECT_GE(c, 'A');
    EXPECT_LE(c, 'Z');
  }
}

TEST(HexdumpTest, FormatsOffsetsAndAscii) {
  Bytes data = {'H', 'i', 0x00, 0xFF};
  std::string dump = HexDump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(dump.find("|Hi..|"), std::string::npos);
  EXPECT_EQ(HexBytes(data), "48 69 00 FF");
}

}  // namespace
}  // namespace dbfa
