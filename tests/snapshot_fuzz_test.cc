// Differential fuzz for the snapshot repository's cached carve path:
// across randomized snapshot sequences (page flips, page insertions, page
// deletions, raw byte corruption between captures), the repository's
// assembled carve of every snapshot must be element-wise identical to a
// fresh serial Carver::Carve of the same image — for every worker-pool
// size. This is the tentpole guarantee: dedup and artifact caching are
// pure acceleration, never a semantic change.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "carve_equivalence.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "snapshot/snapshot_repo.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

constexpr size_t kThreadCounts[] = {1, 2, 4};
constexpr int kRoundsPerSequence = 5;

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

Bytes BaseImage(const std::string& dialect, int rows, uint64_t seed) {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)
                  ->ExecuteSql("CREATE TABLE Customer (Id INT NOT NULL, "
                               "Name VARCHAR(32), City VARCHAR(24), "
                               "PRIMARY KEY (Id))")
                  .ok());
  for (int i = 1; i <= rows; ++i) {
    EXPECT_TRUE((*db)
                    ->ExecuteSql(StrFormat("INSERT INTO Customer VALUES "
                                           "(%d, 'Name%04d', 'City%d')",
                                           i, i, i % 7))
                    .ok());
  }
  EXPECT_TRUE((*db)->ExecuteSql("DELETE FROM Customer WHERE Id <= 15").ok());
  auto file = (*db)->SnapshotDisk();
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  Rng rng(seed);
  DiskImageBuilder builder;
  builder.AppendGarbage(512 * 4, &rng);
  builder.AppendFile("db", *file);
  builder.AppendTextGarbage(512 * 3, &rng);
  builder.AppendGarbage(512 * 2, &rng);
  return builder.TakeBytes();
}

/// One random mutation step: flip bytes inside a random page-sized window,
/// duplicate a page-aligned span elsewhere ("insert"), drop a page-aligned
/// span ("delete"), or splice in fresh garbage. Alignment is page-sized so
/// the mutated image keeps carving deterministically; content is arbitrary.
void MutateImage(Bytes* image, size_t page_size, Rng* rng) {
  size_t pages = image->size() / page_size;
  switch (rng->Uniform(0, 3)) {
    case 0: {  // flip a few bytes within one page-sized window
      size_t page = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pages) - 1));
      size_t len = static_cast<size_t>(rng->Uniform(1, 24));
      size_t off = page * page_size +
                   static_cast<size_t>(rng->Uniform(
                       0, static_cast<int64_t>(page_size - len)));
      CorruptRegion(image, off, len, rng);
      break;
    }
    case 1: {  // insert: duplicate one page elsewhere (page-aligned)
      size_t src = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pages) - 1));
      size_t dst = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pages)));
      Bytes copy(image->begin() +
                     static_cast<ptrdiff_t>(src * page_size),
                 image->begin() +
                     static_cast<ptrdiff_t>((src + 1) * page_size));
      image->insert(image->begin() + static_cast<ptrdiff_t>(dst * page_size),
                    copy.begin(), copy.end());
      break;
    }
    case 2: {  // delete one page-aligned span (keep the image non-empty)
      if (pages <= 2) break;
      size_t victim = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pages) - 1));
      image->erase(
          image->begin() + static_cast<ptrdiff_t>(victim * page_size),
          image->begin() + static_cast<ptrdiff_t>((victim + 1) * page_size));
      break;
    }
    default: {  // splice fresh garbage mid-image (page-aligned)
      size_t dst = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pages)));
      Bytes garbage(page_size);
      for (uint8_t& b : garbage) {
        b = static_cast<uint8_t>(rng->NextU64());
      }
      image->insert(image->begin() + static_cast<ptrdiff_t>(dst * page_size),
                    garbage.begin(), garbage.end());
      break;
    }
  }
}

/// Runs one full mutate-and-reingest sequence and asserts cached-assembly
/// equality with a fresh serial carve after every ingest.
void RunSequence(const std::string& dialect, uint64_t seed, size_t threads,
                 bool parse_bad_checksum_pages) {
  SCOPED_TRACE(StrFormat("dialect=%s seed=%llu threads=%zu bad_pages=%d",
                         dialect.c_str(),
                         static_cast<unsigned long long>(seed), threads,
                         parse_bad_checksum_pages ? 1 : 0));
  CarverConfig config = ConfigFor(dialect);
  size_t page_size = config.params.page_size;

  fs::path dir = fs::path(::testing::TempDir()) /
                 StrFormat("snap_fuzz_%s_%llu_%zu", dialect.c_str(),
                           static_cast<unsigned long long>(seed), threads);
  fs::remove_all(dir);
  CarveOptions options;
  options.num_threads = threads;
  options.parse_bad_checksum_pages = parse_bad_checksum_pages;
  auto repo = SnapshotRepo::Create(dir.string(), config, options);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  Carver serial(config, (*repo)->options());

  Rng rng(seed);
  Bytes image = BaseImage(dialect, 2000, seed * 7 + 1);
  for (int round = 0; round < kRoundsPerSequence; ++round) {
    SCOPED_TRACE(StrFormat("round=%d image=%zu bytes", round, image.size()));
    auto stats = (*repo)->Ingest(image);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    auto expected = serial.Carve(image);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto assembled = (*repo)->AssembleCarve(stats->snapshot_id);
    ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
    ExpectSameCarveResult(*expected, *assembled);
    if (round > 0) {
      // Dedup must actually engage across rounds: a handful of mutations
      // cannot produce a mostly-new image.
      EXPECT_GT(stats->pages_reused, 0u) << stats->ToString();
    }
    int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      MutateImage(&image, page_size, &rng);
    }
  }

  // The whole history must still assemble faithfully after reopening.
  repo->reset();
  auto reopened = SnapshotRepo::Open(dir.string(), threads);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->List().size(),
            static_cast<size_t>(kRoundsPerSequence));
  fs::remove_all(dir);
}

TEST(SnapshotFuzzTest, MutateAndReingestMatchesSerialAcrossThreadCounts) {
  for (size_t threads : kThreadCounts) {
    RunSequence("postgres_like", 101, threads,
                /*parse_bad_checksum_pages=*/false);
  }
}

TEST(SnapshotFuzzTest, MutateAndReingestWithBadChecksumParsing) {
  for (size_t threads : kThreadCounts) {
    RunSequence("sqlite_like", 202, threads,
                /*parse_bad_checksum_pages=*/true);
  }
}

TEST(SnapshotFuzzTest, ManySeedsSingleThread) {
  for (uint64_t seed : {303u, 404u, 505u}) {
    RunSequence("postgres_like", seed, /*threads=*/1,
                /*parse_bad_checksum_pages=*/seed % 2 == 1);
  }
}

}  // namespace
}  // namespace dbfa
