// dbfa-lint-fixture: path=src/metaquery/fake_kernel.cc rule=hot-loop-string expect=4
// Known-bad input for dbfa_lint --self-test: std::string construction
// inside an audited hot-loop region must be flagged. Never compiled.
#include <sstream>
#include <string>

namespace dbfa {

struct Val {
  std::string ToString() const;  // OK: outside any hot-loop region.
};

// OK: constructions before the region are legal.
std::string Prologue() { return std::string("cold path"); }

// dbfa:hot-loop-begin -- fixture kernel; per-row string work forbidden
inline bool Kernel(const Val& v, const char* p) {
  std::string copy(p);                       // BAD: per-row heap string.
  std::string label = "row-" + std::to_string(7);  // BAD x2: string + to_string
  std::ostringstream oss;                    // BAD: stream buffer per row.
  std::string_view view = copy;              // OK: view, no allocation.
  // dbfa-lint: allow(hot-loop-string): error path only, leaves the loop
  std::string excused = v.ToString();        // OK: justified above.
  return !view.empty() && !excused.empty() && oss.str().empty();
}
// dbfa:hot-loop-end

// OK again: the region is closed.
std::string Epilogue(const Val& v) { return v.ToString(); }

}  // namespace dbfa
