// dbfa-lint-fixture: path=src/snapshot/snapshot_repo.cc rule=raw-byte-read expect=2
// Known-bad input for dbfa_lint --self-test: the snapshot subsystem must
// not grow raw byte reads outside snapshot_codec.cc — only the codec file
// is allowlisted (tools/dbfa_lint/allowlist.txt), so punning in any other
// src/snapshot/ file (pretend path above) must be flagged. Never compiled.
#include <cstdint>
#include <cstring>

namespace dbfa {

uint64_t HashWordInRepo(const uint8_t* p) {
  // BAD: word load belongs in snapshot_codec.cc, the audited codec file.
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

uint32_t PeekStoredCrc(const char* block) {
  // BAD: unaudited reinterpret_cast over repository file bytes.
  return *reinterpret_cast<const uint32_t*>(block + 4);
}

}  // namespace dbfa
