// dbfa-lint-fixture: path=src/engine/fake.cc rule=raw-byte-read expect=2
// Known-bad input for dbfa_lint --self-test: raw type punning outside the
// audited accessors must be flagged. Never compiled.
#include <cstdint>
#include <cstring>

namespace dbfa {

uint32_t ReadHeaderMagic(const char* page) {
  // BAD: unaudited reinterpret_cast over carved input.
  return *reinterpret_cast<const uint32_t*>(page);
}

void CopyPayload(char* dst, const char* src) {
  // BAD: raw memcpy instead of CopyBytes().
  std::memcpy(dst, src, 16);
}

// The string "reinterpret_cast" and a comment mentioning memcpy must NOT
// count: the linter strips comments and literals before matching.
const char* kDoc = "reinterpret_cast is documented here";

}  // namespace dbfa
