// dbfa-lint-fixture: path=src/core/fake.cc rule=naked-rand-time expect=3
// Known-bad input for dbfa_lint --self-test: libc randomness/wall-clock
// calls break run reproducibility and must be flagged. Never compiled.
#include <cstdlib>
#include <ctime>

namespace dbfa {

struct Clock {
  long time(int channel) { return channel; }
};

long Jitter() {
  srand(42);                   // BAD: use the seeded dbfa::Rng.
  int r = rand();              // BAD
  long now = ::time(nullptr);  // BAD: wall clock in a deterministic run.

  // OK: a method named time() taking a real argument is not libc time().
  Clock clock;
  long c = clock.time(3);
  return r + now + c;
}

}  // namespace dbfa
