// dbfa-lint-fixture: path=src/metaquery/fake.cc rule=unordered-iter expect=2
// Known-bad input for dbfa_lint --self-test: hash-order iteration in
// determinism-critical code must be flagged. Never compiled.
#include <string>
#include <unordered_map>
#include <vector>

namespace dbfa {

using GroupMap = std::unordered_map<std::string, int>;

void EmitGroups(std::vector<std::string>* out) {
  std::unordered_map<std::string, int> counts;
  GroupMap groups;

  // BAD: hash order reaches the output directly.
  for (const auto& [key, n] : counts) {
    out->push_back(key + ":" + std::to_string(n));
  }

  // BAD: aliases of unordered containers are tracked too.
  for (const auto& [key, n] : groups) {
    out->push_back(key);
  }

  // OK: iterating the (ordered) vector we just built.
  for (const auto& line : *out) {
    (void)line.size();
  }
}

}  // namespace dbfa
