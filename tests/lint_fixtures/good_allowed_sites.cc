// dbfa-lint-fixture: path=src/metaquery/fake_ok.cc rule=unordered-iter expect=0
// Known-good input for dbfa_lint --self-test: every pattern the linter
// hunts for appears here with a valid suppression, so the file must lint
// clean. Never compiled.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dbfa {

Status MightFail();

void MergeGroups(std::vector<std::pair<std::string, int>>* out) {
  std::unordered_map<std::string, int> groups;

  // Order-insensitive: results are sorted before anything is emitted.
  // dbfa-lint: allow(unordered-iter): drained into `out`, sorted below
  for (const auto& [key, n] : groups) {
    out->emplace_back(key, n);
  }
  std::sort(out->begin(), out->end());

  // dbfa-lint: allow(nodiscard-status): best-effort cleanup on shutdown
  (void)MightFail();
}

}  // namespace dbfa
