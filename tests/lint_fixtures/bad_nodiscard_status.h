// dbfa-lint-fixture: path=src/common/status.h rule=nodiscard-status expect=2
// Known-bad input for dbfa_lint --self-test: a status.h whose Status and
// Result classes lost their [[nodiscard]] annotation. Never compiled.
#ifndef DBFA_LINT_FIXTURE_BAD_STATUS_H_
#define DBFA_LINT_FIXTURE_BAD_STATUS_H_

namespace dbfa {

class Status {  // BAD: must be `class [[nodiscard]] Status`.
 public:
  bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

template <typename T>
class Result {  // BAD: must be `class [[nodiscard]] Result`.
 public:
  bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

}  // namespace dbfa

#endif  // DBFA_LINT_FIXTURE_BAD_STATUS_H_
