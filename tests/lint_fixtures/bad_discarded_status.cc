// dbfa-lint-fixture: path=src/engine/fake.cc rule=nodiscard-status expect=1
// Known-bad input for dbfa_lint --self-test: a (void)-discarded call result
// without a justification comment must be flagged. Never compiled.
#include "common/status.h"

namespace dbfa {

Status MightFail();

void Caller() {
  // BAD: silently drops the error.
  (void)MightFail();

  // OK: plain unused-parameter-style casts carry no call and are legal.
  int unused = 0;
  (void)unused;
}

}  // namespace dbfa
