// dbfa-lint-fixture: path=src/engine/bad_raw_sync.cc rule=raw-sync expect=4
//
// Raw std synchronization primitives outside common/mutex.h. Each one is
// invisible to -Wthread-safety, to dbfa_lockcheck's lock-order graph, and
// to the DBFA_LOCK_DEBUG validator, so the deadlock-freedom guarantees
// silently stop covering this file. Never compiled; fed to dbfa_lint
// --self-test under the pretend path above.

#include <condition_variable>
#include <mutex>

namespace dbfa {

class BadCache {
 public:
  void Put(int v) {
    std::lock_guard<std::mutex> lock(mu_);  // findings 1+2 (both tokens)
    value_ = v;
    cv_.notify_all();
  }

  // A dbfa::CondVar paired with dbfa::Mutex is the sanctioned shape; the
  // raw pair below bypasses the held-stack bookkeeping entirely.
  std::mutex mu_;               // finding 3 (mutex)
  std::condition_variable cv_;  // finding 4 (condition_variable)
  int value_ = 0;
};

}  // namespace dbfa
