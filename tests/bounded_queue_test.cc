// BoundedQueue: FIFO delivery, reject vs delay backpressure policies,
// close-then-drain shutdown, and counter/high-water invariants under
// multi-producer/multi-consumer stress (run under TSan via the sanitize
// label).
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dbfa {
namespace {

TEST(BoundedQueueTest, FifoFillThenDrain) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.TryPush(i), QueuePush::kAccepted);
  }
  EXPECT_EQ(queue.TryPush(99), QueuePush::kFull);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.high_water(), 4u);
  EXPECT_EQ(queue.size(), 4u);

  queue.Close();  // accepted items must still drain
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
  EXPECT_EQ(queue.pushed(), 4u);
  EXPECT_EQ(queue.popped(), 4u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PushAfterCloseIsRefusedWithoutCountingRejection) {
  BoundedQueue<int> queue(2);
  queue.Close();
  EXPECT_EQ(queue.TryPush(1), QueuePush::kClosed);
  EXPECT_EQ(queue.Push(1), QueuePush::kClosed);
  EXPECT_EQ(queue.rejected(), 0u);
  EXPECT_EQ(queue.pushed(), 0u);
}

TEST(BoundedQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.TryPush(7), QueuePush::kAccepted);
  EXPECT_EQ(queue.TryPush(8), QueuePush::kFull);
}

TEST(BoundedQueueTest, BlockingPushWaitsForFreeSlot) {
  BoundedQueue<int> queue(1);
  ASSERT_EQ(queue.TryPush(1), QueuePush::kAccepted);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(2), QueuePush::kAccepted);  // blocks until the pop
    pushed.store(true);
  });
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));  // waits for the producer if needed
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_LE(queue.high_water(), queue.capacity());
  EXPECT_EQ(queue.rejected(), 0u);  // delay policy never rejects
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> queue(1);
  ASSERT_EQ(queue.TryPush(1), QueuePush::kAccepted);
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(2), QueuePush::kClosed);  // blocked on full
  });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(empty.Pop(&out));  // blocked on empty
  });
  queue.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, MpmcStressDeliversEveryAcceptedItemOnce) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);

  std::atomic<long> consumed_sum{0};
  std::atomic<size_t> consumed_count{0};
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int out = 0;
      while (queue.Pop(&out)) {
        consumed_sum.fetch_add(out);
        consumed_count.fetch_add(1);
      }
    });
  }
  std::atomic<long> produced_sum{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = static_cast<int>(p) * kPerProducer + i;
        if (queue.Push(value) == QueuePush::kAccepted) {
          produced_sum.fetch_add(value);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), produced_sum.load());
  EXPECT_EQ(queue.pushed(), queue.popped());
  EXPECT_LE(queue.high_water(), queue.capacity());
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace dbfa
