// Property/fuzz test for chunk-boundary behavior of the parallel carver:
// real pages are spliced into garbage images at adversarial offsets —
// exactly on a chunk edge, ending exactly on a chunk edge, straddling an
// edge, and 1 byte before an edge (unaligned, so neither carver may
// detect it) — plus random positions. The property under test is strict
// serial/parallel equivalence, never recall: whatever the serial cursor
// finds (or misses), the parallel pipeline must reproduce exactly.
//
// Every trial is seeded via common/rng.h and the seed is printed on
// failure for reproduction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "carve_equivalence.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/carver.h"
#include "core/parallel_carver.h"
#include "engine/database.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

/// Extracts the byte images of real pages from a live database snapshot.
/// Detection is position-independent, so these can be spliced anywhere.
std::vector<Bytes> PageLibrary(const std::string& dialect,
                               size_t* page_size) {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options).value();
  EXPECT_TRUE(db->ExecuteSql("CREATE TABLE Edge (Id INT NOT NULL, "
                             "Tag VARCHAR(20), PRIMARY KEY (Id))")
                  .ok());
  for (int i = 1; i <= 300; ++i) {
    EXPECT_TRUE(
        db->ExecuteSql(StrFormat("INSERT INTO Edge VALUES (%d, 'tag%04d')",
                                 i, i))
            .ok());
  }
  EXPECT_TRUE(db->ExecuteSql("DELETE FROM Edge WHERE Id <= 30").ok());
  Bytes image = db->SnapshotDisk().value();
  *page_size = db->params().page_size;

  auto carve = Carver(ConfigFor(dialect)).Carve(image);
  EXPECT_TRUE(carve.ok());
  std::vector<Bytes> pages;
  for (const CarvedPage& p : carve->pages) {
    ByteView view(image);
    pages.push_back(view.Slice(p.image_offset, *page_size).ToBytes());
  }
  EXPECT_GE(pages.size(), 3u) << "need data, index, and catalog pages";
  return pages;
}

/// Overwrites image bytes at `offset` with one library page (clipped at
/// the image end, producing a truncated page the carver must reject).
void Splice(Bytes* image, size_t offset, const Bytes& page) {
  if (offset >= image->size()) return;
  size_t n = std::min(page.size(), image->size() - offset);
  std::memcpy(image->data() + offset, page.data(), n);
}

struct BoundaryCase {
  Bytes image;
  size_t chunk_pages = 1;
  size_t scan_step = 512;
};

/// Builds a garbage image with pages planted around chunk edges.
BoundaryCase BuildCase(uint64_t seed, const std::vector<Bytes>& library,
                       size_t page_size) {
  Rng rng(seed);
  BoundaryCase c;
  c.chunk_pages = static_cast<size_t>(rng.Uniform(1, 5));
  // Mix of sector steps, exhaustive byte scans, full-page steps, and a
  // step that does NOT divide the page size (the serial cursor's phase
  // then shifts after every accepted page — the merge must replay that).
  const size_t steps[] = {512, 512, 1, page_size, 768};
  c.scan_step = steps[rng.NextU64() % 5];
  if (c.scan_step == 1 && page_size > 8192) c.scan_step = 512;  // keep fast

  size_t chunk_bytes = c.chunk_pages * page_size;
  size_t n_chunks = static_cast<size_t>(rng.Uniform(3, 6));
  c.image.resize(n_chunks * chunk_bytes + page_size / 2);
  // Text-ish garbage background (letters + newlines), worst case for
  // false-positive rejection.
  for (uint8_t& b : c.image) {
    b = static_cast<uint8_t>(rng.Bernoulli(0.1) ? '\n'
                                                : 'a' + rng.NextU64() % 26);
  }

  for (size_t edge = 1; edge < n_chunks; ++edge) {
    size_t e = edge * chunk_bytes;
    switch (rng.NextU64() % 4) {
      case 0:  // page starts exactly at the chunk edge
        Splice(&c.image, e, rng.Pick(library));
        break;
      case 1:  // page ends exactly at the chunk edge
        Splice(&c.image, e - page_size, rng.Pick(library));
        break;
      case 2: {  // page straddles the edge (sector-aligned start)
        size_t half = (page_size / 2) / 512 * 512;
        if (half == 0 || half >= page_size) half = page_size / 2;
        Splice(&c.image, e - half, rng.Pick(library));
        break;
      }
      case 3:  // page starts 1 byte before the edge (unaligned)
        Splice(&c.image, e - 1, rng.Pick(library));
        break;
    }
  }
  // A few fully random placements on top (may overlap the planted ones).
  size_t extras = static_cast<size_t>(rng.Uniform(0, 3));
  for (size_t i = 0; i < extras; ++i) {
    size_t offset = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(c.image.size() - 1)));
    Splice(&c.image, offset, rng.Pick(library));
  }
  return c;
}

class CarverBoundaryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CarverBoundaryFuzz, ParallelEqualsSerialAtChunkEdges) {
  const uint64_t seed = 77000 + GetParam();
  SCOPED_TRACE(StrFormat("reproduce with seed=%llu",
                         static_cast<unsigned long long>(seed)));
  static size_t page_size = 0;
  static const std::vector<Bytes>& library =
      *new std::vector<Bytes>(PageLibrary("postgres_like", &page_size));
  ASSERT_GT(page_size, 0u);

  BoundaryCase c = BuildCase(seed, library, page_size);
  CarveOptions options;
  options.scan_step = c.scan_step;

  auto serial = Carver(ConfigFor("postgres_like"), options).Carve(c.image);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ExpectSaneCarveStats(*serial);

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(StrFormat("threads=%zu chunk_pages=%zu step=%zu",
                           static_cast<size_t>(threads), c.chunk_pages,
                           c.scan_step));
    CarveOptions parallel_options = options;
    parallel_options.num_threads = threads;
    parallel_options.chunk_pages = c.chunk_pages;
    auto parallel =
        ParallelCarver(ConfigFor("postgres_like"), parallel_options)
            .Carve(c.image);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameCarveResult(*serial, *parallel);
    ExpectSaneCarveStats(*parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBoundaries, CarverBoundaryFuzz,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace dbfa
