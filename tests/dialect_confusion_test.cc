// Dialect-confusion matrix (ISSUE 6 satellite): every dialect's synthetic
// image carved with every other dialect's config. The wrong config must
// never crash and never misattribute evidence — zero accepted pages, zero
// records, zero schemas — while the right config keeps finding everything.
// Runs TSan-clean (label sanitize-fuzz) because the matrix also exercises
// the parallel carver over foreign images.
#include <gtest/gtest.h>

#include "core/carver.h"
#include "core/parallel_carver.h"
#include "engine/catalog.h"
#include "fuzz/campaign.h"
#include "fuzz/mutators.h"
#include "fuzz/oracle.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

class DialectConfusionTest : public ::testing::Test {
 protected:
  // One baseline image per dialect, built once for the whole suite.
  static void SetUpTestSuite() {
    baselines_ = new std::vector<BaselineImage>();
    for (const std::string& dialect : BuiltinDialectNames()) {
      auto baseline = BuildBaseline(dialect, 31, 14, 20);
      ASSERT_TRUE(baseline.ok()) << dialect << ": "
                                 << baseline.status().ToString();
      baselines_->push_back(std::move(*baseline));
    }
  }
  static void TearDownTestSuite() {
    delete baselines_;
    baselines_ = nullptr;
  }
  static std::vector<BaselineImage>* baselines_;
};

std::vector<BaselineImage>* DialectConfusionTest::baselines_ = nullptr;

TEST_F(DialectConfusionTest, WrongConfigFindsNothingRightConfigFindsAll) {
  for (const BaselineImage& baseline : *baselines_) {
    for (const BaselineImage& other : *baselines_) {
      Result<CarveResult> cross =
          Carver(other.config).Carve(baseline.image);
      ASSERT_TRUE(cross.ok())
          << other.config.params.dialect << " config crashed carving a "
          << baseline.config.params.dialect << " image: "
          << cross.status().ToString();
      if (&baseline == &other) {
        EXPECT_GT(cross->pages.size(), 0u);
        EXPECT_GT(cross->records.size(), 0u);
        continue;
      }
      // High-confidence misattribution would be accepted pages, records
      // or schemas under a foreign config. The magic+sanity probe must
      // reject every offset instead.
      EXPECT_EQ(cross->pages.size(), 0u)
          << other.config.params.dialect << " config accepted pages of a "
          << baseline.config.params.dialect << " image";
      EXPECT_EQ(cross->records.size(), 0u);
      EXPECT_EQ(cross->schemas.size(), 0u);
      EXPECT_EQ(cross->catalog_entries.size(), 0u);
    }
  }
}

TEST_F(DialectConfusionTest, ParallelMatchesSerialOnForeignImages) {
  // The byte-identical contract must hold even when the config is wrong
  // for the image — the degenerate all-rejected carve included.
  const BaselineImage& image_owner = (*baselines_)[0];
  for (const BaselineImage& other : *baselines_) {
    Result<CarveResult> serial =
        Carver(other.config).Carve(image_owner.image);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      CarveOptions options;
      options.num_threads = threads;
      Result<CarveResult> par =
          ParallelCarver(other.config, options).Carve(image_owner.image);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(DescribeCarveDifference(*serial, *par), "")
          << other.config.params.dialect << " at " << threads
          << " threads";
    }
  }
}

TEST_F(DialectConfusionTest, MultiConfigCarveSeparatesConcatenatedImage) {
  // A disk holding two different dialects' files: each config must carve
  // exactly its own dialect's pages out of the composite.
  const BaselineImage& a = (*baselines_)[0];
  const BaselineImage& b = (*baselines_)[1];
  Bytes composite = a.image;
  composite.insert(composite.end(), b.image.begin(), b.image.end());

  std::vector<CarverConfig> configs = {a.config, b.config};
  auto results = Carver::CarveMulti(composite, configs, CarveOptions{});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].pages.size(), a.carve.pages.size());
  EXPECT_EQ((*results)[1].pages.size(), b.carve.pages.size());
  EXPECT_EQ((*results)[0].records.size(), a.carve.records.size());
  EXPECT_EQ((*results)[1].records.size(), b.carve.records.size());

  auto par = ParallelCarver::CarveMulti(composite, configs, CarveOptions{});
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(DescribeCarveDifference((*results)[0], (*par)[0]), "");
  EXPECT_EQ(DescribeCarveDifference((*results)[1], (*par)[1]), "");
}

TEST_F(DialectConfusionTest, MutatedImagesStayUnconfused) {
  // Even after adversarial mutation, a wrong config must not start
  // accepting the evidence (no mutation can forge another dialect's
  // magic at page scale by accident; a forged page would be a finding).
  const BaselineImage& victim = (*baselines_)[2];
  std::vector<Mutation> mutations = {{MutatorKind::kWipeRepair, 41},
                                     {MutatorKind::kBitFlipRandom, 42},
                                     {MutatorKind::kTornPage, 43}};
  Bytes mutant = victim.image;
  ApplyMutations(victim.config, mutations, &mutant);
  for (const BaselineImage& other : *baselines_) {
    if (&other == &victim) continue;
    Result<CarveResult> cross = Carver(other.config).Carve(mutant);
    ASSERT_TRUE(cross.ok());
    EXPECT_EQ(cross->pages.size(), 0u) << other.config.params.dialect;
    EXPECT_EQ(cross->records.size(), 0u) << other.config.params.dialect;
  }
}

}  // namespace
}  // namespace dbfa
