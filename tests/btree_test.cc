// B-Tree tests, parameterized over all dialects (index page formats and
// pointer encodings differ per dialect).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "engine/btree.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

class BTreeTest : public ::testing::TestWithParam<std::string> {
 protected:
  BTreeTest()
      : params_(GetDialect(GetParam()).value()), pager_(params_, 64) {
    object_id_ = pager_.CreateObject();
    tree_ = std::make_unique<BTree>(&pager_, object_id_, "idx",
                                    std::vector<int>{0});
    EXPECT_TRUE(tree_->Create().ok());
  }

  PageLayoutParams params_;
  Pager pager_;
  uint32_t object_id_ = 0;
  std::unique_ptr<BTree> tree_;
};

TEST_P(BTreeTest, InsertAndSearchSingle) {
  ASSERT_TRUE(tree_->Insert({Value::Int(42)}, RowPointer{7, 3}).ok());
  auto hits = tree_->SearchEqual({Value::Int(42)});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], (RowPointer{7, 3}));
  auto miss = tree_->SearchEqual({Value::Int(43)});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST_P(BTreeTest, ManyKeysWithSplitsAllFindable) {
  // Insert enough entries to force multi-level splits in every dialect
  // (4 KiB pages hold ~150 entries per leaf).
  const int kN = 3000;
  Rng rng(123);
  std::vector<int> keys(kN);
  for (int i = 0; i < kN; ++i) keys[i] = i;
  // Shuffle to stress non-sequential insertion.
  for (int i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.NextU64() % (i + 1)]);
  }
  for (int k : keys) {
    ASSERT_TRUE(tree_->Insert({Value::Int(k)},
                              RowPointer{static_cast<uint32_t>(k + 1),
                                         static_cast<uint16_t>(k % 100)})
                    .ok())
        << "key " << k;
  }
  for (int k = 0; k < kN; k += 97) {
    auto hits = tree_->SearchEqual({Value::Int(k)});
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    ASSERT_EQ(hits->size(), 1u) << "key " << k;
    EXPECT_EQ((*hits)[0].page_id, static_cast<uint32_t>(k + 1));
  }
  // The tree must have split beyond one page.
  auto pages = tree_->ReachablePages();
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(pages->size(), 2u);
}

TEST_P(BTreeTest, DuplicateKeysAllReturned) {
  for (uint32_t i = 1; i <= 500; ++i) {
    ASSERT_TRUE(tree_->Insert({Value::Int(7)}, RowPointer{i, 0}).ok());
    ASSERT_TRUE(
        tree_->Insert({Value::Int(static_cast<int64_t>(i) + 100)},
                      RowPointer{i, 1})
            .ok());
  }
  auto hits = tree_->SearchEqual({Value::Int(7)});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 500u);
  std::set<uint32_t> pages;
  for (RowPointer p : *hits) pages.insert(p.page_id);
  EXPECT_EQ(pages.size(), 500u) << "every duplicate must be distinct";
}

TEST_P(BTreeTest, RangeScanLeadingColumn) {
  for (int k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree_->Insert({Value::Int(k)},
                              RowPointer{static_cast<uint32_t>(k + 1), 0})
                    .ok());
  }
  auto range =
      tree_->SearchRangeLeading(Value::Int(100), Value::Int(199));
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 100u);
  for (size_t i = 0; i < range->size(); ++i) {
    EXPECT_EQ((*range)[i].keys[0], Value::Int(100 + static_cast<int>(i)))
        << "range results must be key-ordered";
  }
  auto open_lo = tree_->SearchRangeLeading(std::nullopt, Value::Int(9));
  ASSERT_TRUE(open_lo.ok());
  EXPECT_EQ(open_lo->size(), 10u);
  auto open_hi = tree_->SearchRangeLeading(Value::Int(995), std::nullopt);
  ASSERT_TRUE(open_hi.ok());
  EXPECT_EQ(open_hi->size(), 5u);
}

TEST_P(BTreeTest, StringAndCompositeKeys) {
  BTree tree(&pager_, pager_.CreateObject(), "idx2", {0, 1});
  ASSERT_TRUE(tree.Create().ok());
  ASSERT_TRUE(
      tree.Insert({Value::Str("alpha"), Value::Int(1)}, RowPointer{1, 0})
          .ok());
  ASSERT_TRUE(
      tree.Insert({Value::Str("alpha"), Value::Int(2)}, RowPointer{2, 0})
          .ok());
  ASSERT_TRUE(
      tree.Insert({Value::Str("beta"), Value::Int(1)}, RowPointer{3, 0})
          .ok());
  auto hits = tree.SearchEqual({Value::Str("alpha"), Value::Int(2)});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].page_id, 2u);
}

TEST_P(BTreeTest, AllNullKeysSkipped) {
  ASSERT_TRUE(tree_->Insert({Value::Null()}, RowPointer{1, 0}).ok());
  auto all = tree_->SearchRangeLeading(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty()) << "all-NULL keys must not be indexed";
  // Partially-null composite keys ARE indexed.
  BTree tree(&pager_, pager_.CreateObject(), "idx3", {0, 1});
  ASSERT_TRUE(tree.Create().ok());
  ASSERT_TRUE(
      tree.Insert({Value::Int(5), Value::Null()}, RowPointer{9, 0}).ok());
  auto hits = tree.SearchEqual({Value::Int(5), Value::Null()});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_P(BTreeTest, RebuildFromHeapDropsStaleEntriesAndOrphansPages) {
  // Build a heap with 300 rows, delete half, attach entries for all.
  uint32_t heap_object = pager_.CreateObject();
  TableSchema schema;
  schema.name = "t";
  schema.columns = {{"k", ColumnType::kInt, 0, false},
                    {"v", ColumnType::kVarchar, 32, true}};
  TableHeap heap(&pager_, heap_object, schema, 2.0);
  ASSERT_TRUE(heap.EnsureInitialized().ok());
  BTree tree(&pager_, pager_.CreateObject(), "idx4", {0});
  ASSERT_TRUE(tree.Create().ok());
  std::vector<RowPointer> ptrs;
  for (int k = 0; k < 300; ++k) {
    auto ptr = heap.Insert({Value::Int(k), Value::Str("v" + std::to_string(k))},
                           k + 1);
    ASSERT_TRUE(ptr.ok());
    ASSERT_TRUE(tree.Insert({Value::Int(k)}, *ptr).ok());
    ptrs.push_back(*ptr);
  }
  for (int k = 0; k < 300; k += 2) {
    ASSERT_TRUE(heap.Delete(ptrs[k]).ok());
  }
  // Before rebuild: stale entries still present (deleted values artifact).
  auto before = tree.SearchEqual({Value::Int(10)});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 1u);

  uint32_t old_root = tree.root();
  ASSERT_TRUE(tree.Rebuild(&heap).ok());
  EXPECT_NE(tree.root(), old_root) << "rebuild must produce new pages";

  auto gone = tree.SearchEqual({Value::Int(10)});
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty()) << "deleted record's entry dropped by rebuild";
  auto kept = tree.SearchEqual({Value::Int(11)});
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 1u);

  // Old pages persist in the file (carvable), but are unreachable.
  auto reachable = tree.ReachablePages();
  ASSERT_TRUE(reachable.ok());
  std::set<uint32_t> reach(reachable->begin(), reachable->end());
  EXPECT_EQ(reach.count(old_root), 0u);
  EXPECT_TRUE(pager_.file(tree.object_id())->Contains(old_root));
}

TEST_P(BTreeTest, RebuildEmptyHeapYieldsEmptyRoot) {
  uint32_t heap_object = pager_.CreateObject();
  TableSchema schema;
  schema.name = "t";
  schema.columns = {{"k", ColumnType::kInt, 0, false}};
  TableHeap heap(&pager_, heap_object, schema, 2.0);
  ASSERT_TRUE(heap.EnsureInitialized().ok());
  ASSERT_TRUE(tree_->Rebuild(&heap).ok());
  EXPECT_NE(tree_->root(), 0u);
  auto all = tree_->SearchRangeLeading(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, BTreeTest, ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

}  // namespace
}  // namespace dbfa
