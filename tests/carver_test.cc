// DBCarver end-to-end tests: carving disk images and RAM snapshots of a
// live MiniDB, across all eight dialects.
#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "sql/parser.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

std::unique_ptr<Database> OpenDb(const std::string& dialect) {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TableSchema CustomerSchema() {
  TableSchema s;
  s.name = "Customer";
  s.columns = {{"Id", ColumnType::kInt, 0, false},
               {"Name", ColumnType::kVarchar, 32, true},
               {"City", ColumnType::kVarchar, 24, true}};
  s.primary_key = {"Id"};
  return s;
}

class CarverDialectTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CarverDialectTest, CarvesActiveAndDeletedRecordsWithTypes) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->ExecuteSql("INSERT INTO Customer VALUES "
                             "(1, 'Christine', 'Chicago'), "
                             "(2, 'Jane', 'Seattle'), "
                             "(3, 'Christopher', 'Seattle'), "
                             "(4, 'Thomas', 'Austin')")
                  .ok());
  ASSERT_TRUE(
      db->ExecuteSql("DELETE FROM Customer WHERE City = 'Seattle'").ok());

  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  Carver carver(ConfigFor(GetParam()));
  auto result = carver.Carve(*image);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Schema reconstructed from the carved catalog.
  const TableSchema* schema = result->SchemaByName("Customer");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->columns.size(), 3u);
  EXPECT_EQ(schema->primary_key, std::vector<std::string>{"Id"});

  auto active = result->RecordsForTable("Customer", RowStatus::kActive);
  auto deleted = result->RecordsForTable("Customer", RowStatus::kDeleted);
  ASSERT_EQ(active.size(), 2u);
  ASSERT_EQ(deleted.size(), 2u);
  std::set<std::string> deleted_names;
  for (const CarvedRecord* r : deleted) {
    EXPECT_TRUE(r->typed);
    deleted_names.insert(std::string(r->values[1].as_string()));
  }
  EXPECT_EQ(deleted_names,
            (std::set<std::string>{"Jane", "Christopher"}));

  // Index entries for deleted rows persist ("deleted values").
  uint32_t pk_object = 0;
  for (const auto& [object_id, meta] : result->indexes) {
    if (meta.name == "pk_Customer" && !meta.dropped) pk_object = object_id;
  }
  ASSERT_NE(pk_object, 0u);
  auto entries = result->EntriesForIndex(pk_object);
  EXPECT_EQ(entries.size(), 4u) << "all four keys remain in the index";
}

TEST_P(CarverDialectTest, CarvesRamSnapshot) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(db->ExecuteSql(StrFormat(
                                   "INSERT INTO Customer VALUES (%d, "
                                   "'RamName%d', 'RamCity')",
                                   i, i))
                    .ok());
  }
  // Touch pages through a query so the cache is warm, then carve RAM.
  ASSERT_TRUE(db->ExecuteSql("SELECT * FROM Customer WHERE Id > 0").ok());
  Bytes ram = db->SnapshotRam();
  CarveOptions options;
  options.scan_step = db->params().page_size;  // frames are page-aligned
  Carver carver(ConfigFor(GetParam()), options);
  auto result = carver.Carve(ram);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->pages.size(), 0u);
  EXPECT_GT(result->RecordsForTable("Customer").size(), 0u);
}

TEST_P(CarverDialectTest, DroppedTableIsRecoveredFromDeletedCatalogEntries) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Customer VALUES (7, 'Ghost', 'Nowhere')")
          .ok());
  ASSERT_TRUE(db->DropTable("Customer").ok());

  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  Carver carver(ConfigFor(GetParam()));
  auto result = carver.Carve(*image);
  ASSERT_TRUE(result.ok());

  // Schema survives through the delete-marked catalog record.
  const TableSchema* schema = result->SchemaByName("Customer");
  ASSERT_NE(schema, nullptr);
  uint32_t object_id = result->ObjectIdByName("Customer");
  EXPECT_EQ(result->dropped_objects.count(object_id), 1u)
      << "dropped table must be flagged";
  // The row is still carvable from the orphaned pages.
  auto rows = result->RecordsForTable("Customer");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->values[1], Value::Str("Ghost"));
}

TEST_P(CarverDialectTest, GarbageAndForeignBytesProduceNoFalsePages) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(
        db->ExecuteSql(StrFormat("INSERT INTO Customer VALUES (%d, 'N%d', "
                                 "'C')",
                                 i, i))
            .ok());
  }
  auto files = db->ExportFiles();
  ASSERT_TRUE(files.ok());
  Rng rng(42);
  DiskImageBuilder builder;
  builder.AppendGarbage(512 * 7, &rng);
  size_t total_pages = 0;
  for (const auto& [name, bytes] : *files) {
    builder.AppendFile(name, bytes);
    total_pages += bytes.size() / db->params().page_size;
    builder.AppendTextGarbage(512 * 3, &rng);
  }
  Carver carver(ConfigFor(GetParam()));
  auto result = carver.Carve(builder.bytes());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pages.size(), total_pages)
      << "every real page found, nothing carved out of garbage";
  EXPECT_EQ(result->RecordsForTable("Customer", RowStatus::kActive).size(),
            100u);
}

TEST_P(CarverDialectTest, CorruptedPagesAreFlaggedAndSurvivorsRecovered) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 200; ++i) {
    ASSERT_TRUE(
        db->ExecuteSql(StrFormat("INSERT INTO Customer VALUES (%d, "
                                 "'Name%04d', 'City')",
                                 i, i))
            .ok());
  }
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  // Smash 64 bytes in the middle of the second Customer heap page's data.
  Carver pre_carver(ConfigFor(GetParam()));
  auto pre = pre_carver.Carve(*image);
  ASSERT_TRUE(pre.ok());
  size_t victim_offset = 0;
  uint32_t customer_object = pre->ObjectIdByName("Customer");
  for (const CarvedPage& p : pre->pages) {
    if (p.object_id == customer_object && p.type == PageType::kData &&
        p.page_id == 1) {
      victim_offset = p.image_offset;
      break;
    }
  }
  ASSERT_GT(victim_offset, 0u);
  Rng rng(7);
  CorruptRegion(&*image, victim_offset + db->params().page_size / 2, 64,
                &rng);

  Carver carver(ConfigFor(GetParam()));
  auto result = carver.Carve(*image);
  ASSERT_TRUE(result.ok());
  if (db->params().checksum_kind != ChecksumKind::kNone) {
    size_t bad = 0;
    for (const CarvedPage& p : result->pages) {
      if (!p.checksum_ok) ++bad;
    }
    EXPECT_EQ(bad, 1u) << "exactly the smashed page fails its checksum";
  }
  // Most records survive; the carve must not abort.
  EXPECT_GT(result->RecordsForTable("Customer").size(), 150u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, CarverDialectTest,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(CarverTest, MultiDialectImageSeparatesDbmses) {
  // One image holding files of two different DBMSes plus garbage — the
  // multi-DBMS forensic scenario from the introduction.
  auto db1 = OpenDb("postgres_like");
  auto db2 = OpenDb("sqlite_like");
  ASSERT_TRUE(db1->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db2->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(
      db1->ExecuteSql("INSERT INTO Customer VALUES (1, 'PgRow', 'X')").ok());
  ASSERT_TRUE(
      db2->ExecuteSql("INSERT INTO Customer VALUES (2, 'LiteRow', 'Y')")
          .ok());
  auto img1 = db1->SnapshotDisk();
  auto img2 = db2->SnapshotDisk();
  ASSERT_TRUE(img1.ok());
  ASSERT_TRUE(img2.ok());
  Rng rng(3);
  DiskImageBuilder builder;
  builder.AppendFile("pg", *img1);
  builder.AppendGarbage(2048, &rng);
  builder.AppendFile("lite", *img2);

  auto results = Carver::CarveMulti(
      builder.bytes(),
      {ConfigFor("postgres_like"), ConfigFor("sqlite_like")});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  auto pg_rows = (*results)[0].RecordsForTable("Customer");
  auto lite_rows = (*results)[1].RecordsForTable("Customer");
  ASSERT_EQ(pg_rows.size(), 1u);
  ASSERT_EQ(lite_rows.size(), 1u);
  EXPECT_EQ(pg_rows[0]->values[1], Value::Str("PgRow"));
  EXPECT_EQ(lite_rows[0]->values[1], Value::Str("LiteRow"));
}

TEST(CarverTest, EmptyAndTinyImages) {
  Carver carver(ConfigFor("postgres_like"));
  Bytes empty;
  auto r1 = carver.Carve(empty);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->pages.empty());
  Bytes tiny(100, 0xAA);
  auto r2 = carver.Carve(tiny);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->pages.empty());
}

TEST(CarverTest, SummaryMentionsKeyCounts) {
  auto db = OpenDb("mysql_like");
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Customer VALUES (1, 'A', 'B')").ok());
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  Carver carver(ConfigFor("mysql_like"));
  auto result = carver.Carve(*image);
  ASSERT_TRUE(result.ok());
  std::string summary = result->Summary();
  EXPECT_NE(summary.find("dialect=mysql_like"), std::string::npos);
  EXPECT_NE(summary.find("records="), std::string::npos);
}

}  // namespace
}  // namespace dbfa
