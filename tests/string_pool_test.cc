#include "common/string_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "storage/value.h"

namespace dbfa {
namespace {

TEST(StringPoolTest, InternReturnsIdenticalRefForSameContent) {
  StringPool pool;
  StringRef a = pool.Intern("hello");
  StringRef b = pool.Intern(std::string("hel") + "lo");
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.len, 5u);
  EXPECT_EQ(a.pool_id, pool.pool_id());
  EXPECT_EQ(a.view(), "hello");

  StringRef c = pool.Intern("world");
  EXPECT_NE(c.id, a.id);
  EXPECT_EQ(pool.GetStats().distinct_count, 2u);
}

TEST(StringPoolTest, FindDoesNotInsert) {
  StringPool pool;
  EXPECT_FALSE(pool.Find("absent").has_value());
  EXPECT_EQ(pool.GetStats().distinct_count, 0u);
  StringRef r = pool.Intern("present");
  auto found = pool.Find("present");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->data, r.data);
  EXPECT_EQ(found->id, r.id);
}

TEST(StringPoolTest, CachedHashMatchesOwnedStringHash) {
  // The HashRecord/CompareRecords compatibility invariant: a Value holding
  // an interned ref and a Value owning the same bytes must hash
  // identically, because both route through HashStringContent (interned
  // refs cache it at intern time). Documented in common/string_ref.h.
  StringPool pool;
  std::vector<std::string> samples = {"", "a", "delete-marked row",
                                      std::string(500, 'x'),
                                      std::string("nul\0byte", 8)};
  for (const std::string& s : samples) {
    StringRef r = pool.Intern(s);
    EXPECT_EQ(r.hash, HashStringContent(s)) << "content: " << s;
    Value interned = Value::InternedStr(r);
    Value owned = Value::Str(s);
    EXPECT_EQ(interned.Hash(), owned.Hash()) << "content: " << s;
    EXPECT_EQ(Value::Compare(interned, owned), 0) << "content: " << s;
  }
}

TEST(StringPoolTest, ManyStringsSurviveTableGrowth) {
  StringPool pool(/*shard_count=*/2);
  std::vector<StringRef> refs;
  for (int i = 0; i < 5000; ++i) {
    refs.push_back(pool.Intern("key-" + std::to_string(i)));
  }
  // Growth rehashes the tables but never moves string bytes: every ref
  // taken before the growth still reads back its content.
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(refs[static_cast<size_t>(i)].view(),
              "key-" + std::to_string(i));
    StringRef again = pool.Intern("key-" + std::to_string(i));
    EXPECT_EQ(again.data, refs[static_cast<size_t>(i)].data);
  }
  EXPECT_EQ(pool.GetStats().distinct_count, 5000u);
}

TEST(StringPoolTest, ShardChoiceIsContentDeterministic) {
  // The shard a string lands in depends only on its content hash and the
  // shard count — never on which thread interned it first. Two pools with
  // the same shard count must therefore agree on every (data-pointer
  // aside) structural property observable through stats as strings arrive
  // in different orders.
  StringPool forward(/*shard_count=*/4);
  StringPool backward(/*shard_count=*/4);
  std::vector<std::string> words;
  for (int i = 0; i < 200; ++i) words.push_back("w" + std::to_string(i));
  for (const std::string& w : words) forward.Intern(w);
  for (auto it = words.rbegin(); it != words.rend(); ++it) {
    backward.Intern(*it);
  }
  StringPool::Stats fs = forward.GetStats();
  StringPool::Stats bs = backward.GetStats();
  EXPECT_EQ(fs.distinct_count, bs.distinct_count);
  EXPECT_EQ(fs.string_bytes, bs.string_bytes);
  EXPECT_EQ(fs.shard_count, bs.shard_count);
  // Same contents -> same arena footprint, insertion order immaterial.
  EXPECT_EQ(fs.arena_bytes_used, bs.arena_bytes_used);
}

TEST(StringPoolTest, StatsAndBytesUsedAccountForContent) {
  StringPool pool(/*shard_count=*/1);
  size_t baseline = pool.BytesUsed();
  pool.Intern(std::string(1000, 'a'));
  pool.Intern(std::string(2000, 'b'));
  pool.Intern(std::string(1000, 'a'));  // duplicate: no new bytes
  StringPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.distinct_count, 2u);
  EXPECT_EQ(stats.string_bytes, 3000u);
  EXPECT_GE(stats.arena_bytes_used, 3000u);
  EXPECT_GE(stats.arena_bytes_reserved, stats.arena_bytes_used);
  EXPECT_GE(pool.BytesUsed(), baseline + 3000);
  EXPECT_GE(pool.BytesUsed(),
            stats.arena_bytes_reserved + stats.table_bytes);
}

TEST(StringPoolTest, ConcurrentInternIsRaceFreeAndConsistent) {
  // Run under the `sanitize` label so TSan sees real interleavings: eight
  // threads intern overlapping working sets; every thread must observe the
  // canonical ref for each string, and the pool must end with exactly the
  // union of distinct contents.
  StringPool pool;
  constexpr int kThreads = 8;
  constexpr int kDistinct = 300;
  std::vector<std::vector<StringRef>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &pool, &seen] {
      std::vector<StringRef>& mine = seen[static_cast<size_t>(t)];
      mine.resize(kDistinct);
      for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < kDistinct; ++i) {
          // Start each thread at a different offset so first-intern races
          // happen on every string, not just the low indices.
          int k = (i + t * 37) % kDistinct;
          mine[static_cast<size_t>(k)] =
              pool.Intern("shared-" + std::to_string(k));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.GetStats().distinct_count, static_cast<size_t>(kDistinct));
  for (int k = 0; k < kDistinct; ++k) {
    const StringRef& canonical = seen[0][static_cast<size_t>(k)];
    EXPECT_EQ(canonical.view(), "shared-" + std::to_string(k));
    for (int t = 1; t < kThreads; ++t) {
      const StringRef& other =
          seen[static_cast<size_t>(t)][static_cast<size_t>(k)];
      ASSERT_EQ(canonical.data, other.data) << "string " << k;
      ASSERT_EQ(canonical.id, other.id) << "string " << k;
    }
  }
}

TEST(StringPoolTest, DistinctPoolsHaveDistinctIdentity) {
  StringPool a;
  StringPool b;
  EXPECT_NE(a.pool_id(), b.pool_id());
  EXPECT_NE(a.pool_id(), 0u);
  // Same content in different pools: content-equal, identity-distinct.
  Value va = Value::InternedStr(a.Intern("x"));
  Value vb = Value::InternedStr(b.Intern("x"));
  EXPECT_EQ(Value::Compare(va, vb), 0);
  EXPECT_NE(va.interned_ref().pool_id, vb.interned_ref().pool_id);
}

}  // namespace
}  // namespace dbfa
