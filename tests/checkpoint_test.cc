// Checkpointed files on disk are themselves a forensic image source:
// verify the full filesystem round trip (checkpoint -> assemble image from
// the directory -> carve), which is exactly how an investigator would
// process a seized data directory.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/carver.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

TEST(CheckpointTest, SeizedDataDirectoryCarvesCompletely) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  ASSERT_TRUE(workload.Setup(150).ok());
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id <= 25").ok());

  std::string dir = ::testing::TempDir() + "/dbfa_seized";
  ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
            0);
  ASSERT_TRUE(db->Checkpoint(dir).ok());

  // Assemble the "seizure image" from the on-disk files, as a field tool
  // would, then carve it.
  DiskImageBuilder builder;
  Rng rng(1);
  for (const char* name :
       {"catalog.dbf", "Accounts.dbf", "Accounts.pk_Accounts.dbf"}) {
    auto bytes = LoadImage(dir + "/" + name);
    ASSERT_TRUE(bytes.ok()) << name;
    builder.AppendFile(name, *bytes);
    builder.AppendGarbage(512, &rng);
  }
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver carver(config);
  auto carve = carver.Carve(builder.bytes());
  ASSERT_TRUE(carve.ok());
  EXPECT_EQ(carve->RecordsForTable("Accounts", RowStatus::kActive).size(),
            125u);
  EXPECT_EQ(carve->RecordsForTable("Accounts", RowStatus::kDeleted).size(),
            25u);

  // The audit log saved alongside parses and matches the live one.
  auto log = AuditLog::LoadFrom(dir + "/audit.log");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->entries().size(), db->audit_log().entries().size());
}

TEST(CheckpointTest, SavedConfigPlusSavedImageAreSelfSufficient) {
  // The whole investigation kit on disk: config file + image file, loaded
  // fresh, with no shared in-memory state.
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 8);
  ASSERT_TRUE(workload.Setup(40).ok());
  std::string dir = ::testing::TempDir() + "/dbfa_kit";
  ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
            0);
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  ASSERT_TRUE(SaveConfig(dir + "/carver.conf", config).ok());
  ASSERT_TRUE(SaveImage(dir + "/disk.img",
                        db->SnapshotDisk().value())
                  .ok());

  auto loaded_config = LoadConfig(dir + "/carver.conf");
  ASSERT_TRUE(loaded_config.ok());
  auto loaded_image = LoadImage(dir + "/disk.img");
  ASSERT_TRUE(loaded_image.ok());
  Carver carver(*loaded_config);
  auto carve = carver.Carve(*loaded_image);
  ASSERT_TRUE(carve.ok());
  EXPECT_EQ(carve->RecordsForTable("Accounts").size(), 40u);
}

TEST(CheckpointTest, ReopenFromCheckpointResumesFully) {
  DatabaseOptions options;
  options.dialect = "oracle_like";  // stores row ids: counter recovery too
  std::string dir = ::testing::TempDir() + "/dbfa_reopen";
  ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
            0);
  uint64_t lsn_before = 0;
  size_t log_before = 0;
  {
    auto db = Database::Open(options).value();
    SyntheticWorkload workload(db.get(), "Accounts", 19);
    ASSERT_TRUE(workload.Setup(120).ok());
    ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id <= 15").ok());
    ASSERT_TRUE(db->ExecuteSql("CREATE INDEX idx_city ON Accounts (City)")
                    .ok());
    ASSERT_TRUE(db->Checkpoint(dir).ok());
    lsn_before = db->pager().current_lsn();
    log_before = db->audit_log().entries().size();
  }  // original instance gone

  auto reopened = Database::OpenFromCheckpoint(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Database& db = **reopened;

  // The audit log came back intact (before new statements add to it).
  EXPECT_EQ(db.audit_log().entries().size(), log_before);

  // Schema + data survive.
  auto rows = db.ExecuteSql("SELECT * FROM Accounts WHERE Id > 15");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 105u);
  // Index lookups work through the reloaded roots.
  auto by_pk = db.ExecuteSql("SELECT * FROM Accounts WHERE Id = 100");
  ASSERT_TRUE(by_pk.ok());
  EXPECT_EQ(by_pk->rows.size(), 1u);
  EXPECT_EQ(db.last_access_path(), AccessPath::kIndexScan);
  auto by_city = db.ExecuteSql(
      "SELECT * FROM Accounts WHERE City = 'Denver'");
  ASSERT_TRUE(by_city.ok());
  EXPECT_EQ(db.last_access_path(), AccessPath::kIndexScan);
  // Deleted residue survives the restart (it is storage, not memory).
  int residue = 0;
  ASSERT_TRUE(db.heap("Accounts")
                  ->ScanRaw([&](RowPointer, const Record&, bool deleted) {
                    if (deleted) ++residue;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(residue, 15);
  // Counters are monotone across the restart: new activity gets fresh
  // LSNs and fresh row ids (no collisions with carved history).
  EXPECT_GE(db.pager().current_lsn(), lsn_before);
  ASSERT_TRUE(
      db.ExecuteSql("INSERT INTO Accounts VALUES (900, 'New', 'Era', 1.0)")
          .ok());
  EXPECT_GT(db.pager().current_lsn(), lsn_before);
  // PK uniqueness still enforced against pre-restart rows.
  EXPECT_FALSE(
      db.ExecuteSql("INSERT INTO Accounts VALUES (100, 'Dup', 'X', 0.0)")
          .ok());
  // The reopened instance carves identically to a fresh capture.
  CarverConfig config;
  config.params = GetDialect("oracle_like").value();
  Carver carver(config);
  auto carve = carver.Carve(db.SnapshotDisk().value());
  ASSERT_TRUE(carve.ok());
  EXPECT_EQ(carve->RecordsForTable("Accounts", RowStatus::kActive).size(),
            106u);
  // Row ids stay globally monotone: timeline analysis keeps working.
  uint64_t max_row_id = 0;
  uint64_t new_row_id = 0;
  for (const CarvedRecord* r : carve->RecordsForTable("Accounts")) {
    max_row_id = std::max(max_row_id, r->row_id);
    if (!r->values.empty() && r->values[0] == Value::Int(900)) {
      new_row_id = r->row_id;
    }
  }
  EXPECT_EQ(new_row_id, max_row_id)
      << "the post-restart insert must carry the largest row id";
}

TEST(CheckpointTest, ReopenRejectsMissingDirectory) {
  DatabaseOptions options;
  auto result = Database::OpenFromCheckpoint("/nonexistent/dir", options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dbfa
