// Shared differential-test helper: asserts two CarveResults are
// element-wise identical — every artifact collection, in order. Used to
// prove ParallelCarver output equals serial Carver output for any thread
// count / chunk size. Stats are intentionally NOT compared: wall times
// differ run to run, and the parallel detector probes a superset of the
// serial cursor's offsets.
#ifndef DBFA_TESTS_CARVE_EQUIVALENCE_H_
#define DBFA_TESTS_CARVE_EQUIVALENCE_H_

#include <gtest/gtest.h>

#include "core/artifacts.h"

namespace dbfa {

inline void ExpectSameCarveResult(const CarveResult& expected,
                                  const CarveResult& actual) {
  EXPECT_EQ(expected.dialect, actual.dialect);
  EXPECT_EQ(expected.image_size, actual.image_size);

  ASSERT_EQ(expected.pages.size(), actual.pages.size());
  for (size_t i = 0; i < expected.pages.size(); ++i) {
    EXPECT_EQ(expected.pages[i], actual.pages[i])
        << "page " << i << " differs (expected offset "
        << expected.pages[i].image_offset << ", actual "
        << actual.pages[i].image_offset << ")";
  }

  ASSERT_EQ(expected.records.size(), actual.records.size());
  for (size_t i = 0; i < expected.records.size(); ++i) {
    EXPECT_EQ(expected.records[i], actual.records[i])
        << "record " << i << " differs (expected page_id "
        << expected.records[i].page_id << " slot "
        << expected.records[i].slot << ", actual page_id "
        << actual.records[i].page_id << " slot " << actual.records[i].slot
        << ")";
  }

  ASSERT_EQ(expected.index_entries.size(), actual.index_entries.size());
  for (size_t i = 0; i < expected.index_entries.size(); ++i) {
    EXPECT_EQ(expected.index_entries[i], actual.index_entries[i])
        << "index entry " << i << " differs";
  }

  ASSERT_EQ(expected.catalog_entries.size(), actual.catalog_entries.size());
  for (size_t i = 0; i < expected.catalog_entries.size(); ++i) {
    EXPECT_EQ(expected.catalog_entries[i], actual.catalog_entries[i])
        << "catalog entry " << i << " differs";
  }

  EXPECT_EQ(expected.schemas, actual.schemas);
  EXPECT_EQ(expected.indexes, actual.indexes);
  EXPECT_EQ(expected.dropped_objects, actual.dropped_objects);
}

/// Sanity conditions both carvers' stats must satisfy for `result`.
inline void ExpectSaneCarveStats(const CarveResult& result) {
  EXPECT_EQ(result.stats.bytes_scanned, result.image_size);
  EXPECT_EQ(result.stats.pages_accepted, result.pages.size());
  EXPECT_GE(result.stats.pages_probed, result.stats.pages_accepted);
  size_t bad = 0;
  for (const CarvedPage& p : result.pages) {
    if (!p.checksum_ok) ++bad;
  }
  EXPECT_EQ(result.stats.checksum_failures, bad);
}

}  // namespace dbfa

#endif  // DBFA_TESTS_CARVE_EQUIVALENCE_H_
