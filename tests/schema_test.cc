#include <gtest/gtest.h>

#include "storage/schema.h"

namespace dbfa {
namespace {

TableSchema CustomerSchema() {
  TableSchema s;
  s.name = "Customer";
  s.columns = {{"id", ColumnType::kInt, 0, false},
               {"name", ColumnType::kVarchar, 32, true},
               {"city", ColumnType::kVarchar, 24, true},
               {"balance", ColumnType::kDouble, 0, true}};
  s.primary_key = {"id"};
  s.foreign_keys = {{"city", "City", "name"}};
  return s;
}

TEST(SchemaTest, ColumnIndexIsCaseInsensitive) {
  TableSchema s = CustomerSchema();
  EXPECT_EQ(s.ColumnIndex("name"), 1);
  EXPECT_EQ(s.ColumnIndex("NAME"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, NumericColumnCount) {
  EXPECT_EQ(CustomerSchema().NumericColumnCount(), 2u);
}

TEST(SchemaTest, TypeCheck) {
  TableSchema s = CustomerSchema();
  EXPECT_TRUE(s.TypeCheck(
      {Value::Int(1), Value::Str("Joe"), Value::Str("NY"), Value::Real(1.0)}));
  EXPECT_TRUE(s.TypeCheck(
      {Value::Int(1), Value::Null(), Value::Null(), Value::Int(2)}))
      << "ints acceptable in DOUBLE columns; NULL acceptable anywhere";
  EXPECT_FALSE(s.TypeCheck(
      {Value::Str("1"), Value::Str("Joe"), Value::Str("NY"), Value::Real(1.0)}));
  EXPECT_FALSE(s.TypeCheck({Value::Int(1)})) << "arity mismatch";
}

TEST(SchemaTest, SerializeDeserializeRoundTrip) {
  TableSchema s = CustomerSchema();
  auto parsed = TableSchema::Deserialize(s.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, "Customer");
  ASSERT_EQ(parsed->columns.size(), 4u);
  EXPECT_EQ(parsed->columns[0].name, "id");
  EXPECT_EQ(parsed->columns[0].type, ColumnType::kInt);
  EXPECT_FALSE(parsed->columns[0].nullable);
  EXPECT_EQ(parsed->columns[1].max_length, 32u);
  EXPECT_EQ(parsed->primary_key, std::vector<std::string>{"id"});
  ASSERT_EQ(parsed->foreign_keys.size(), 1u);
  EXPECT_EQ(parsed->foreign_keys[0].column, "city");
  EXPECT_EQ(parsed->foreign_keys[0].ref_table, "City");
  EXPECT_EQ(parsed->foreign_keys[0].ref_column, "name");
}

TEST(SchemaTest, RoundTripWithoutPkOrFk) {
  TableSchema s;
  s.name = "T";
  s.columns = {{"a", ColumnType::kInt, 0, true}};
  auto parsed = TableSchema::Deserialize(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->primary_key.empty());
  EXPECT_TRUE(parsed->foreign_keys.empty());
}

TEST(SchemaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(TableSchema::Deserialize("").ok());
  EXPECT_FALSE(TableSchema::Deserialize("just text").ok());
  EXPECT_FALSE(TableSchema::Deserialize("T|a,BOGUS,0,1||").ok());
  EXPECT_FALSE(TableSchema::Deserialize("T|||").ok()) << "no columns";
  EXPECT_FALSE(TableSchema::Deserialize("|a,INT,0,1||").ok()) << "no name";
  EXPECT_FALSE(TableSchema::Deserialize("T|a,INT,0,1||fk-broken").ok());
}

}  // namespace
}  // namespace dbfa
