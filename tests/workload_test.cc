// SSBM generator/queries and synthetic workload + tamper primitives.
#include <gtest/gtest.h>

#include "workload/ssbm.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

std::unique_ptr<Database> OpenDb() {
  DatabaseOptions options;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(SsbmTest, LoadsAndAllQueriesRun) {
  auto db = OpenDb();
  SsbmConfig config;
  config.customers = 60;
  config.suppliers = 25;
  config.parts = 60;
  config.date_days = 400;
  config.lineorders = 400;
  ASSERT_TRUE(LoadSsbm(db.get(), config).ok());

  // Every table is populated.
  for (const char* table : {"date", "customer", "supplier", "part",
                            "lineorder"}) {
    EXPECT_NE(db->catalog().Find(table), nullptr) << table;
  }
  // Referential integrity held during load (FK enforcement was on).
  size_t queries_with_rows = 0;
  for (const std::string& qid : SsbmQueryIds()) {
    auto result = RunSsbmQuery(db.get(), qid);
    ASSERT_TRUE(result.ok()) << qid << ": " << result.status().ToString();
    if (!result->rows.empty() && !result->rows[0][0].is_null()) {
      ++queries_with_rows;
    }
  }
  // The flight must be non-trivial: most queries select real data.
  EXPECT_GE(queries_with_rows, 6u);
}

TEST(SsbmTest, UnknownQueryRejected) {
  EXPECT_FALSE(SsbmQuerySql("Q9.9").ok());
}

TEST(SyntheticTest, WorkloadRunsAndRecordsGroundTruth) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  ASSERT_TRUE(workload.Setup(100).ok());
  ASSERT_TRUE(workload.Run(150, OpMix{}, /*logged=*/true).ok());
  ASSERT_TRUE(workload.Run(20, OpMix{}, /*logged=*/false).ok());

  size_t logged = 0;
  size_t unlogged = 0;
  for (const AppliedOp& op : workload.history()) {
    op.logged ? ++logged : ++unlogged;
  }
  EXPECT_EQ(unlogged, 20u);
  EXPECT_EQ(logged, 251u);  // CREATE + 100 inserts + 150 ops
  // The audit log contains exactly the logged ones.
  EXPECT_EQ(db->audit_log().entries().size(), logged);
}

TEST(SyntheticTest, TamperOverwriteFieldBypassesLogAndIndex) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  ASSERT_TRUE(workload.Setup(50).ok());
  size_t log_size = db->audit_log().entries().size();

  // Find a victim row's physical location.
  RowPointer victim{};
  Record victim_row;
  ASSERT_TRUE(db->heap("Accounts")
                  ->Scan([&](RowPointer ptr, const Record& rec) {
                    if (rec[0] == Value::Int(10)) {
                      victim = ptr;
                      victim_row = rec;
                    }
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_FALSE(victim_row.empty());
  std::string owner(victim_row[1].as_string());
  std::string forged(owner.size(), 'X');
  ASSERT_TRUE(TamperOverwriteField(db.get(), "Accounts", victim, "Owner",
                                   Value::Str(forged))
                  .ok());
  // The engine sees the forged value; the log saw nothing.
  auto rows = db->ExecuteSql("SELECT Owner FROM Accounts WHERE Id = 10");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value::Str(forged));
  EXPECT_EQ(db->audit_log().entries().size(), log_size + 1)
      << "only the investigating SELECT was logged";
}

TEST(SyntheticTest, TamperOverwriteRejectsLengthChange) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  ASSERT_TRUE(workload.Setup(10).ok());
  RowPointer victim{};
  ASSERT_TRUE(db->heap("Accounts")
                  ->Scan([&](RowPointer ptr, const Record&) {
                    victim = ptr;
                    return Status::Ok();
                  })
                  .ok());
  auto status = TamperOverwriteField(
      db.get(), "Accounts", victim, "Owner",
      Value::Str("this-name-is-way-too-long-to-fit-in-place"));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SyntheticTest, TamperInsertAndEraseRecords) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 7);
  ASSERT_TRUE(workload.Setup(30).ok());

  // Smuggle a record in: visible to scans, absent from the PK index.
  Record smuggled = {Value::Int(999), Value::Str("Ghost"),
                     Value::Str("Nowhere"), Value::Real(1e6)};
  ASSERT_TRUE(TamperInsertRecord(db.get(), "Accounts", smuggled).ok());
  auto full = db->ExecuteSql("SELECT * FROM Accounts WHERE Owner = 'Ghost'");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->rows.size(), 1u) << "full scan sees the smuggled row";
  auto by_pk = db->ExecuteSql("SELECT * FROM Accounts WHERE Id = 999");
  ASSERT_TRUE(by_pk.ok());
  EXPECT_TRUE(by_pk->rows.empty()) << "PK index scan does not";

  // Erase record Id=5 at byte level: gone from scans, index unaware.
  RowPointer victim{};
  ASSERT_TRUE(db->heap("Accounts")
                  ->Scan([&](RowPointer ptr, const Record& rec) {
                    if (rec[0] == Value::Int(5)) victim = ptr;
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_TRUE(TamperEraseRecord(db.get(), "Accounts", victim).ok());
  auto gone = db->ExecuteSql("SELECT * FROM Accounts WHERE Owner <> ''");
  ASSERT_TRUE(gone.ok());
  for (const Record& r : gone->rows) {
    EXPECT_NE(r[0], Value::Int(5));
  }
  BTree* pk = db->index("Accounts", "pk_Accounts");
  auto stale = pk->SearchEqual({Value::Int(5)});
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->size(), 1u) << "index still points at the erased record";
}

}  // namespace
}  // namespace dbfa
