// Property-based tests: randomized operation streams checked against
// reference models and carving invariants, swept across all dialects.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/carver.h"
#include "engine/database.h"
#include "sql/parser.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  return config;
}

Value RandomValue(Rng* rng, ColumnType type, uint32_t max_length) {
  if (rng->Bernoulli(0.08)) return Value::Null();
  switch (type) {
    case ColumnType::kInt:
      return Value::Int(rng->Uniform(-1'000'000, 1'000'000));
    case ColumnType::kDouble:
      return Value::Real(static_cast<double>(rng->Uniform(-10000, 10000)) /
                         8.0);
    case ColumnType::kVarchar: {
      size_t n = static_cast<size_t>(
          rng->Uniform(0, max_length > 0 ? max_length : 24));
      return Value::Str(rng->Word(n));
    }
  }
  return Value::Null();
}

// ---- Property 1: random records round-trip through every page format -----

class RecordRoundTripProperty : public ::testing::TestWithParam<std::string> {
};

TEST_P(RecordRoundTripProperty, RandomRecordsEncodeDecodeExactly) {
  PageLayoutParams params = GetDialect(GetParam()).value();
  PageFormatter fmt(params);
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    // Random schema: 1..10 columns of random types.
    TableSchema schema;
    schema.name = "T";
    int ncols = static_cast<int>(rng.Uniform(1, 10));
    for (int c = 0; c < ncols; ++c) {
      Column col;
      col.name = "c" + std::to_string(c);
      switch (rng.Uniform(0, 2)) {
        case 0:
          col.type = ColumnType::kInt;
          break;
        case 1:
          col.type = ColumnType::kDouble;
          break;
        default:
          col.type = ColumnType::kVarchar;
          col.max_length = static_cast<uint32_t>(rng.Uniform(1, 40));
      }
      schema.columns.push_back(col);
    }
    Bytes page(params.page_size);
    fmt.InitPage(page.data(), 1, 2, PageType::kData);
    std::vector<Record> originals;
    for (int r = 0; r < 20; ++r) {
      Record rec;
      for (const Column& col : schema.columns) {
        rec.push_back(RandomValue(&rng, col.type, col.max_length));
      }
      auto encoded = fmt.EncodeRecord(schema, rec, r + 1);
      ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
      auto slot = fmt.InsertRecordBytes(page.data(), *encoded);
      if (!slot.ok()) break;  // page full; enough coverage
      originals.push_back(rec);
    }
    for (size_t s = 0; s < originals.size(); ++s) {
      auto info = fmt.GetSlot(page.data(), static_cast<uint16_t>(s));
      ASSERT_TRUE(info.has_value());
      auto parsed = fmt.ParseRecordAt(ByteView(page.data(), page.size()),
                                      info->offset);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      auto decoded = fmt.DecodeTyped(*parsed, schema);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(CompareRecords(*decoded, originals[s]), 0)
          << "trial " << trial << " slot " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, RecordRoundTripProperty,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// ---- Property 2: engine vs reference model, then carve consistency --------

class EngineModelProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineModelProperty, RandomOpsMatchReferenceModelAndCarve) {
  DatabaseOptions options;
  options.dialect = GetParam();
  options.buffer_pool_pages = 16;  // force eviction traffic
  auto db = Database::Open(options).value();
  TableSchema schema;
  schema.name = "T";
  schema.columns = {{"k", ColumnType::kInt, 0, false},
                    {"v", ColumnType::kVarchar, 24, true}};
  schema.primary_key = {"k"};
  ASSERT_TRUE(db->CreateTable(schema).ok());

  std::map<int64_t, std::string> model;  // reference: live rows
  std::set<std::string> ever_deleted_values;
  Rng rng(GetParam().size() * 1337 + 11);
  int64_t next_key = 1;
  for (int op = 0; op < 600; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.55 || model.empty()) {
      int64_t k = next_key++;
      std::string v = "val-" + rng.Word(8);
      ASSERT_TRUE(db->Insert("T", {Value::Int(k), Value::Str(v)}).ok());
      model[k] = v;
    } else if (dice < 0.8) {
      // Delete a random existing key.
      auto it = model.begin();
      std::advance(it, rng.NextU64() % model.size());
      auto where = sql::ParseExpression("k = " + std::to_string(it->first));
      auto n = db->Delete("T", *where);
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(*n, 1);
      ever_deleted_values.insert(it->second);
      model.erase(it);
    } else {
      // Update a random existing key's value.
      auto it = model.begin();
      std::advance(it, rng.NextU64() % model.size());
      std::string v = "upd-" + rng.Word(8);
      auto where = sql::ParseExpression("k = " + std::to_string(it->first));
      auto n = db->Update("T", {{"v", Value::Str(v)}}, *where);
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(*n, 1);
      ever_deleted_values.insert(it->second);  // pre-image becomes residue
      it->second = v;
    }
  }

  // 1. SQL view == reference model (via PK index point lookups and scan).
  auto all = db->ExecuteSql("SELECT * FROM T");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->rows.size(), model.size());
  for (const Record& row : all->rows) {
    auto it = model.find(row[0].as_int());
    ASSERT_NE(it, model.end());
    EXPECT_EQ(row[1], Value::Str(it->second));
  }
  for (int probe = 0; probe < 20 && !model.empty(); ++probe) {
    auto it = model.begin();
    std::advance(it, rng.NextU64() % model.size());
    auto one = db->ExecuteSql("SELECT v FROM T WHERE k = " +
                              std::to_string(it->first));
    ASSERT_TRUE(one.ok());
    ASSERT_EQ(one->rows.size(), 1u);
    EXPECT_EQ(one->rows[0][0], Value::Str(it->second));
    EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);
  }

  // 2. Carve == model for active rows; every deleted value is residue.
  Carver carver(ConfigFor(GetParam()));
  auto carve = carver.Carve(db->SnapshotDisk().value());
  ASSERT_TRUE(carve.ok());
  std::map<int64_t, std::string> carved_active;
  size_t carved_deleted = 0;
  for (const CarvedRecord* r : carve->RecordsForTable("T")) {
    if (!r->typed) continue;
    if (r->status == RowStatus::kActive) {
      carved_active[r->values[0].as_int()] = r->values[1].as_string();
    } else {
      ++carved_deleted;
    }
  }
  EXPECT_EQ(carved_active.size(), model.size());
  for (const auto& [k, v] : model) {
    auto it = carved_active.find(k);
    ASSERT_NE(it, carved_active.end()) << "missing active key " << k;
    EXPECT_EQ(it->second, v);
  }
  // No reuse/vacuum happened, so every delete/update left carvable residue.
  EXPECT_EQ(carved_deleted, ever_deleted_values.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, EngineModelProperty,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// ---- Property 3: carver never crashes and stays sane on corrupted input ---

class CorruptionProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CorruptionProperty, RandomCorruptionNeverBreaksInvariants) {
  DatabaseOptions options;
  options.dialect = GetParam();
  auto db = Database::Open(options).value();
  TableSchema schema;
  schema.name = "T";
  schema.columns = {{"k", ColumnType::kInt, 0, false},
                    {"v", ColumnType::kVarchar, 24, true}};
  schema.primary_key = {"k"};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  for (int i = 1; i <= 400; ++i) {
    ASSERT_TRUE(
        db->Insert("T", {Value::Int(i), Value::Str("value-padding")}).ok());
  }
  Bytes pristine = db->SnapshotDisk().value();
  Carver carver(ConfigFor(GetParam()));
  size_t baseline = carver.Carve(pristine).value().records.size();

  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    Bytes image = pristine;
    // Corrupt 1-4 random regions of 1-600 bytes.
    int regions = static_cast<int>(rng.Uniform(1, 4));
    for (int r = 0; r < regions; ++r) {
      size_t offset = rng.NextU64() % image.size();
      size_t len = static_cast<size_t>(rng.Uniform(1, 600));
      CorruptRegion(&image, offset, len, &rng);
    }
    auto carve = carver.Carve(image);
    ASSERT_TRUE(carve.ok()) << "carver must never fail outright";
    // Invariants on whatever was recovered:
    EXPECT_LE(carve->records.size(), baseline + 8)
        << "corruption must not conjure many phantom records";
    for (const CarvedRecord& rec : carve->records) {
      EXPECT_LE(rec.values.size(), 64u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, CorruptionProperty,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// ---- Property 4: SQL expression parser round-trip under random ASTs -------

TEST(SqlRoundTripProperty, RandomExpressionsSurviveParseRenderParse) {
  Rng rng(7);
  auto random_literal = [&]() {
    switch (rng.Uniform(0, 2)) {
      case 0:
        return sql::MakeLiteral(Value::Int(rng.Uniform(-999, 999)));
      case 1:
        return sql::MakeLiteral(Value::Str(rng.Word(4)));
      default:
        return sql::MakeLiteral(Value::Null());
    }
  };
  std::function<sql::ExprPtr(int)> random_expr = [&](int depth) {
    if (depth <= 0 || rng.Bernoulli(0.3)) {
      if (rng.Bernoulli(0.5)) return random_literal();
      return sql::MakeColumn("col" + std::to_string(rng.Uniform(0, 5)));
    }
    switch (rng.Uniform(0, 5)) {
      case 0:
        return sql::MakeCompare(
            static_cast<sql::CompareOp>(rng.Uniform(0, 5)),
            random_expr(depth - 1), random_expr(depth - 1));
      case 1:
        return sql::MakeAnd(random_expr(depth - 1), random_expr(depth - 1));
      case 2:
        return sql::MakeOr(random_expr(depth - 1), random_expr(depth - 1));
      case 3:
        return sql::MakeNot(random_expr(depth - 1));
      case 4:
        return sql::MakeIsNull(random_expr(depth - 1), rng.Bernoulli(0.5));
      default:
        return sql::MakeArith(
            static_cast<sql::ArithOp>(rng.Uniform(0, 3)),
            random_expr(depth - 1), random_expr(depth - 1));
    }
  };
  for (int trial = 0; trial < 200; ++trial) {
    sql::ExprPtr e = random_expr(4);
    // First parse normalizes sugar (e.g. a negative literal becomes the
    // unary-minus form (0 - n)); after that, render->parse->render must be
    // a fixpoint.
    auto once = sql::ParseExpression(e->ToSql());
    ASSERT_TRUE(once.ok()) << e->ToSql() << ": "
                           << once.status().ToString();
    std::string normalized = (*once)->ToSql();
    auto twice = sql::ParseExpression(normalized);
    ASSERT_TRUE(twice.ok()) << normalized;
    EXPECT_EQ((*twice)->ToSql(), normalized) << "trial " << trial;
  }
}

// ---- Property 5: the SQL front end never crashes on arbitrary input -------

TEST(SqlFuzzProperty, RandomBytesNeverCrashTheParser) {
  Rng rng(4242);
  const char* fragments[] = {"SELECT", "FROM", "WHERE", "(", ")", ",",
                             "'", "*", "=", "<", "INSERT", "VALUES",
                             "AND", "NOT", "1", "x", ";", "LIKE", "--"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t pieces = rng.NextU64() % 20;
    for (size_t i = 0; i < pieces; ++i) {
      if (rng.Bernoulli(0.3)) {
        input += static_cast<char>(rng.NextU64() % 256);
      } else {
        input += fragments[rng.NextU64() % 19];
        input += ' ';
      }
    }
    // Must return a Status, never crash or hang.
    (void)sql::ParseStatement(input);
    (void)sql::ParseExpression(input);
  }
}

TEST(SqlFuzzProperty, DeeplyNestedExpressionsParse) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto parsed = sql::ParseExpression(expr);
  ASSERT_TRUE(parsed.ok());
  // And evaluate correctly.
  class Empty : public sql::ColumnBinding {
   public:
    std::optional<Value> Lookup(std::string_view) const override {
      return std::nullopt;
    }
  };
  Empty binding;
  auto v = sql::Eval(**parsed, binding);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(201));
}

}  // namespace
}  // namespace dbfa
