// Tests for the paper's future-work features implemented as extensions:
// evidence packages (III-D), external page building (IV-b), and
// cache-aware query reordering (IV-c).
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/strings.h"
#include "core/carver.h"
#include "core/page_builder.h"
#include "detective/evidence.h"
#include "pli/query_reorder.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  return config;
}

// ---- Evidence packages (Section III-D) ------------------------------------

TEST(EvidenceTest, PackageReproducesFindingsIndependently) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 21);
  ASSERT_TRUE(workload.Setup(200).ok());
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 50").ok());
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 150").ok());
  db->audit_log().SetEnabled(true);

  CarverConfig config = ConfigFor(db->params().dialect);
  Bytes image = db->SnapshotDisk().value();
  Carver carver(config);
  auto carve = carver.Carve(image).value();
  DbDetective detective(&carve, &db->audit_log());
  auto findings = detective.FindUnattributedModifications().value();
  ASSERT_EQ(findings.size(), 2u);

  EvidenceCollector collector(config);
  auto package = collector.Collect(image, carve, findings);
  ASSERT_TRUE(package.ok()) << package.status().ToString();

  // Minimal: far smaller than the full image, but more than one page
  // (catalog + data pages).
  EXPECT_LT(package->image.size(), image.size());
  EXPECT_GE(package->image.size(), 2u * db->params().page_size);
  EXPECT_EQ(package->claimed.size(), 2u);

  // Independent verification from the package alone.
  EXPECT_TRUE(
      EvidenceCollector::Verify(*package, db->audit_log()).ok());

  // A log that *does* explain the deletions makes verification fail —
  // the package does not prove a breach against that log.
  AuditLog explaining = db->audit_log();
  explaining.Append(db->clock().Now(),
                    "DELETE FROM Accounts WHERE Id = 50");
  explaining.Append(db->clock().Now(),
                    "DELETE FROM Accounts WHERE Id = 150");
  EXPECT_FALSE(EvidenceCollector::Verify(*package, explaining).ok());
}

TEST(EvidenceTest, PackageSurvivesDiskRoundTrip) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 22);
  ASSERT_TRUE(workload.Setup(50).ok());
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 7").ok());
  db->audit_log().SetEnabled(true);

  CarverConfig config = ConfigFor(db->params().dialect);
  Bytes image = db->SnapshotDisk().value();
  Carver carver(config);
  auto carve = carver.Carve(image).value();
  DbDetective detective(&carve, &db->audit_log());
  auto findings = detective.FindUnattributedModifications().value();
  EvidenceCollector collector(config);
  auto package = collector.Collect(image, carve, findings).value();

  std::string dir = ::testing::TempDir() + "/dbfa_evidence";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_TRUE(package.SaveTo(dir).ok());
  auto loaded = EvidencePackage::LoadFrom(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->image, package.image);
  EXPECT_EQ(loaded->claimed, package.claimed);
  EXPECT_TRUE(EvidenceCollector::Verify(*loaded, db->audit_log()).ok());
}

TEST(EvidenceTest, CorruptedPackageLoadsFailWithStatus) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 23);
  ASSERT_TRUE(workload.Setup(50).ok());
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 9").ok());
  db->audit_log().SetEnabled(true);

  CarverConfig config = ConfigFor(db->params().dialect);
  Bytes image = db->SnapshotDisk().value();
  Carver carver(config);
  auto carve = carver.Carve(image).value();
  DbDetective detective(&carve, &db->audit_log());
  auto findings = detective.FindUnattributedModifications().value();
  EvidenceCollector collector(config);
  EvidencePackage package = collector.Collect(image, carve, findings).value();

  std::string dir = ::testing::TempDir() + "/dbfa_evidence_corrupt";
  auto save_variant = [&](const EvidencePackage& p) {
    ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
              0);
    ASSERT_TRUE(p.SaveTo(dir).ok());
  };

  // Baseline sanity: the untouched package loads.
  save_variant(package);
  ASSERT_TRUE(EvidencePackage::LoadFrom(dir).ok());

  // Truncated evidence.img (not a page-size multiple).
  {
    EvidencePackage truncated = package;
    truncated.image.resize(truncated.image.size() - 100);
    save_variant(truncated);
    auto loaded = EvidencePackage::LoadFrom(dir);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << loaded.status().ToString();
    EXPECT_NE(loaded.status().ToString().find("page size"),
              std::string::npos)
        << loaded.status().ToString();
  }

  // Empty image.
  {
    EvidencePackage empty = package;
    empty.image.clear();
    save_variant(empty);
    EXPECT_EQ(EvidencePackage::LoadFrom(dir).status().code(),
              StatusCode::kCorruption);
  }

  // Malformed manifest lines: wrong field count, non-numeric fields,
  // and out-of-range ids.
  for (const std::string& bad_line :
       {std::string("1 2"), std::string("a b c"),
        std::string("0 5 1024"), std::string("7 0 1024"),
        std::string("1 2 3 4"), std::string("5000000000 1 0")}) {
    EvidencePackage bad = package;
    bad.manifest[0] = bad_line;
    save_variant(bad);
    auto loaded = EvidencePackage::LoadFrom(dir);
    ASSERT_FALSE(loaded.ok()) << "line: " << bad_line;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << bad_line << ": " << loaded.status().ToString();
    EXPECT_NE(loaded.status().ToString().find("manifest"),
              std::string::npos)
        << loaded.status().ToString();
  }

  // Manifest page count disagreeing with the image.
  {
    EvidencePackage short_manifest = package;
    short_manifest.manifest.pop_back();
    save_variant(short_manifest);
    EXPECT_EQ(EvidencePackage::LoadFrom(dir).status().code(),
              StatusCode::kCorruption);
  }

  // Config/image page-size mismatch: a config whose page size does not
  // divide the image must be rejected before any page math runs.
  {
    EvidencePackage mismatched = package;
    CarverConfig other = config;
    other.params.page_size = config.params.page_size * 2;
    mismatched.config_text = ConfigToText(other);
    // Keep the image size indivisible by the doubled page size.
    mismatched.image.resize(config.params.page_size * 3);
    mismatched.manifest.resize(3);
    save_variant(mismatched);
    EXPECT_EQ(EvidencePackage::LoadFrom(dir).status().code(),
              StatusCode::kCorruption);
  }
}

// ---- External page building (Section IV-b) ---------------------------------

class PageBuilderDialectTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(PageBuilderDialectTest, BuiltFileAttachesAndQueriesCorrectly) {
  CarverConfig config = ConfigFor(GetParam());
  ExternalPageBuilder builder(config);
  TableSchema schema;
  schema.name = "Imported";
  schema.columns = {{"Id", ColumnType::kInt, 0, false},
                    {"Tag", ColumnType::kVarchar, 24, true}};
  schema.primary_key = {"Id"};
  std::vector<Record> rows;
  for (int i = 1; i <= 500; ++i) {
    rows.push_back({Value::Int(i), Value::Str(StrFormat("tag-%04d", i))});
  }
  auto file = builder.BuildTableFile(schema, rows);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size() % config.params.page_size, 0u);
  EXPECT_GT(file->size() / config.params.page_size, 1u)
      << "500 rows must span several pages";

  // The built file is already carvable stand-alone (no catalog: untyped).
  CarveOptions carve_options;
  carve_options.scan_step = config.params.page_size;
  Carver carver(config, carve_options);
  auto standalone = carver.Carve(*file).value();
  EXPECT_EQ(standalone.records.size(), 500u);

  // Attach to a live instance; "minor changes" rewrite object ids.
  DatabaseOptions options;
  options.dialect = GetParam();
  auto db = Database::Open(options).value();
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE Existing (x INT, PRIMARY KEY "
                             "(x))")
                  .ok());
  ASSERT_TRUE(db->ExecuteSql("INSERT INTO Existing VALUES (1)").ok());
  auto attach = db->AttachExternalTable(schema, *file);
  ASSERT_TRUE(attach.ok()) << attach.ToString();

  auto all = db->ExecuteSql("SELECT * FROM Imported WHERE Id > 490");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->rows.size(), 10u);
  // The PK index was built during attach: point lookups use it.
  auto one = db->ExecuteSql("SELECT Tag FROM Imported WHERE Id = 123");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->rows.size(), 1u);
  EXPECT_EQ(one->rows[0][0], Value::Str("tag-0123"));
  EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);
  // New inserts continue normally after attach.
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Imported VALUES (501, 'fresh')").ok());
  auto fresh = db->ExecuteSql("SELECT * FROM Imported WHERE Id = 501");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), 1u);
  // Attached content carves as part of the instance, with types.
  auto carve2 = Carver(config).Carve(db->SnapshotDisk().value()).value();
  EXPECT_EQ(carve2.RecordsForTable("Imported").size(), 501u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, PageBuilderDialectTest,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(PageBuilderTest, RejectsBadInput) {
  CarverConfig config = ConfigFor("postgres_like");
  ExternalPageBuilder builder(config);
  TableSchema schema;
  schema.name = "T";
  schema.columns = {{"x", ColumnType::kInt, 0, false}};
  auto bad = builder.BuildTableFile(schema, {{Value::Str("not an int")}});
  EXPECT_FALSE(bad.ok());

  auto db = Database::Open(DatabaseOptions{}).value();
  EXPECT_FALSE(db->AttachExternalTable(schema, Bytes{1, 2, 3}).ok());
  Bytes zeros(config.params.page_size, 0);
  EXPECT_FALSE(db->AttachExternalTable(schema, zeros).ok());
}

// ---- Query reordering (Section IV-c) -----------------------------------------

TEST(QueryReorderTest, ReorderingReducesEstimatedMisses) {
  DatabaseOptions options;
  options.buffer_pool_pages = 16;  // smaller than any two tables together
  auto db = Database::Open(options).value();
  // Three tables, each spanning ~10 pages.
  for (const char* name : {"A", "B", "C"}) {
    SyntheticWorkload workload(db.get(), name, 5);
    ASSERT_TRUE(workload.Setup(1200).ok());
  }
  // Warm the cache with table B.
  ASSERT_TRUE(db->ExecuteSql("SELECT * FROM B WHERE Owner = 'Maria'").ok());

  // Interleaved scans thrash; grouped scans reuse the cache.
  std::vector<std::string> queries = {
      "SELECT * FROM A WHERE Owner = 'Joe'",
      "SELECT * FROM C WHERE Owner = 'Joe'",
      "SELECT * FROM B WHERE Owner = 'Joe'",
      "SELECT * FROM A WHERE Owner = 'Olga'",
      "SELECT * FROM C WHERE Owner = 'Olga'",
      "SELECT * FROM B WHERE Owner = 'Olga'",
      "SELECT * FROM A WHERE Owner = 'Wei'",
      "SELECT * FROM C WHERE Owner = 'Wei'",
      "SELECT * FROM B WHERE Owner = 'Wei'",
  };
  auto plan = QueryReorderer::Plan(db.get(), queries);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->order.size(), queries.size());
  // A permutation:
  std::set<size_t> unique(plan->order.begin(), plan->order.end());
  EXPECT_EQ(unique.size(), queries.size());
  EXPECT_LT(plan->estimated_misses_reordered,
            plan->estimated_misses_original)
      << plan->ToString();

  // The plan's estimate is honest: executing in the planned order causes
  // fewer real pool misses than the original order.
  auto run_in_order = [&](const std::vector<size_t>& order) -> uint64_t {
    DatabaseOptions fresh_options;
    fresh_options.buffer_pool_pages = 16;
    auto fresh = Database::Open(fresh_options).value();
    for (const char* name : {"A", "B", "C"}) {
      SyntheticWorkload workload(fresh.get(), name, 5);
      EXPECT_TRUE(workload.Setup(1200).ok());
    }
    EXPECT_TRUE(
        fresh->ExecuteSql("SELECT * FROM B WHERE Owner = 'Maria'").ok());
    uint64_t before = fresh->pager().pool().stats().misses;
    for (size_t i : order) {
      EXPECT_TRUE(fresh->ExecuteSql(queries[i]).ok());
    }
    return fresh->pager().pool().stats().misses - before;
  };
  std::vector<size_t> original_order;
  for (size_t i = 0; i < queries.size(); ++i) original_order.push_back(i);
  uint64_t misses_original = run_in_order(original_order);
  uint64_t misses_reordered = run_in_order(plan->order);
  EXPECT_LT(misses_reordered, misses_original);
}

TEST(QueryReorderTest, IndexScansAreCheapEverywhere) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(3000).ok());
  // Cold cache: the full scan is expensive, point lookups are not.
  ASSERT_TRUE(db->pager().pool().Clear().ok());
  std::vector<std::string> queries = {
      "SELECT * FROM Accounts",                 // full scan
      "SELECT * FROM Accounts WHERE Id = 5",    // point lookup
      "SELECT * FROM Accounts WHERE Id = 9",    // point lookup
  };
  auto plan = QueryReorderer::Plan(db.get(), queries);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->order.size(), 3u);
  // Point lookups (cheap) schedule before the cold full scan.
  EXPECT_EQ(plan->order.back(), 0u) << plan->ToString();
}

TEST(QueryReorderTest, RejectsNonSelects) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(10).ok());
  EXPECT_FALSE(
      QueryReorderer::Plan(db.get(), {"DELETE FROM Accounts"}).ok());
  EXPECT_FALSE(QueryReorderer::Plan(db.get(), {"SELECT * FROM Nope"}).ok());
}

}  // namespace
}  // namespace dbfa
