// Meta-query engine tests, including the two scenarios of Section II-C.
#include <gtest/gtest.h>

#include "common/string_pool.h"
#include "core/carver.h"
#include "metaquery/column_batch.h"
#include "metaquery/session.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

std::shared_ptr<Relation> ProductRelation(
    std::vector<std::tuple<int, std::string, double>> rows) {
  std::vector<Record> records;
  for (auto& [pid, name, price] : rows) {
    records.push_back(
        {Value::Int(pid), Value::Str(name), Value::Real(price)});
  }
  return std::make_shared<VectorRelation>(
      std::vector<std::string>{"PID", "Name", "Price"}, std::move(records));
}

TEST(MetaQueryTest, FilterProjectOrderLimit) {
  MetaQuerySession session;
  session.Register("Product", ProductRelation({{1, "Ant", 10.0},
                                               {2, "Bee", 5.0},
                                               {3, "Cat", 30.0},
                                               {4, "Dog", 20.0}}));
  auto result = session.Query(
      "SELECT Name, Price FROM Product WHERE Price > 6 "
      "ORDER BY Price DESC LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], Value::Str("Cat"));
  EXPECT_EQ(result->rows[1][0], Value::Str("Dog"));
}

TEST(MetaQueryTest, Scenario2DiskRamJoinFindsUpdatedPrices) {
  // Section II-C scenario 2: find recent price changes by joining the RAM
  // carve against the disk carve.
  MetaQuerySession session;
  session.Register("CarvDiskProduct", ProductRelation({{1, "Ant", 10.0},
                                                       {2, "Bee", 5.0},
                                                       {3, "Cat", 30.0}}));
  session.Register("CarvRAMProduct", ProductRelation({{1, "Ant", 10.0},
                                                      {2, "Bee", 9.0},
                                                      {3, "Cat", 30.0}}));
  auto result = session.Query(
      "SELECT M.PID, M.Price, D.Price AS OldPrice "
      "FROM CarvRAMProduct AS M JOIN CarvDiskProduct AS D ON M.PID = D.PID "
      "WHERE M.Price <> D.Price");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(2));
  EXPECT_EQ(result->rows[0][1], Value::Real(9.0));
  EXPECT_EQ(result->rows[0][2], Value::Real(5.0));
}

TEST(MetaQueryTest, AggregatesWithGroupBy) {
  MetaQuerySession session;
  std::vector<Record> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({Value::Int(i % 3), Value::Int(i)});
  }
  session.Register("T", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"g", "v"}, rows));
  auto result = session.Query(
      "SELECT g, COUNT(*) AS n, SUM(v) AS total, MIN(v) AS lo, "
      "MAX(v) AS hi, AVG(v) AS mean FROM T GROUP BY g ORDER BY g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Int(0));
  EXPECT_EQ(result->rows[0][1], Value::Int(10));
  EXPECT_EQ(result->rows[0][3], Value::Int(0));
  EXPECT_EQ(result->rows[0][4], Value::Int(27));
  // SUM of 0,3,...,27 = 135; AVG = 13.5.
  EXPECT_EQ(result->rows[0][2], Value::Int(135));
  EXPECT_EQ(result->rows[0][5], Value::Real(13.5));
}

TEST(MetaQueryTest, AggregateOverEmptyInput) {
  MetaQuerySession session;
  session.Register("E", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"x"},
                            std::vector<Record>{}));
  auto result = session.Query("SELECT COUNT(*) AS n, SUM(x) AS s FROM E");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(0));
  EXPECT_TRUE(result->rows[0][1].is_null());
}

TEST(MetaQueryTest, ArithmeticInAggregates) {
  MetaQuerySession session;
  session.Register("T", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"a", "b"},
                            std::vector<Record>{
                                {Value::Int(2), Value::Int(3)},
                                {Value::Int(4), Value::Int(5)}}));
  auto result = session.Query("SELECT SUM(a * b) AS dot FROM T");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], Value::Int(26));
}

TEST(MetaQueryTest, MultiWayJoin) {
  MetaQuerySession session;
  session.Register("A", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"id", "bref"},
                            std::vector<Record>{
                                {Value::Int(1), Value::Int(10)},
                                {Value::Int(2), Value::Int(20)}}));
  session.Register("B", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"bid", "cref"},
                            std::vector<Record>{
                                {Value::Int(10), Value::Int(100)},
                                {Value::Int(20), Value::Int(200)}}));
  session.Register("C", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"cid", "label"},
                            std::vector<Record>{
                                {Value::Int(100), Value::Str("x")},
                                {Value::Int(200), Value::Str("y")}}));
  auto result = session.Query(
      "SELECT id, label FROM A JOIN B ON bref = bid JOIN C ON cref = cid "
      "ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][1], Value::Str("x"));
  EXPECT_EQ(result->rows[1][1], Value::Str("y"));
}

TEST(MetaQueryTest, NullsNeverJoin) {
  MetaQuerySession session;
  session.Register("L", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"k"},
                            std::vector<Record>{{Value::Null()},
                                                {Value::Int(1)}}));
  session.Register("R", std::make_shared<VectorRelation>(
                            std::vector<std::string>{"k2"},
                            std::vector<Record>{{Value::Null()},
                                                {Value::Int(1)}}));
  auto result = session.Query("SELECT * FROM L JOIN R ON k = k2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u) << "NULL keys must not match";
}

TEST(MetaQueryTest, ErrorsAreClean) {
  MetaQuerySession session;
  session.Register("T", ProductRelation({{1, "A", 1.0}}));
  EXPECT_FALSE(session.Query("SELECT * FROM Nope").ok());
  EXPECT_FALSE(session.Query("DELETE FROM T").ok());
  EXPECT_FALSE(session.Query("SELECT nope FROM T").ok());
  EXPECT_FALSE(session.Query("SELECT * FROM T ORDER BY nope").ok());
  EXPECT_FALSE(session.Query("SELECT *, COUNT(*) FROM T").ok());
}

TEST(MetaQueryTest, Scenario1DeletedRowsFromLiveCarve) {
  // Section II-C scenario 1 end-to-end: carve a real database and select
  // the delete-marked rows via the RowStatus pseudo-column.
  DatabaseOptions options;
  options.dialect = "oracle_like";
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  TableSchema schema;
  schema.name = "Customer";
  schema.columns = {{"Id", ColumnType::kInt, 0, false},
                    {"Name", ColumnType::kVarchar, 32, true}};
  schema.primary_key = {"Id"};
  ASSERT_TRUE((*db)->CreateTable(schema).ok());
  ASSERT_TRUE((*db)
                  ->ExecuteSql("INSERT INTO Customer VALUES (1, 'Keep'), "
                               "(2, 'Gone'), (3, 'AlsoGone')")
                  .ok());
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Customer WHERE Id > 1").ok());
  auto image = (*db)->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  CarverConfig config;
  config.params = GetDialect("oracle_like").value();
  Carver carver(config);
  auto carve = carver.Carve(*image);
  ASSERT_TRUE(carve.ok());

  MetaQuerySession session;
  ASSERT_TRUE(session.RegisterCarve(*carve, "Carv").ok());
  auto result = session.Query(
      "SELECT Name FROM CarvCustomer WHERE RowStatus = 'DELETED' "
      "ORDER BY Name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], Value::Str("AlsoGone"));
  EXPECT_EQ(result->rows[1][0], Value::Str("Gone"));

  std::string text = result->ToText();
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("Gone"), std::string::npos);
}

TEST(MetaQueryTest, RegisterCarveReportsShadowedSchemas) {
  // A dropped-and-recreated table leaves two carved schemas with the same
  // name under different object ids. Name-based registration can only see
  // the first; the second must be reported, not silently dropped.
  CarveResult carve;
  TableSchema schema;
  schema.name = "Orders";
  schema.columns = {{"Id", ColumnType::kInt, 0, false}};
  carve.schemas[7] = schema;
  carve.schemas[9] = schema;
  CarvedRecord visible;
  visible.object_id = 7;
  visible.values = {Value::Int(42)};
  visible.typed = true;
  carve.records.push_back(visible);
  CarvedRecord shadowed = visible;
  shadowed.object_id = 9;
  shadowed.values = {Value::Int(99)};
  carve.records.push_back(shadowed);

  MetaQuerySession session;
  std::vector<std::string> skipped;
  ASSERT_TRUE(session.RegisterCarve(carve, "Carv", &skipped).ok());
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find("Orders"), std::string::npos);
  EXPECT_NE(skipped[0].find("object 9"), std::string::npos);
  EXPECT_NE(skipped[0].find("shadowed"), std::string::npos);

  // The first object's records are what got registered.
  auto result = session.Query("SELECT Id FROM CarvOrders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(42));
}

TEST(MetaQueryTest, ToTextAlignsColumnsAndMarksHiddenRows) {
  QueryTable table;
  table.columns = {"a", "longheader"};
  table.rows = {{Value::Int(1), Value::Str("xx")},
                {Value::Int(12345), Value::Str("y")},
                {Value::Int(7), Value::Str("hidden")}};
  std::string text = table.ToText(/*max_rows=*/2);

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  // Header, separator, two shown rows, overflow footer.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find("a"), std::string::npos);
  EXPECT_NE(lines[0].find("longheader"), std::string::npos);
  // Every table line is padded to the same width; cells stay aligned even
  // when a value ("12345") is wider than its header ("a").
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(lines[i].size(), lines[0].size()) << "line " << i;
  }
  EXPECT_NE(lines[3].find("12345"), std::string::npos);
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_EQ(lines[4], "... (1 more rows)");
}

TEST(MetaQueryTest, ToTextRendersNullsDoublesAndInternedStrings) {
  // ToText appends every cell through AppendDisplayTo without per-cell
  // ToString() temporaries; the rendering must be identical for owned and
  // interned representations of the same content.
  StringPool pool;
  QueryTable table;
  table.columns = {"v"};
  table.rows = {{Value::Null()},
                {Value::Real(2.5)},
                {Value::Str("owned")},
                {Value::InternedStr(pool.Intern("interned"))}};
  std::string text = table.ToText();
  EXPECT_NE(text.find("| NULL"), std::string::npos);
  EXPECT_NE(text.find("| 2.5"), std::string::npos);
  EXPECT_NE(text.find("| owned"), std::string::npos);
  EXPECT_NE(text.find("| interned"), std::string::npos);
}

TEST(ColumnBatchTest, RoundTripsTypedNullAndMixedColumns) {
  using metaquery_internal::ColumnBatch;
  StringPool pool;
  std::vector<Record> rows = {
      {Value::Int(1), Value::Real(0.5), Value::Str("a"), Value::Null(),
       Value::Int(10)},
      {Value::Int(2), Value::Null(), Value::InternedStr(pool.Intern("b")),
       Value::Null(), Value::Str("mixed")},
      {Value::Null(), Value::Real(-1.25), Value::Str("a"), Value::Null(),
       Value::Real(3.5)},
  };
  ColumnBatch batch = ColumnBatch::FromRecords(rows, 0, rows.size());
  ASSERT_EQ(batch.rows(), 3u);
  ASSERT_EQ(batch.width(), 5u);
  EXPECT_EQ(batch.column(0).type, ColumnBatch::ColType::kInt);
  EXPECT_EQ(batch.column(1).type, ColumnBatch::ColType::kDouble);
  EXPECT_EQ(batch.column(2).type, ColumnBatch::ColType::kString);
  EXPECT_EQ(batch.column(3).type, ColumnBatch::ColType::kNullOnly);
  EXPECT_EQ(batch.column(4).type, ColumnBatch::ColType::kValue);

  std::vector<Record> back;
  batch.ToRecords(&back);
  ASSERT_EQ(back.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_EQ(back[r].size(), rows[r].size()) << "row " << r;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      EXPECT_EQ(rows[r][c].type(), back[r][c].type())
          << "row " << r << " col " << c;
      EXPECT_EQ(Value::Compare(rows[r][c], back[r][c]), 0)
          << "row " << r << " col " << c;
    }
  }
  // Interned cells round-trip to the identical pool reference, not a copy.
  ASSERT_TRUE(back[1][2].is_interned());
  EXPECT_EQ(back[1][2].interned_ref().data, rows[1][2].interned_ref().data);
}

TEST(ColumnBatchTest, ColumnarFilterEngagesOnSupportedShapes) {
  std::vector<Record> rows;
  std::vector<std::string> words = {"ant", "bee", "cat"};
  for (int64_t i = 0; i < 500; ++i) {
    rows.push_back({Value::Int(i),
                    i % 7 == 0 ? Value::Null() : Value::Int(i % 5),
                    Value::Str(words[static_cast<size_t>(i) % words.size()]),
                    Value::Real(0.25 * static_cast<double>(i % 11))});
  }
  auto rel = std::make_shared<VectorRelation>(
      std::vector<std::string>{"id", "g", "s", "d"}, std::move(rows));

  MetaQueryOptions options;
  options.num_threads = 2;
  options.batch_rows = 64;
  MetaQuerySession session(options);
  session.Register("T", rel);

  // Conjunction of comparisons + IS NOT NULL: every batch runs columnar.
  auto fast = session.Query(
      "SELECT * FROM T WHERE g = 2 AND id >= 100 AND s <> 'bee' "
      "AND g IS NOT NULL AND d <= 2");
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_GT(session.last_batch_stats().columnar_batches, 0u);
  EXPECT_EQ(session.last_batch_stats().row_batches, 0u);

  // LIKE is not columnar-executable: every batch takes the row path.
  auto slow = session.Query("SELECT * FROM T WHERE s LIKE 'a%'");
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_EQ(session.last_batch_stats().columnar_batches, 0u);
  EXPECT_GT(session.last_batch_stats().row_batches, 0u);

  // Same query with the toggle off: identical rows, no columnar batches.
  auto on = session.Query("SELECT * FROM T WHERE g = 2 AND id >= 100");
  ASSERT_TRUE(on.ok());
  MetaQueryOptions off_options = options;
  off_options.columnar_filter = false;
  session.set_options(off_options);
  auto off = session.Query("SELECT * FROM T WHERE g = 2 AND id >= 100");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(session.last_batch_stats().columnar_batches, 0u);
  ASSERT_EQ(on->rows.size(), off->rows.size());
  for (size_t r = 0; r < on->rows.size(); ++r) {
    EXPECT_EQ(CompareRecords(on->rows[r], off->rows[r]), 0) << "row " << r;
  }
}

}  // namespace
}  // namespace dbfa
