// Out-of-core engine tests: budget-fuzzed equivalence against the
// unlimited in-memory engine, adversarial skew (join keys and groups that
// hash-partitioning cannot split), the 8x-over-budget join+aggregation
// acceptance shape, spill accounting, error parity, and temp-file hygiene
// — the spill directory must be empty after every query, including one
// aborted by a mid-scan failure.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "metaquery/session.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

void ExpectSameTable(const QueryTable& expected, const QueryTable& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.columns, actual.columns) << context;
  ASSERT_EQ(expected.rows.size(), actual.rows.size()) << context;
  for (size_t r = 0; r < expected.rows.size(); ++r) {
    ASSERT_EQ(expected.rows[r].size(), actual.rows[r].size())
        << context << " row " << r;
    for (size_t c = 0; c < expected.rows[r].size(); ++c) {
      const Value& e = expected.rows[r][c];
      const Value& a = actual.rows[r][c];
      ASSERT_TRUE(e.type() == a.type() && Value::Compare(e, a) == 0)
          << context << " row " << r << " col " << c << ": expected "
          << e.ToSqlLiteral() << ", got " << a.ToSqlLiteral();
    }
  }
}

/// fact(id, k, g, d, s): the driving relation. d holds multiples of 0.25
/// so double aggregates are exact; s pads rows so byte budgets bite.
std::shared_ptr<Relation> MakeFact(Rng* rng, size_t n, int64_t key_space) {
  std::vector<std::string> pool = {"north", "south", "east", "west"};
  std::vector<Record> rows;
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.push_back(Value::Int(static_cast<int64_t>(i)));
    r.push_back(rng->Bernoulli(0.04)
                    ? Value::Null()
                    : Value::Int(rng->Uniform(0, key_space - 1)));
    r.push_back(Value::Int(rng->Uniform(0, 7)));
    r.push_back(Value::Real(0.25 * static_cast<double>(rng->Uniform(-200, 200))));
    r.push_back(Value::Str(rng->Pick(pool) + std::string(16, '.')));
    rows.push_back(std::move(r));
  }
  return std::make_shared<VectorRelation>(
      std::vector<std::string>{"id", "k", "g", "d", "s"}, std::move(rows));
}

/// dim(k, label, w): join partner with duplicated and cross-type keys.
std::shared_ptr<Relation> MakeDim(Rng* rng, size_t n, int64_t key_space) {
  std::vector<Record> rows;
  for (size_t i = 0; i < n; ++i) {
    Record r;
    int64_t k = rng->Uniform(0, key_space - 1);
    r.push_back(rng->Bernoulli(0.25) ? Value::Real(static_cast<double>(k))
                                     : Value::Int(k));
    r.push_back(Value::Str(StrFormat("label-%d", static_cast<int>(k % 10))));
    r.push_back(Value::Int(rng->Uniform(0, 99)));
    rows.push_back(std::move(r));
  }
  return std::make_shared<VectorRelation>(
      std::vector<std::string>{"k", "label", "w"}, std::move(rows));
}

/// Relation wrapper whose Scan fails after `fail_after` rows — forces a
/// mid-query abort while spill files are already on disk.
class FailingRelation : public Relation {
 public:
  FailingRelation(std::shared_ptr<Relation> inner, size_t fail_after)
      : inner_(std::move(inner)), fail_after_(fail_after) {}

  const std::vector<std::string>& columns() const override {
    return inner_->columns();
  }

  Status Scan(const std::function<Status(const Record&)>& fn) const override {
    size_t seen = 0;
    return inner_->Scan([&](const Record& r) {
      if (++seen > fail_after_) return Status::IoError("injected scan fault");
      return fn(r);
    });
  }

 private:
  std::shared_ptr<Relation> inner_;
  size_t fail_after_;
};

std::unique_ptr<MetaQuerySession> MakeSession(
    const std::shared_ptr<Relation>& fact,
    const std::shared_ptr<Relation>& dim, MetaQueryOptions options) {
  auto session = std::make_unique<MetaQuerySession>(options);
  session->Register("fact", fact);
  session->Register("dim", dim);
  return session;
}

/// Counts entries in `dir` (non-recursively); 0 for a missing dir.
size_t DirEntries(const std::string& dir) {
  if (!fs::exists(dir)) return 0;
  size_t n = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++n;
  return n;
}

TEST(MetaQuerySpillTest, BudgetFuzzMatchesUnlimited) {
  Rng rng(20260806);
  auto fact = MakeFact(&rng, 1500, 12);
  auto dim = MakeDim(&rng, 300, 12);

  MetaQueryOptions unlimited;
  unlimited.num_threads = 2;
  std::unique_ptr<MetaQuerySession> baseline = MakeSession(fact, dim, unlimited);

  std::vector<std::string> shapes = {
      "SELECT id, d, s FROM fact WHERE %s ORDER BY d DESC, id",
      "SELECT * FROM fact WHERE %s ORDER BY id LIMIT 100",
      "SELECT g, COUNT(*) AS n, SUM(d) AS sd, MIN(d) AS lo, MAX(d) AS hi, "
      "AVG(d) AS mean FROM fact WHERE %s GROUP BY g ORDER BY n DESC",
      "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.k = dim.k "
      "WHERE %s ORDER BY fact.id, dim.w LIMIT 500",
      "SELECT label, COUNT(*) AS n, SUM(w) AS sw, AVG(d) AS mean FROM fact "
      "JOIN dim ON fact.k = dim.k WHERE %s GROUP BY label ORDER BY label",
      "SELECT COUNT(*) AS n, SUM(d) AS sd FROM fact WHERE %s",
  };
  std::vector<std::string> preds = {"g <> 3",      "d > -20", "id >= 40",
                                    "g IS NOT NULL", "d <= 35", "id + g > 9"};

  for (int trial = 0; trial < 18; ++trial) {
    std::string query = StrFormat(rng.Pick(shapes).c_str(),
                                  rng.Pick(preds).c_str());
    // Log-uniform random budget: from "everything spills" to "nothing
    // spills".
    size_t budget = size_t{256} << rng.Uniform(0, 13);
    auto expected = baseline->Query(query);
    ASSERT_TRUE(expected.ok()) << query << ": "
                               << expected.status().ToString();

    MetaQueryOptions options;
    options.num_threads = rng.Bernoulli(0.5) ? 1 : 4;
    options.batch_rows = rng.Bernoulli(0.5) ? 64 : 1024;
    options.memory_budget_bytes = budget;
    std::unique_ptr<MetaQuerySession> spilled = MakeSession(fact, dim, options);
    auto actual = spilled->Query(query);
    ASSERT_TRUE(actual.ok()) << query << ": " << actual.status().ToString();
    ExpectSameTable(*expected, *actual,
                    StrFormat("[budget=%zu threads=%zu batch=%zu] %s", budget,
                              options.num_threads, options.batch_rows,
                              query.c_str()));
  }
}

TEST(MetaQuerySpillTest, JoinAndAggregationEightTimesOverBudget) {
  // The acceptance shape: relation footprint >= 8x the budget, joined and
  // aggregated. 4 KB against ~2000 padded rows is a ~100x ratio.
  Rng rng(7);
  auto fact = MakeFact(&rng, 2000, 10);
  auto dim = MakeDim(&rng, 400, 10);
  const std::string query =
      "SELECT label, COUNT(*) AS n, SUM(w) AS sw, MIN(d) AS lo "
      "FROM fact JOIN dim ON fact.k = dim.k "
      "GROUP BY label ORDER BY label";

  MetaQueryOptions unlimited;
  std::unique_ptr<MetaQuerySession> baseline = MakeSession(fact, dim, unlimited);
  auto expected = baseline->Query(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (size_t threads : {1u, 8u}) {
    MetaQueryOptions options;
    options.num_threads = threads;
    options.memory_budget_bytes = 4096;
    std::unique_ptr<MetaQuerySession> spilled = MakeSession(fact, dim, options);
    auto actual = spilled->Query(query);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ExpectSameTable(*expected, *actual,
                    StrFormat("threads=%zu", threads));
    EXPECT_TRUE(spilled->last_spill_stats().spilled());
    EXPECT_GT(spilled->last_spill_stats().bytes_written, 4096u);
  }
}

TEST(MetaQuerySpillTest, SkewedJoinKeyCannotBeSplit) {
  // Every row shares one join key, so re-partitioning can never shrink a
  // partition: the engine must take the documented over-budget escape
  // hatch and still produce exact results (quadratic output, LIMITed).
  std::vector<Record> fact_rows;
  std::vector<Record> dim_rows;
  for (int i = 0; i < 300; ++i) {
    fact_rows.push_back({Value::Int(i), Value::Int(1), Value::Int(i % 5),
                         Value::Real(0.5 * i), Value::Str("padpadpadpad")});
    dim_rows.push_back({Value::Int(1), Value::Str("only"), Value::Int(i)});
  }
  auto fact = std::make_shared<VectorRelation>(
      std::vector<std::string>{"id", "k", "g", "d", "s"},
      std::move(fact_rows));
  auto dim = std::make_shared<VectorRelation>(
      std::vector<std::string>{"k", "label", "w"}, std::move(dim_rows));
  const std::string query =
      "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.k = dim.k "
      "ORDER BY fact.id, dim.w LIMIT 1000";

  std::unique_ptr<MetaQuerySession> baseline = MakeSession(fact, dim, {});
  auto expected = baseline->Query(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  MetaQueryOptions options;
  options.memory_budget_bytes = 2048;
  std::unique_ptr<MetaQuerySession> spilled = MakeSession(fact, dim, options);
  auto actual = spilled->Query(query);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ExpectSameTable(*expected, *actual, "skewed join");
}

TEST(MetaQuerySpillTest, SingleGroupAggregationOverBudget) {
  // One group over a large input: the group table can never split, but the
  // per-batch partials must still fold in batch order for exact doubles.
  Rng rng(11);
  auto fact = MakeFact(&rng, 3000, 5);
  auto dim = MakeDim(&rng, 10, 5);
  const std::string query =
      "SELECT COUNT(*) AS n, SUM(d) AS sd, AVG(d) AS mean, MIN(id) AS lo "
      "FROM fact";

  std::unique_ptr<MetaQuerySession> baseline = MakeSession(fact, dim, {});
  auto expected = baseline->Query(query);
  ASSERT_TRUE(expected.ok());

  MetaQueryOptions options;
  options.memory_budget_bytes = 1024;
  options.batch_rows = 64;
  std::unique_ptr<MetaQuerySession> spilled = MakeSession(fact, dim, options);
  auto actual = spilled->Query(query);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ExpectSameTable(*expected, *actual, "single group");
}

TEST(MetaQuerySpillTest, SpillStatsReporting) {
  Rng rng(13);
  auto fact = MakeFact(&rng, 800, 8);
  auto dim = MakeDim(&rng, 100, 8);

  MetaQueryOptions options;
  options.memory_budget_bytes = 4096;
  std::unique_ptr<MetaQuerySession> session = MakeSession(fact, dim, options);
  ASSERT_TRUE(session->Query("SELECT id, d FROM fact ORDER BY d").ok());
  EXPECT_TRUE(session->last_spill_stats().spilled());

  // A generous budget must not touch disk at all...
  options.memory_budget_bytes = size_t{64} << 20;
  session->set_options(options);
  ASSERT_TRUE(session->Query("SELECT id, d FROM fact ORDER BY d").ok());
  EXPECT_FALSE(session->last_spill_stats().spilled());
  EXPECT_EQ(session->last_spill_stats().files_created, 0u);

  // ...and the in-memory engine always reports zeros.
  options.memory_budget_bytes = 0;
  session->set_options(options);
  ASSERT_TRUE(session->Query("SELECT id, d FROM fact ORDER BY d").ok());
  EXPECT_FALSE(session->last_spill_stats().spilled());
}

TEST(MetaQuerySpillTest, SpillPolicyRoutesEngineByWorkingSet) {
  Rng rng(19);
  auto fact = MakeFact(&rng, 800, 8);
  auto dim = MakeDim(&rng, 100, 8);
  const std::string query = "SELECT id, d FROM fact ORDER BY d";

  // kAlways (the default) preserves the pre-policy contract: any budget
  // routes out-of-core.
  MetaQueryOptions options;
  options.memory_budget_bytes = size_t{64} << 20;
  std::unique_ptr<MetaQuerySession> session = MakeSession(fact, dim, options);
  ASSERT_TRUE(session->Query(query).ok());
  EXPECT_STREQ(session->last_engine(), "out-of-core");

  // kNever pins the in-memory engine even under a tight budget.
  options.memory_budget_bytes = 4096;
  options.spill_policy = SpillPolicy::kNever;
  session->set_options(options);
  ASSERT_TRUE(session->Query(query).ok());
  EXPECT_STREQ(session->last_engine(), "batched");

  // kAuto compares the estimated working set against the budget: the same
  // query spills under 4 KB and stays in memory under 64 MB.
  options.spill_policy = SpillPolicy::kAuto;
  session->set_options(options);
  ASSERT_TRUE(session->Query(query).ok());
  EXPECT_STREQ(session->last_engine(), "out-of-core");
  EXPECT_TRUE(session->last_spill_stats().spilled());

  options.memory_budget_bytes = size_t{64} << 20;
  session->set_options(options);
  ASSERT_TRUE(session->Query(query).ok());
  EXPECT_STREQ(session->last_engine(), "batched");

  // A join under kAuto sums both inputs' estimates.
  options.memory_budget_bytes = 4096;
  session->set_options(options);
  ASSERT_TRUE(
      session->Query("SELECT fact.id, dim.w FROM fact JOIN dim "
                     "ON fact.k = dim.k ORDER BY fact.id, dim.w LIMIT 10")
          .ok());
  EXPECT_STREQ(session->last_engine(), "out-of-core");

  // Unknown relations fall through to the executor's error path with the
  // conservative (spill) choice — never a crash.
  EXPECT_FALSE(session->Query("SELECT * FROM missing").ok());
}

TEST(MetaQuerySpillTest, SpillDirEmptyAfterSuccess) {
  Rng rng(17);
  auto fact = MakeFact(&rng, 1000, 8);
  auto dim = MakeDim(&rng, 200, 8);
  std::string spill_root =
      (fs::path(::testing::TempDir()) / "spill_success").string();

  MetaQueryOptions options;
  options.memory_budget_bytes = 4096;
  options.spill_dir = spill_root;
  std::unique_ptr<MetaQuerySession> session = MakeSession(fact, dim, options);
  auto result = session->Query(
      "SELECT label, COUNT(*) AS n FROM fact JOIN dim ON fact.k = dim.k "
      "GROUP BY label ORDER BY n DESC, label");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(session->last_spill_stats().spilled());
  EXPECT_EQ(DirEntries(spill_root), 0u)
      << "spill files survived a successful query";
}

TEST(MetaQuerySpillTest, SpillDirEmptyAfterMidQueryFailure) {
  Rng rng(19);
  auto fact = MakeFact(&rng, 1200, 8);
  auto dim = MakeDim(&rng, 200, 8);
  // The join's left side fails late in its scan: by then the right side
  // has overflowed into partition files and the left scatter has flushed
  // blocks of its own, so abort-path cleanup is really exercised.
  auto failing_fact = std::make_shared<FailingRelation>(fact, 1000);
  std::string spill_root =
      (fs::path(::testing::TempDir()) / "spill_failure").string();

  MetaQueryOptions options;
  options.memory_budget_bytes = 2048;
  options.spill_dir = spill_root;
  MetaQuerySession session(options);
  session.Register("fact", failing_fact);
  session.Register("dim", dim);
  auto result = session.Query(
      "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.k = dim.k");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(session.last_spill_stats().spilled())
      << "test setup: the query was expected to spill before failing";
  EXPECT_EQ(DirEntries(spill_root), 0u)
      << "spill files survived an aborted query";
}

TEST(MetaQuerySpillTest, ErrorParityWithInMemoryEngine) {
  Rng rng(23);
  auto fact = MakeFact(&rng, 600, 8);
  auto dim = MakeDim(&rng, 100, 8);
  std::vector<std::string> bad_queries = {
      "SELECT id FROM fact ORDER BY nosuch",
      "SELECT nope, COUNT(*) AS n FROM fact GROUP BY nope",
      "SELECT fact.id FROM fact JOIN dim ON fact.zz = dim.qq",
      "SELECT id FROM missing_table",
  };
  std::unique_ptr<MetaQuerySession> baseline = MakeSession(fact, dim, {});
  MetaQueryOptions options;
  options.memory_budget_bytes = 4096;
  std::unique_ptr<MetaQuerySession> spilled = MakeSession(fact, dim, options);
  for (const std::string& query : bad_queries) {
    auto expected = baseline->Query(query);
    auto actual = spilled->Query(query);
    ASSERT_FALSE(expected.ok()) << query;
    ASSERT_FALSE(actual.ok()) << query;
    EXPECT_EQ(expected.status().ToString(), actual.status().ToString())
        << query;
  }
}

}  // namespace
}  // namespace dbfa
