// DBStorageAuditor tests: byte-level tampering detection and the
// sorted-vs-naive matcher equivalence.
#include <gtest/gtest.h>

#include "auditor/storage_auditor.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const Database& db) {
  CarverConfig config;
  config.params = GetDialect(db.params().dialect).value();
  return config;
}

std::unique_ptr<Database> FreshDbWithAccounts(int rows,
                                              const std::string& dialect =
                                                  "postgres_like") {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 17);
  EXPECT_TRUE(workload.Setup(rows).ok());
  return std::move(db).value();
}

RowPointer FindRow(Database* db, int64_t id) {
  RowPointer out{};
  EXPECT_TRUE(db->heap("Accounts")
                  ->Scan([&](RowPointer ptr, const Record& rec) {
                    if (rec[0] == Value::Int(id)) out = ptr;
                    return Status::Ok();
                  })
                  .ok());
  return out;
}

class AuditorDialectTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AuditorDialectTest, CleanDatabasePassesAudit) {
  auto db = FreshDbWithAccounts(150, GetParam());
  // Legitimate deletes leave residue that must NOT be flagged.
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id <= 20").ok());
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  StorageAuditor auditor(ConfigFor(*db));
  auto report = auditor.Audit(*image);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean()) << report->ToString();
  EXPECT_GT(report->records_checked, 0u);
  EXPECT_GT(report->pointers_checked, 0u);
}

TEST_P(AuditorDialectTest, DetectsAllThreeTamperKinds) {
  auto db = FreshDbWithAccounts(150, GetParam());
  // 1. Overwrite Id 30's primary key in place (value mismatch).
  RowPointer victim = FindRow(db.get(), 30);
  ASSERT_TRUE(TamperOverwriteField(db.get(), "Accounts", victim, "Id",
                                   Value::Int(999930))
                  .ok());
  // 2. Smuggle a record in without index entries (extraneous).
  ASSERT_TRUE(TamperInsertRecord(db.get(), "Accounts",
                                 {Value::Int(4444), Value::Str("Ghost"),
                                  Value::Str("Nowhere"), Value::Real(0.0)})
                  .ok());
  // 3. Erase Id 40 at byte level (dangling pointer).
  ASSERT_TRUE(
      TamperEraseRecord(db.get(), "Accounts", FindRow(db.get(), 40)).ok());

  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  StorageAuditor auditor(ConfigFor(*db));
  auto report = auditor.Audit(*image);
  ASSERT_TRUE(report.ok());
  bool mismatch = false;
  bool extraneous = false;
  bool dangling = false;
  for (const TamperFinding& f : report->findings) {
    switch (f.kind) {
      case TamperFinding::Kind::kValueMismatch:
        // The in-place overwrite: index key 30 vs record key 999930.
        if (!f.index_keys.empty() && f.index_keys[0] == Value::Int(30)) {
          mismatch = true;
        }
        break;
      case TamperFinding::Kind::kExtraneousRecord:
        if (!f.record_values.empty() &&
            f.record_values[0] == Value::Int(4444)) {
          extraneous = true;
        }
        break;
      case TamperFinding::Kind::kDanglingPointer:
        if (!f.index_keys.empty() && f.index_keys[0] == Value::Int(40)) {
          dangling = true;
        }
        break;
    }
  }
  EXPECT_TRUE(mismatch) << report->ToString();
  EXPECT_TRUE(extraneous) << report->ToString();
  EXPECT_TRUE(dangling) << report->ToString();
  // The overwritten record also has no matching entry at key 999930; no
  // clean finding should reference untampered rows.
  for (const TamperFinding& f : report->findings) {
    if (f.kind == TamperFinding::Kind::kExtraneousRecord) {
      EXPECT_TRUE(f.record_values[0] == Value::Int(4444) ||
                  f.record_values[0] == Value::Int(999930))
          << f.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, AuditorDialectTest,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(AuditorTest, SortedAndNaiveMatchersAgree) {
  auto db = FreshDbWithAccounts(200);
  ASSERT_TRUE(TamperInsertRecord(db.get(), "Accounts",
                                 {Value::Int(5555), Value::Str("Ghost"),
                                  Value::Str("X"), Value::Real(1.0)})
                  .ok());
  ASSERT_TRUE(
      TamperEraseRecord(db.get(), "Accounts", FindRow(db.get(), 60)).ok());
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());

  StorageAuditor::Options naive_options;
  naive_options.sorted_matching = false;
  StorageAuditor sorted(ConfigFor(*db));
  StorageAuditor naive(ConfigFor(*db), naive_options);
  auto r1 = sorted.Audit(*image);
  auto r2 = naive.Audit(*image);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Same finding multiset (order may differ).
  std::multiset<std::string> s1;
  std::multiset<std::string> s2;
  for (const auto& f : r1->findings) s1.insert(f.ToString());
  for (const auto& f : r2->findings) s2.insert(f.ToString());
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(s1.empty());
}

TEST(AuditorTest, IndexStructureTamperingDetected) {
  auto db = FreshDbWithAccounts(400);
  // Corrupt the PK index: swap two entries' order inside a leaf by
  // overwriting a key byte at storage level.
  const TableInfo* info = db->catalog().Find("Accounts");
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->indexes.size(), 1u);
  uint32_t index_object = info->indexes[0].object_id;
  ASSERT_TRUE(db->pager().pool().FlushAll().ok());
  StorageFile* file = db->pager().file(index_object);
  ASSERT_NE(file, nullptr);
  const PageFormatter& fmt = db->pager().fmt();
  bool corrupted = false;
  for (uint32_t page_id = 1; page_id <= file->page_count() && !corrupted;
       ++page_id) {
    uint8_t* page = file->PageData(page_id);
    if (fmt.TypeOf(page) != PageType::kIndexLeaf) continue;
    if (fmt.RecordCount(page) < 4) continue;
    // Rewrite slot 2's entry with a huge key so in-node order breaks.
    auto slot = fmt.GetSlot(page, 2);
    ASSERT_TRUE(slot.has_value());
    auto entry = fmt.ParseIndexEntryAt(ByteView(page, fmt.page_size()),
                                       slot->offset);
    ASSERT_TRUE(entry.ok());
    Bytes forged = fmt.EncodeLeafEntry({Value::Int(1)}, entry->pointer);
    // Only overwrite if sizes match (same key width).
    if (forged.size() == entry->length && fmt.RecordCount(page) > 3) {
      std::memcpy(page + slot->offset, forged.data(), forged.size());
      fmt.UpdateChecksum(page);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  ASSERT_TRUE(db->pager().pool().Clear().ok());

  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  StorageAuditor auditor(ConfigFor(*db));
  auto report = auditor.Audit(*image);
  ASSERT_TRUE(report.ok());
  bool order_issue = false;
  for (const BTreeIssue& issue : report->index_issues) {
    if (issue.what.find("out of order") != std::string::npos) {
      order_issue = true;
    }
  }
  EXPECT_TRUE(order_issue) << report->ToString();
}

TEST(AuditorTest, ChecksumFailureReportedAsIndexIssue) {
  auto db = FreshDbWithAccounts(200);
  const TableInfo* info = db->catalog().Find("Accounts");
  uint32_t index_object = info->indexes[0].object_id;
  ASSERT_TRUE(db->pager().pool().FlushAll().ok());
  StorageFile* file = db->pager().file(index_object);
  // Careless attacker: modify an index page without fixing the checksum.
  file->PageData(1)[db->params().header_size + 3] += 1;
  ASSERT_TRUE(db->pager().pool().Clear().ok());
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  StorageAuditor auditor(ConfigFor(*db));
  auto report = auditor.Audit(*image);
  ASSERT_TRUE(report.ok());
  bool checksum_issue = false;
  for (const BTreeIssue& issue : report->index_issues) {
    if (issue.what.find("checksum") != std::string::npos) {
      checksum_issue = true;
    }
  }
  EXPECT_TRUE(checksum_issue) << report->ToString();
}

}  // namespace
}  // namespace dbfa
