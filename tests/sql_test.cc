#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/token.h"

namespace dbfa::sql {
namespace {

// ---- tokenizer -----------------------------------------------------------

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE x <= 10.5 AND y <> 'o''k'");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> texts;
  for (const Token& t : *tokens) texts.push_back(t.text);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  // Find the <= symbol and the escaped string.
  bool saw_le = false;
  bool saw_str = false;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kSymbol && t.text == "<=") saw_le = true;
    if (t.type == TokenType::kString && t.text == "o'k") saw_str = true;
  }
  EXPECT_TRUE(saw_le);
  EXPECT_TRUE(saw_str);
}

TEST(TokenizerTest, NumbersAndNegation) {
  auto tokens = Tokenize("42 3.5 1e3 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.5);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 1000.0);
}

TEST(TokenizerTest, NotEqualsNormalized) {
  auto tokens = Tokenize("a != b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
}

TEST(TokenizerTest, RejectsUnterminatedStringAndBadChars) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

// ---- expressions -----------------------------------------------------------

class SingleRowBinding : public ColumnBinding {
 public:
  std::optional<Value> Lookup(std::string_view name) const override {
    if (name == "name" || name == "c.name") return Value::Str("Christine");
    if (name == "city") return Value::Str("Chicago");
    if (name == "age") return Value::Int(34);
    if (name == "score") return Value::Real(2.5);
    if (name == "missing_val") return Value::Null();
    return std::nullopt;
  }
};

bool Holds(const std::string& text) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << text << ": " << e.status().ToString();
  if (!e.ok()) return false;
  SingleRowBinding binding;
  auto r = EvalPredicate(**e, binding);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() && *r;
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(Holds("age = 34"));
  EXPECT_TRUE(Holds("age <> 35"));
  EXPECT_TRUE(Holds("age < 35"));
  EXPECT_TRUE(Holds("age >= 34"));
  EXPECT_FALSE(Holds("age > 34"));
  EXPECT_TRUE(Holds("name = 'Christine'"));
  EXPECT_TRUE(Holds("score = 2.5"));
  EXPECT_TRUE(Holds("age = 34.0")) << "cross numeric comparison";
}

TEST(ExprTest, BooleanConnectives) {
  EXPECT_TRUE(Holds("age = 34 AND city = 'Chicago'"));
  EXPECT_FALSE(Holds("age = 34 AND city = 'Boston'"));
  EXPECT_TRUE(Holds("age = 0 OR city = 'Chicago'"));
  EXPECT_TRUE(Holds("NOT age = 0"));
  EXPECT_TRUE(Holds("age = 1 OR age = 2 OR age = 34"));
  EXPECT_TRUE(Holds("(age = 34 OR age = 1) AND NOT city = 'X'"));
}

TEST(ExprTest, LikeAndBetweenAndIn) {
  EXPECT_TRUE(Holds("name LIKE 'Chris%'"));
  EXPECT_FALSE(Holds("name NOT LIKE 'Chris%'"));
  EXPECT_TRUE(Holds("age BETWEEN 30 AND 40"));
  EXPECT_FALSE(Holds("age BETWEEN 40 AND 50"));
  EXPECT_TRUE(Holds("age NOT BETWEEN 40 AND 50"));
  EXPECT_TRUE(Holds("age IN (1, 34, 99)"));
  EXPECT_TRUE(Holds("age NOT IN (1, 2)"));
  EXPECT_TRUE(Holds("city IN ('Chicago', 'NY')"));
}

TEST(ExprTest, NullSemantics) {
  EXPECT_FALSE(Holds("missing_val = 5")) << "NULL comparison is not true";
  EXPECT_FALSE(Holds("missing_val <> 5")) << "NULL comparison is not true";
  EXPECT_TRUE(Holds("missing_val IS NULL"));
  EXPECT_FALSE(Holds("missing_val IS NOT NULL"));
  EXPECT_TRUE(Holds("age IS NOT NULL"));
}

TEST(ExprTest, ArithmeticAndFunctions) {
  EXPECT_TRUE(Holds("age * 2 = 68"));
  EXPECT_TRUE(Holds("age + 1 - 5 = 30"));
  EXPECT_TRUE(Holds("age / 2 = 17.0"));
  EXPECT_TRUE(Holds("LENGTH(name) = 9"));
  EXPECT_TRUE(Holds("LENGTH(city) > 6"));
  EXPECT_TRUE(Holds("ABS(0 - age) = 34"));
  EXPECT_TRUE(Holds("-age = -34"));
}

TEST(ExprTest, QualifiedColumn) { EXPECT_TRUE(Holds("c.name LIKE 'C%'")); }

TEST(ExprTest, UnknownColumnIsError) {
  auto e = ParseExpression("nope = 1");
  ASSERT_TRUE(e.ok());
  SingleRowBinding binding;
  EXPECT_FALSE(EvalPredicate(**e, binding).ok());
}

TEST(ExprTest, ToSqlRoundTrip) {
  for (const char* text :
       {"((age = 34) AND (name LIKE 'C%'))", "(LENGTH(name) > 10)",
        "((a + (b * 2)) >= 7)", "(x IS NOT NULL)"}) {
    auto e = ParseExpression(text);
    ASSERT_TRUE(e.ok()) << text;
    std::string rendered = (*e)->ToSql();
    auto reparsed = ParseExpression(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ((*reparsed)->ToSql(), rendered);
  }
}

TEST(ExprTest, CollectColumns) {
  auto e = ParseExpression("a = 1 AND b LIKE 'x%' OR LENGTH(c) < d");
  ASSERT_TRUE(e.ok());
  std::vector<std::string> cols;
  CollectColumns(**e, &cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b", "c", "d"}));
}

// ---- statements ----------------------------------------------------------------

TEST(ParserTest, CreateTableFull) {
  auto stmt = ParseStatement(
      "CREATE TABLE Lineorder (lo_orderkey INT NOT NULL, lo_shipmode "
      "VARCHAR(10), lo_revenue DOUBLE, PRIMARY KEY (lo_orderkey), "
      "FOREIGN KEY (lo_orderkey) REFERENCES Orders (o_id))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& create = std::get<CreateTableStmt>(*stmt);
  EXPECT_EQ(create.schema.name, "Lineorder");
  ASSERT_EQ(create.schema.columns.size(), 3u);
  EXPECT_FALSE(create.schema.columns[0].nullable);
  EXPECT_EQ(create.schema.columns[1].max_length, 10u);
  EXPECT_EQ(create.schema.primary_key,
            std::vector<std::string>{"lo_orderkey"});
  ASSERT_EQ(create.schema.foreign_keys.size(), 1u);
  EXPECT_EQ(create.schema.foreign_keys[0].ref_table, "Orders");
}

TEST(ParserTest, CreateIndex) {
  auto stmt = ParseStatement("CREATE INDEX idx_name ON Customer (Name, City)");
  ASSERT_TRUE(stmt.ok());
  const auto& ci = std::get<CreateIndexStmt>(*stmt);
  EXPECT_EQ(ci.index_name, "idx_name");
  EXPECT_EQ(ci.table, "Customer");
  EXPECT_EQ(ci.columns, (std::vector<std::string>{"Name", "City"}));
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a', NULL, 2.5), (2, 'b', 'x', -1)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& ins = std::get<InsertStmt>(*stmt);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[0][0], Value::Int(1));
  EXPECT_TRUE(ins.rows[0][2].is_null());
  EXPECT_EQ(ins.rows[1][3], Value::Int(-1));
}

TEST(ParserTest, UpdateWithWhere) {
  auto stmt =
      ParseStatement("UPDATE Product SET Price = 99, Name = 'x' WHERE PID = 7");
  ASSERT_TRUE(stmt.ok());
  const auto& up = std::get<UpdateStmt>(*stmt);
  ASSERT_EQ(up.assignments.size(), 2u);
  EXPECT_EQ(up.assignments[0].first, "Price");
  EXPECT_EQ(up.assignments[0].second, Value::Int(99));
  ASSERT_NE(up.where, nullptr);
}

TEST(ParserTest, DeleteVariants) {
  auto with_where =
      ParseStatement("DELETE FROM Customer WHERE Name LIKE 'Chris%'");
  ASSERT_TRUE(with_where.ok());
  EXPECT_NE(std::get<DeleteStmt>(*with_where).where, nullptr);
  auto without = ParseStatement("DELETE FROM Customer");
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(std::get<DeleteStmt>(*without).where, nullptr);
}

TEST(ParserTest, SelectWithJoinGroupOrderLimit) {
  auto stmt = ParseStatement(
      "SELECT d_year, SUM(lo_revenue * lo_discount) AS revenue "
      "FROM lineorder AS l JOIN date AS d ON l.lo_orderdate = d.d_datekey "
      "WHERE lo_quantity < 25 GROUP BY d_year ORDER BY revenue DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<SelectStmt>(*stmt);
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(sel.items[1].alias, "revenue");
  EXPECT_EQ(sel.from.alias, "l");
  ASSERT_EQ(sel.joins.size(), 1u);
  EXPECT_EQ(sel.joins[0].left_column, "l.lo_orderdate");
  EXPECT_EQ(sel.group_by, std::vector<std::string>{"d_year"});
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_EQ(sel.limit, 5);
  EXPECT_TRUE(sel.HasAggregates());
}

TEST(ParserTest, SelectStarAndCountStar) {
  auto star = ParseStatement("SELECT * FROM t WHERE RowStatus = 'DELETED'");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(std::get<SelectStmt>(*star).items[0].star);
  auto count = ParseStatement("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<SelectStmt>(*count).items[0].agg, AggFunc::kCount);
}

TEST(ParserTest, VacuumAndDrop) {
  ASSERT_TRUE(ParseStatement("VACUUM t").ok());
  ASSERT_TRUE(ParseStatement("DROP TABLE t;").ok());
}

TEST(ParserTest, StatementToSqlRoundTrips) {
  for (const char* text : {
           "DELETE FROM Customer WHERE (City = 'Chicago')",
           "INSERT INTO t VALUES (1, 'x', NULL)",
           "UPDATE t SET a = 1 WHERE (b > 2)",
           "SELECT * FROM t",
           "DROP TABLE t",
           "VACUUM t",
       }) {
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    std::string sql = StatementToSql(*stmt);
    auto reparsed = ParseStatement(sql);
    ASSERT_TRUE(reparsed.ok()) << sql;
    EXPECT_EQ(StatementToSql(*reparsed), sql);
  }
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("DELETE Customer").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t (1)").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t ()").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra garbage tokens").ok());
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("UPDATE t SET").ok());
}

TEST(ParserTest, StatementKindNames) {
  EXPECT_STREQ(StatementKind(*ParseStatement("SELECT * FROM t")), "SELECT");
  EXPECT_STREQ(StatementKind(*ParseStatement("DELETE FROM t")), "DELETE");
  EXPECT_STREQ(StatementKind(*ParseStatement("VACUUM t")), "VACUUM");
}

}  // namespace
}  // namespace dbfa::sql
