// Carver hardening: hostile/degenerate inputs and option behaviours.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  return config;
}

std::unique_ptr<Database> SmallDb(const std::string& dialect) {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", 3);
  EXPECT_TRUE(workload.Setup(120).ok());
  EXPECT_TRUE(
      db->ExecuteSql("DELETE FROM Accounts WHERE Id <= 20").ok());
  return db;
}

TEST(CarverHardeningTest, UnalignedPagesFoundWithByteScan) {
  auto db = SmallDb("sqlite_like");
  Bytes image = db->SnapshotDisk().value();
  // Prefix with 100 bytes (not sector aligned) — default 512-step misses
  // everything, exhaustive scan_step=1 recovers it all.
  Bytes shifted(100, 0xEE);
  shifted.insert(shifted.end(), image.begin(), image.end());

  Carver default_carver(ConfigFor("sqlite_like"));
  auto missed = default_carver.Carve(shifted);
  ASSERT_TRUE(missed.ok());
  EXPECT_TRUE(missed->pages.empty());

  CarveOptions exhaustive;
  exhaustive.scan_step = 1;
  Carver byte_carver(ConfigFor("sqlite_like"), exhaustive);
  auto found = byte_carver.Carve(shifted);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->pages.size(), image.size() / 4096);
  EXPECT_EQ(found->RecordsForTable("Accounts", RowStatus::kDeleted).size(),
            20u);
}

TEST(CarverHardeningTest, TruncatedTrailingPageIsSkippedGracefully) {
  auto db = SmallDb("postgres_like");
  Bytes image = db->SnapshotDisk().value();
  size_t full_pages = image.size() / 8192;
  image.resize(image.size() - 1000);  // chop into the last page
  Carver carver(ConfigFor("postgres_like"));
  auto result = carver.Carve(image);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pages.size(), full_pages - 1);
}

TEST(CarverHardeningTest, BadChecksumPagesCanBeExcluded) {
  auto db = SmallDb("mysql_like");
  Bytes image = db->SnapshotDisk().value();
  // Corrupt one byte inside the first Accounts data page's record area.
  Carver carver(ConfigFor("mysql_like"));
  auto pre = carver.Carve(image).value();
  uint32_t accounts = pre.ObjectIdByName("Accounts");
  size_t victim_offset = 0;
  for (const CarvedPage& p : pre.pages) {
    if (p.object_id == accounts && p.type == PageType::kData) {
      victim_offset = p.image_offset;
      break;
    }
  }
  image[victim_offset + 8000] ^= 0x01;

  auto lenient = carver.Carve(image).value();
  size_t bad = 0;
  for (const CarvedPage& p : lenient.pages) {
    if (!p.checksum_ok) ++bad;
  }
  EXPECT_EQ(bad, 1u);

  CarveOptions strict;
  strict.parse_bad_checksum_pages = false;
  Carver strict_carver(ConfigFor("mysql_like"), strict);
  auto excluded = strict_carver.Carve(image).value();
  EXPECT_LT(excluded.records.size(), lenient.records.size())
      << "strict mode must not parse the damaged page's records";
}

TEST(CarverHardeningTest, RawScanFallbackRecoversSlotSmashedRecords) {
  auto db = SmallDb("postgres_like");
  Bytes image = db->SnapshotDisk().value();
  const PageLayoutParams& params = db->params();
  Carver carver(ConfigFor("postgres_like"));
  auto pre = carver.Carve(image).value();
  uint32_t accounts = pre.ObjectIdByName("Accounts");
  // Smash the slot directory (front of the page after the header) of the
  // first Accounts page: slot-referenced parsing dies, raw scan survives.
  size_t page_offset = 0;
  for (const CarvedPage& p : pre.pages) {
    if (p.object_id == accounts && p.type == PageType::kData) {
      page_offset = p.image_offset;
      break;
    }
  }
  for (size_t i = 0; i < 40; ++i) {
    image[page_offset + params.header_size + i] = 0xFF;
  }

  auto with_fallback = carver.Carve(image).value();
  size_t orphans = 0;
  for (const CarvedRecord& r : with_fallback.records) {
    if (r.slot == CarvedRecord::kOrphanSlot) ++orphans;
  }
  EXPECT_GE(orphans, 10u) << "raw scan must recover slotless records";

  CarveOptions no_fallback;
  no_fallback.raw_scan_fallback = false;
  Carver plain(ConfigFor("postgres_like"), no_fallback);
  auto without = plain.Carve(image).value();
  EXPECT_LT(without.records.size(), with_fallback.records.size());
}

TEST(CarverHardeningTest, StaleDuplicatePagesInRamImages) {
  // A memory capture can contain an older version of a page that also
  // exists on disk; both carve independently (the investigator join of
  // Section II-C scenario 2 relies on exactly this).
  auto db = SmallDb("oracle_like");
  Bytes disk = db->SnapshotDisk().value();
  // Image = disk + a duplicated (stale) copy of its first page.
  Bytes image = disk;
  image.insert(image.end(), disk.begin(), disk.begin() + 8192);
  Carver carver(ConfigFor("oracle_like"));
  auto result = carver.Carve(image).value();
  EXPECT_EQ(result.pages.size(), disk.size() / 8192 + 1);
  // Records from the duplicate page appear twice — by design.
  size_t page1_records = 0;
  for (const CarvedRecord& r : result.records) {
    if (r.object_id == 1 && r.page_id == 1) ++page1_records;
  }
  (void)page1_records;  // catalog object; just exercising no-crash paths
}

TEST(CarverHardeningTest, AllZeroAndAllOnesImages) {
  Carver carver(ConfigFor("db2_like"));
  Bytes zeros(64 * 1024, 0x00);
  Bytes ones(64 * 1024, 0xFF);
  auto r1 = carver.Carve(zeros);
  auto r2 = carver.Carve(ones);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->pages.empty());
  EXPECT_TRUE(r2->pages.empty());
}

TEST(CarverHardeningTest, ForeignDialectImageYieldsNothing) {
  auto db = SmallDb("mysql_like");
  Bytes image = db->SnapshotDisk().value();
  // Carving a mysql_like image with a derby_like config finds nothing
  // (different magic), rather than garbage.
  Carver wrong(ConfigFor("derby_like"));
  auto result = wrong.Carve(image).value();
  EXPECT_TRUE(result.pages.empty());
  EXPECT_TRUE(result.records.empty());
}

}  // namespace
}  // namespace dbfa
