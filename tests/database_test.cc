// End-to-end MiniDB tests: DDL/DML semantics, forensic storage behaviours
// (delete marks, update pre-images, catalog remnants), constraint
// enforcement, audit logging, access-path selection, snapshots.
#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "sql/parser.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

TableSchema CustomerSchema() {
  TableSchema s;
  s.name = "Customer";
  s.columns = {{"Id", ColumnType::kInt, 0, false},
               {"Name", ColumnType::kVarchar, 32, true},
               {"City", ColumnType::kVarchar, 24, true}};
  s.primary_key = {"Id"};
  return s;
}

Record Cust(int64_t id, const std::string& name, const std::string& city) {
  return {Value::Int(id), Value::Str(name), Value::Str(city)};
}

std::unique_ptr<Database> OpenDb(const std::string& dialect = "postgres_like") {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

class DatabaseDialectTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatabaseDialectTest, InsertDeleteKeepsForensicResidue) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "Christine", "Chicago")).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(2, "Jane", "Seattle")).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(3, "Jim", "Austin")).ok());

  auto where = sql::ParseExpression("Name = 'Jane'");
  ASSERT_TRUE(where.ok());
  auto deleted = db->Delete("Customer", *where);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 1);

  // Active view: 2 rows.
  int active = 0;
  int residue = 0;
  ASSERT_TRUE(db->heap("Customer")
                  ->ScanRaw([&](RowPointer, const Record& rec, bool del) {
                    if (del) {
                      ++residue;
                      EXPECT_EQ(rec[1], Value::Str("Jane"))
                          << "deleted values must survive in storage";
                    } else {
                      ++active;
                    }
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(active, 2);
  EXPECT_EQ(residue, 1);
}

TEST_P(DatabaseDialectTest, UpdateLeavesPreImage) {
  auto db = OpenDb(GetParam());
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "Joe", "Chicago")).ok());
  auto where = sql::ParseExpression("Id = 1");
  auto n = db->Update("Customer", {{"City", Value::Str("Boston")}}, *where);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  bool saw_old = false;
  bool saw_new = false;
  ASSERT_TRUE(db->heap("Customer")
                  ->ScanRaw([&](RowPointer, const Record& rec, bool del) {
                    if (del && rec[2] == Value::Str("Chicago")) saw_old = true;
                    if (!del && rec[2] == Value::Str("Boston")) saw_new = true;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_TRUE(saw_old) << "old version of an UPDATE must be a deleted record";
  EXPECT_TRUE(saw_new);
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, DatabaseDialectTest,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(DatabaseTest, SelectFullScanAndProjection) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(
        db->Insert("Customer", Cust(i, "N" + std::to_string(i), "C")).ok());
  }
  auto result = db->ExecuteSql("SELECT Name FROM Customer WHERE Id > 7");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->columns, std::vector<std::string>{"Name"});
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST(DatabaseTest, SelectUsesPkIndexForEquality) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 500; ++i) {
    ASSERT_TRUE(db->Insert("Customer", Cust(i, "N", "C")).ok());
  }
  auto result = db->ExecuteSql("SELECT * FROM Customer WHERE Id = 123");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(123));
  EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);

  auto scan = db->ExecuteSql("SELECT * FROM Customer WHERE Name = 'N'");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(db->last_access_path(), AccessPath::kFullScan);
}

TEST(DatabaseTest, SelectRangeViaIndexWithOrderAndLimit) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(db->Insert("Customer", Cust(i, "N", "C")).ok());
  }
  auto result = db->ExecuteSql(
      "SELECT Id FROM Customer WHERE Id BETWEEN 10 AND 50 "
      "ORDER BY Id DESC LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Int(50));
  EXPECT_EQ(result->rows[2][0], Value::Int(48));
}

TEST(DatabaseTest, IndexEntriesSurviveDeleteUntilVacuum) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(db->Insert("Customer", Cust(i, "N", "C")).ok());
  }
  auto where = sql::ParseExpression("Id = 25");
  ASSERT_TRUE(db->Delete("Customer", *where).ok());

  BTree* pk = db->index("Customer", "pk_Customer");
  ASSERT_NE(pk, nullptr);
  auto stale = pk->SearchEqual({Value::Int(25)});
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->size(), 1u) << "index entry must outlive the record";

  // But the SQL surface no longer returns the row.
  auto result = db->ExecuteSql("SELECT * FROM Customer WHERE Id = 25");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());

  ASSERT_TRUE(db->Vacuum("Customer").ok());
  pk = db->index("Customer", "pk_Customer");
  auto after = pk->SearchEqual({Value::Int(25)});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty()) << "vacuum rebuild drops stale entries";
  // Surviving rows still findable through the rebuilt index.
  auto kept = db->ExecuteSql("SELECT * FROM Customer WHERE Id = 26");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->rows.size(), 1u);
}

TEST(DatabaseTest, VacuumErasesDeletedRecords) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(db->Insert("Customer", Cust(i, "N", "C")).ok());
  }
  ASSERT_TRUE(db->Delete("Customer", *sql::ParseExpression("Id <= 15")).ok());
  int residue_before = 0;
  ASSERT_TRUE(db->heap("Customer")
                  ->ScanRaw([&](RowPointer, const Record&, bool del) {
                    if (del) ++residue_before;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(residue_before, 15);
  ASSERT_TRUE(db->Vacuum("Customer").ok());
  int residue_after = 0;
  int active_after = 0;
  ASSERT_TRUE(db->heap("Customer")
                  ->ScanRaw([&](RowPointer, const Record&, bool del) {
                    del ? ++residue_after : ++active_after;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(residue_after, 0) << "vacuum destroys deleted-record evidence";
  EXPECT_EQ(active_after, 15);
}

TEST(DatabaseTest, ConstraintEnforcement) {
  auto db = OpenDb();
  TableSchema city;
  city.name = "City";
  city.columns = {{"Name", ColumnType::kVarchar, 16, false}};
  city.primary_key = {"Name"};
  ASSERT_TRUE(db->CreateTable(city).ok());
  ASSERT_TRUE(db->Insert("City", {Value::Str("Chicago")}).ok());

  TableSchema s = CustomerSchema();
  s.foreign_keys = {{"City", "City", "Name"}};
  ASSERT_TRUE(db->CreateTable(s).ok());

  // Domain constraint: VARCHAR(32) on Name.
  auto too_long = db->Insert(
      "Customer", Cust(1, std::string(40, 'x'), "Chicago"));
  EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);

  // NOT NULL / PK null.
  auto null_pk = db->Insert(
      "Customer", {Value::Null(), Value::Str("A"), Value::Str("Chicago")});
  EXPECT_FALSE(null_pk.ok());

  // FK violation.
  auto bad_fk = db->Insert("Customer", Cust(1, "A", "Atlantis"));
  EXPECT_EQ(bad_fk.status().code(), StatusCode::kInvalidArgument);

  // Happy path, then PK duplicate.
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "A", "Chicago")).ok());
  auto dup = db->Insert("Customer", Cust(1, "B", "Chicago"));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);

  // PK value freed by delete can be reinserted.
  ASSERT_TRUE(db->Delete("Customer", *sql::ParseExpression("Id = 1")).ok());
  EXPECT_TRUE(db->Insert("Customer", Cust(1, "C", "Chicago")).ok());
}

TEST(DatabaseTest, ConstraintsCanBeDisabled) {
  DatabaseOptions options;
  options.enforce_constraints = false;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(CustomerSchema()).ok());
  EXPECT_TRUE((*db)->Insert("Customer",
                            Cust(1, std::string(100, 'x'), "C")).ok());
  EXPECT_TRUE((*db)->Insert("Customer", Cust(1, "dup", "C")).ok());
}

TEST(DatabaseTest, DropTableLeavesDeletedCatalogRecords) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "A", "B")).ok());
  uint32_t table_object = db->catalog().Find("Customer")->object_id;
  ASSERT_TRUE(db->DropTable("Customer").ok());
  EXPECT_EQ(db->catalog().Find("Customer"), nullptr);
  // The table file still exists with its pages (deleted pages artifact).
  EXPECT_NE(db->pager().file(table_object), nullptr);
  EXPECT_GT(db->pager().file(table_object)->page_count(), 0u);
  // A table of the same name can be re-created.
  EXPECT_TRUE(db->CreateTable(CustomerSchema()).ok());
}

TEST(DatabaseTest, AuditLogRecordsSqlAndCanBeDisabled) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "A", "B")).ok());
  size_t logged = db->audit_log().entries().size();
  EXPECT_EQ(logged, 2u);  // CREATE TABLE + INSERT
  EXPECT_NE(db->audit_log().entries()[1].sql.find("INSERT INTO Customer"),
            std::string::npos);

  // The DBDetective attack: disable logging, act, re-enable.
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->Insert("Customer", Cust(2, "Hidden", "X")).ok());
  db->audit_log().SetEnabled(true);
  EXPECT_EQ(db->audit_log().entries().size(), logged)
      << "unlogged activity must leave no log entries";
  // ... but the row exists in storage.
  auto rows = db->ExecuteSql("SELECT * FROM Customer");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);

  // Timestamps are monotone under an untampered clock.
  const auto& entries = db->audit_log().entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].timestamp, entries[i - 1].timestamp);
  }
}

TEST(DatabaseTest, AuditLogRoundTripsThroughText) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "A's", "B|C")).ok());
  std::string text = db->audit_log().ToText();
  auto parsed = AuditLog::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->entries().size(), db->audit_log().entries().size());
  for (size_t i = 0; i < parsed->entries().size(); ++i) {
    EXPECT_EQ(parsed->entries()[i].sql, db->audit_log().entries()[i].sql);
    // Every logged statement must re-parse.
    EXPECT_TRUE(sql::ParseStatement(parsed->entries()[i].sql).ok())
        << parsed->entries()[i].sql;
  }
}

TEST(DatabaseTest, ExecuteSqlFullLifecycle) {
  auto db = OpenDb();
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE T (a INT NOT NULL, b VARCHAR(8), "
                             "PRIMARY KEY (a))")
                  .ok());
  ASSERT_TRUE(db->ExecuteSql("INSERT INTO T VALUES (1, 'x'), (2, 'y')").ok());
  ASSERT_TRUE(db->ExecuteSql("UPDATE T SET b = 'z' WHERE a = 2").ok());
  auto rows = db->ExecuteSql("SELECT b FROM T WHERE a = 2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value::Str("z"));
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM T WHERE a = 1").ok());
  ASSERT_TRUE(db->ExecuteSql("VACUUM T").ok());
  ASSERT_TRUE(db->ExecuteSql("DROP TABLE T").ok());
  EXPECT_FALSE(db->ExecuteSql("SELECT * FROM T").ok());
}

TEST(DatabaseTest, SnapshotsAndCheckpoint) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "SNAPSHOT_ME", "C")).ok());
  auto disk = db->SnapshotDisk();
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk->size() % db->params().page_size, 0u);
  std::string disk_text(disk->begin(), disk->end());
  EXPECT_NE(disk_text.find("SNAPSHOT_ME"), std::string::npos);

  Bytes ram = db->SnapshotRam();
  EXPECT_EQ(ram.size(),
            db->pager().pool().capacity() * db->params().page_size);

  auto files = db->ExportFiles();
  ASSERT_TRUE(files.ok());
  // catalog + Customer heap + pk index.
  ASSERT_EQ(files->size(), 3u);
  EXPECT_EQ((*files)[0].first, "catalog.dbf");
  EXPECT_EQ((*files)[1].first, "Customer.dbf");
  EXPECT_EQ((*files)[2].first, "Customer.pk_Customer.dbf");

  std::string dir = ::testing::TempDir() + "/dbfa_ckpt";
  std::string cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  ASSERT_TRUE(db->Checkpoint(dir).ok());
  auto log = AuditLog::LoadFrom(dir + "/audit.log");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->entries().size(), db->audit_log().entries().size());
}

TEST(DatabaseTest, ManyPagesAndPoolSmallerThanData) {
  DatabaseOptions options;
  options.buffer_pool_pages = 8;  // force constant eviction
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(CustomerSchema()).ok());
  for (int i = 1; i <= 2000; ++i) {
    ASSERT_TRUE(
        (*db)->Insert("Customer", Cust(i, "Name" + std::to_string(i), "City"))
            .ok())
        << i;
  }
  auto rows = (*db)->ExecuteSql("SELECT COUNT(*) FROM Customer");
  EXPECT_FALSE(rows.ok()) << "aggregates live in metaquery";
  auto all = (*db)->ExecuteSql("SELECT * FROM Customer WHERE Id > 1990");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 10u);
  EXPECT_GT((*db)->pager().pool().stats().evictions, 0u);
}

TEST(DatabaseTest, PageReusePolicyControlsEvidenceLifetime) {
  for (double threshold : {0.5, 2.0}) {
    DatabaseOptions options;
    options.page_reuse_threshold = threshold;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(CustomerSchema()).ok());
    // Fill several pages, delete everything, insert again.
    for (int i = 1; i <= 400; ++i) {
      ASSERT_TRUE((*db)->Insert("Customer", Cust(i, "AAAA", "BBBB")).ok());
    }
    ASSERT_TRUE((*db)->Delete("Customer", nullptr).ok());
    for (int i = 1000; i < 1400; ++i) {
      ASSERT_TRUE((*db)->Insert("Customer", Cust(i, "CCCC", "DDDD")).ok());
    }
    auto stats = (*db)->heap("Customer")->Stats();
    if (threshold <= 1.0) {
      EXPECT_GT(stats.reused_pages, 0u) << "reuse enabled";
      EXPECT_LT(stats.deleted_records, 400u)
          << "reuse must overwrite some deleted records";
    } else {
      EXPECT_EQ(stats.reused_pages, 0u) << "reuse disabled";
      EXPECT_EQ(stats.deleted_records, 400u)
          << "all deleted records must persist";
    }
  }
}

TEST(DatabaseTest, LsnsIncreaseWithModificationOrder) {
  auto db = OpenDb();
  ASSERT_TRUE(db->CreateTable(CustomerSchema()).ok());
  uint64_t lsn1 = db->pager().current_lsn();
  ASSERT_TRUE(db->Insert("Customer", Cust(1, "A", "B")).ok());
  uint64_t lsn2 = db->pager().current_lsn();
  EXPECT_GT(lsn2, lsn1);
  ASSERT_TRUE(db->Insert("Customer", Cust(2, "C", "D")).ok());
  EXPECT_GT(db->pager().current_lsn(), lsn2);
}

TEST(DatabaseTest, UnknownDialectRejected) {
  DatabaseOptions options;
  options.dialect = "nope";
  EXPECT_EQ(Database::Open(options).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dbfa
