// Cross-module adversarial scenarios: how the paper's tools compose when
// attacker and investigator both know the playbook.
#include <gtest/gtest.h>

#include "antiforensics/steganography.h"
#include "antiforensics/wiper.h"
#include "auditor/storage_auditor.h"
#include "core/carver.h"
#include "detective/dbdetective.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const Database& db) {
  CarverConfig config;
  config.params = GetDialect(db.params().dialect).value();
  return config;
}

TEST(ScenarioTest, WipingDefeatsDeletedRecordDetection) {
  // Black-hat anti-forensics (Section II-D): the attacker deletes rows
  // unlogged, then runs the wiper. DBDetective's deleted-record evidence
  // is gone — the paper is explicit that anti-forensic tools cut both
  // ways. (The log/row-count mismatch would still show in other channels.)
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 13);
  ASSERT_TRUE(workload.Setup(100).ok());
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 33").ok());
  db->audit_log().SetEnabled(true);

  CarverConfig config = ConfigFor(*db);
  Carver carver(config);
  {
    auto carve = carver.Carve(db->SnapshotDisk().value()).value();
    DbDetective detective(&carve, &db->audit_log());
    EXPECT_EQ(detective.FindUnattributedModifications().value().size(), 1u);
  }
  Wiper wiper(config);
  ASSERT_TRUE(wiper.WipeDatabase(db.get()).ok());
  {
    auto carve = carver.Carve(db->SnapshotDisk().value()).value();
    DbDetective detective(&carve, &db->audit_log());
    EXPECT_TRUE(detective.FindUnattributedModifications().value().empty())
        << "wiping destroys the deleted-record evidence";
  }
}

TEST(ScenarioTest, VacuumEvadesFigure4ButIsItselfLogged) {
  // An attacker can VACUUM to destroy delete residue — but VACUUM goes
  // through the SQL surface, so either it appears in the log (suspicious
  // context for an auditor) or, if run unlogged, the detective's
  // *insert*-side attribution still drifts. Here: unlogged delete +
  // logged vacuum leaves zero unattributed deletes (a documented
  // limitation of the Figure 4 method alone).
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 14);
  ASSERT_TRUE(workload.Setup(100).ok());
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 44").ok());
  db->audit_log().SetEnabled(true);
  ASSERT_TRUE(db->ExecuteSql("VACUUM Accounts").ok());

  CarverConfig config = ConfigFor(*db);
  Carver carver(config);
  auto carve = carver.Carve(db->SnapshotDisk().value()).value();
  DbDetective detective(&carve, &db->audit_log());
  auto findings = detective.FindUnattributedModifications().value();
  EXPECT_TRUE(findings.empty());
  // But the VACUUM is on the record, and the carve shows zero deleted
  // residue immediately after it — itself an anomaly worth reporting.
  EXPECT_EQ(carve.CountRecords(RowStatus::kDeleted), 0u);
  bool vacuum_logged = false;
  for (const AuditEntry& e : db->audit_log().entries()) {
    if (e.sql.find("VACUUM") != std::string::npos) vacuum_logged = true;
  }
  EXPECT_TRUE(vacuum_logged);
}

TEST(ScenarioTest, SmartTamperWithChecksumRepairStillCaughtByAuditor) {
  // The attacker repairs page checksums after editing (fix_checksum=true
  // everywhere in workload/synthetic.h) — checksum verification is clean,
  // yet index/table matching still exposes every edit.
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 15);
  ASSERT_TRUE(workload.Setup(150).ok());
  RowPointer victim{};
  ASSERT_TRUE(db->heap("Accounts")
                  ->Scan([&](RowPointer ptr, const Record& rec) {
                    if (rec[0] == Value::Int(70)) victim = ptr;
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_TRUE(TamperOverwriteField(db.get(), "Accounts", victim, "Id",
                                   Value::Int(707070),
                                   /*fix_checksum=*/true)
                  .ok());
  StorageAuditor auditor(ConfigFor(*db));
  auto report = auditor.Audit(db->SnapshotDisk().value()).value();
  EXPECT_TRUE(report.index_issues.empty())
      << "checksums are clean — the attacker repaired them";
  ASSERT_FALSE(report.findings.empty());
  bool caught = false;
  for (const TamperFinding& f : report.findings) {
    if (f.kind == TamperFinding::Kind::kValueMismatch &&
        !f.index_keys.empty() && f.index_keys[0] == Value::Int(70)) {
      caught = true;
    }
  }
  EXPECT_TRUE(caught) << report.ToString();
}

TEST(ScenarioTest, SteganographyIsInvisibleToDetectiveButNotToAuditor) {
  // A hidden record (byte-level insert, no index entry) triggers the
  // StorageAuditor's extraneous-record check — steganography and tamper
  // detection are the same mechanism viewed from opposite sides.
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 16);
  ASSERT_TRUE(workload.Setup(60).ok());
  CarverConfig config = ConfigFor(*db);
  Steganographer steg(config);
  // A record that satisfies all constraints (quiet steganography: hide in
  // plain sight rather than behind violations).
  ASSERT_TRUE(steg.HideInDatabase(db.get(), "Accounts",
                                  {Value::Int(424242), Value::Str("covert"),
                                   Value::Str("msg"), Value::Real(0.0)})
                  .ok());
  StorageAuditor auditor(config);
  auto report = auditor.Audit(db->SnapshotDisk().value()).value();
  bool found = false;
  for (const TamperFinding& f : report.findings) {
    if (f.kind == TamperFinding::Kind::kExtraneousRecord &&
        !f.record_values.empty() &&
        f.record_values[0] == Value::Int(424242)) {
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "the PK-index gap betrays the hidden record to the auditor";
}

TEST(ScenarioTest, MultiToolInvestigationEndToEnd) {
  // Full pipeline on one incident: unlogged modifications + file tamper,
  // investigated with detective + auditor from the same single carve.
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 17);
  ASSERT_TRUE(workload.Setup(150).ok());
  ASSERT_TRUE(workload.Run(100, OpMix{}, /*logged=*/true).ok());
  // Attack 1: unlogged SQL delete.
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 42").ok());
  db->audit_log().SetEnabled(true);
  // Attack 2: byte-level smuggled record.
  ASSERT_TRUE(TamperInsertRecord(db.get(), "Accounts",
                                 {Value::Int(87001), Value::Str("Ghost"),
                                  Value::Str("X"), Value::Real(0.0)})
                  .ok());

  CarverConfig config = ConfigFor(*db);
  Carver carver(config);
  auto carve = carver.Carve(db->SnapshotDisk().value()).value();

  DbDetective detective(&carve, &db->audit_log());
  auto modifications = detective.FindUnattributedModifications().value();
  StorageAuditor auditor(config);
  auto audit = auditor.AuditCarve(carve).value();

  bool sql_attack_found = false;
  for (const auto& m : modifications) {
    if (m.kind == UnattributedModification::Kind::kDelete &&
        m.values[0] == Value::Int(42)) {
      sql_attack_found = true;
    }
    // The smuggled record also shows as an unattributed insert.
  }
  bool tamper_found = false;
  for (const TamperFinding& f : audit.findings) {
    if (f.kind == TamperFinding::Kind::kExtraneousRecord &&
        f.record_values[0] == Value::Int(87001)) {
      tamper_found = true;
    }
  }
  EXPECT_TRUE(sql_attack_found);
  EXPECT_TRUE(tamper_found);
  // The two tools agree on the smuggled record from different evidence:
  // detective (no logged INSERT) and auditor (no index entry).
  bool smuggled_in_detective = false;
  for (const auto& m : modifications) {
    if (m.kind == UnattributedModification::Kind::kInsert &&
        m.values[0] == Value::Int(87001)) {
      smuggled_in_detective = true;
    }
  }
  EXPECT_TRUE(smuggled_in_detective);
}

}  // namespace
}  // namespace dbfa
