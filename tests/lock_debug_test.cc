// Tests for the DBFA_LOCK_DEBUG runtime lock-order validator
// (common/lock_debug.h) and the Mutex/CondVar bookkeeping that feeds it.
//
// The positive tests (disciplined nesting, TryLock, condition waits) run
// in every build and double as plain Mutex tests. The death tests — rank
// inversion and the seeded AB/BA inversion that must abort with a witness
// cycle — only mean something when the validator is compiled in, so they
// GTEST_SKIP without it. Death tests use the threadsafe style (fork +
// re-exec), which keeps them correct under TSan and keeps the child's
// observed-order graph isolated from the parent process.

#include "common/lock_debug.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace dbfa {
namespace {

#ifdef DBFA_LOCK_DEBUG
constexpr bool kValidatorOn = true;
#else
constexpr bool kValidatorOn = false;
#endif

class LockDebugTest : public testing::Test {
 protected:
  void SetUp() override {
    // Fork + re-exec (rather than plain fork) keeps the death tests
    // correct under TSan and in the presence of other threads.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockDebugTest, ConsistentNestingRuns) {
  // Lock names are per-test-unique: the observed-order graph is keyed by
  // name and lives for the whole process.
  Mutex outer("lockdbg/consistent_outer", 10);
  Mutex inner("lockdbg/consistent_inner", 20);
  int guarded = 0;
  auto nest = [&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock lo(&outer);
      MutexLock li(&inner);
      ++guarded;
    }
  };
  std::thread a(nest);
  std::thread b(nest);
  a.join();
  b.join();
  EXPECT_EQ(guarded, 200);
}

TEST_F(LockDebugTest, HeldDepthTracksTheStack) {
  if (!kValidatorOn) GTEST_SKIP() << "needs -DDBFA_LOCK_DEBUG=ON";
  Mutex outer("lockdbg/depth_outer", 10);
  Mutex inner("lockdbg/depth_inner", 20);
  EXPECT_EQ(lock_debug::HeldDepth(), 0u);
  {
    MutexLock lo(&outer);
    EXPECT_EQ(lock_debug::HeldDepth(), 1u);
    {
      MutexLock li(&inner);
      EXPECT_EQ(lock_debug::HeldDepth(), 2u);
    }
    EXPECT_EQ(lock_debug::HeldDepth(), 1u);
  }
  EXPECT_EQ(lock_debug::HeldDepth(), 0u);
}

TEST_F(LockDebugTest, TryLockAddsNoOrderingConstraint) {
  // A TryLock cannot block, so taking the locks in both orders via
  // TryLock must NOT abort — only blocking acquisitions order the graph.
  Mutex a("lockdbg/try_a", 10);
  Mutex b("lockdbg/try_b", 20);
  {
    MutexLock la(&a);
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
  }
  {
    MutexLock lb(&b);
    ASSERT_TRUE(a.TryLock());
    a.Unlock();
  }
}

TEST_F(LockDebugTest, CondVarWaitKeepsTheStackBalanced) {
  // The wait releases its mutex (validator pops it) and reacquires it on
  // wakeup (validator pushes it back, without re-running the ordering
  // checks). A bookkeeping bug here shows up as a spurious
  // "release of a lock this thread does not hold" abort or a wrong depth.
  Mutex mu("lockdbg/wait", 10);
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.SignalAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    if (kValidatorOn) {
      EXPECT_EQ(lock_debug::HeldDepth(), 1u);
    }
  }
  signaler.join();
  if (kValidatorOn) {
    EXPECT_EQ(lock_debug::HeldDepth(), 0u);
  }
}

TEST_F(LockDebugTest, RankInversionAborts) {
  if (!kValidatorOn) GTEST_SKIP() << "needs -DDBFA_LOCK_DEBUG=ON";
  EXPECT_DEATH(
      {
        Mutex hi("lockdbg/rank_hi", 20);
        Mutex lo("lockdbg/rank_lo", 10);
        MutexLock lh(&hi);
        MutexLock ll(&lo);  // 10 under 20: not strictly increasing
      },
      "rank inversion");
}

TEST_F(LockDebugTest, SeededInversionAbortsWithWitnessCycle) {
  if (!kValidatorOn) GTEST_SKIP() << "needs -DDBFA_LOCK_DEBUG=ON";
  // Unranked (but named) locks dodge the rank check, so this exercises
  // the observed-order graph itself: a -> b is recorded, then b -> a must
  // abort naming both locks and the first-seen witness stack — even
  // though this interleaving never actually deadlocks.
  EXPECT_DEATH(
      {
        Mutex a("lockdbg/seeded_a");
        Mutex b("lockdbg/seeded_b");
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        {
          MutexLock lb(&b);
          MutexLock la(&a);
        }
      },
      "witness cycle(.|\n)*lockdbg/seeded_a(.|\n)*lockdbg/seeded_b");
}

TEST_F(LockDebugTest, RecursiveAcquisitionAborts) {
  if (!kValidatorOn) GTEST_SKIP() << "needs -DDBFA_LOCK_DEBUG=ON";
  EXPECT_DEATH(
      {
        Mutex mu("lockdbg/recursive", 10);
        MutexLock first(&mu);
        MutexLock second(&mu);  // self-deadlock
      },
      "recursive acquisition");
}

}  // namespace
}  // namespace dbfa
