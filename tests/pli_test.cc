// PLI tests: bucket construction, range lookup I/O, clustering factor.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/carver.h"
#include "pli/pli.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

std::unique_ptr<Database> DbWithEvents(int rows, bool clustered,
                                       uint64_t seed = 99) {
  auto db = Database::Open(DatabaseOptions{}).value();
  TableSchema schema;
  schema.name = "Events";
  schema.columns = {{"ts", ColumnType::kInt, 0, false},
                    {"payload", ColumnType::kVarchar, 24, true}};
  EXPECT_TRUE(db->CreateTable(schema).ok());
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    int64_t ts = clustered ? 1000 + i  // ingest order == value order
                           : rng.Uniform(1000, 1000 + rows);
    EXPECT_TRUE(
        db->Insert("Events", {Value::Int(ts), Value::Str("evt")}).ok());
  }
  return db;
}

TEST(PliTest, ClusteredIngestGivesSelectiveLookups) {
  auto db = DbWithEvents(3000, /*clustered=*/true);
  auto pli =
      PhysicalLocationIndex::BuildFromDatabase(db.get(), "Events", "ts", 2);
  ASSERT_TRUE(pli.ok()) << pli.status().ToString();
  EXPECT_GT(pli->buckets().size(), 4u);
  EXPECT_GT(pli->total_pages(), 8u);
  EXPECT_EQ(pli->total_rows(), 3000u);
  EXPECT_DOUBLE_EQ(pli->ClusteringFactor(), 1.0);

  // A narrow range touches a small fraction of pages.
  auto pages = pli->LookupPages(Value::Int(1100), Value::Int(1150));
  EXPECT_GT(pages.size(), 0u);
  EXPECT_LT(pages.size() * 4, pli->total_pages())
      << "PLI must prune most pages on clustered data";
}

TEST(PliTest, RandomIngestDegradesToFullScan) {
  auto db = DbWithEvents(3000, /*clustered=*/false);
  auto pli =
      PhysicalLocationIndex::BuildFromDatabase(db.get(), "Events", "ts", 2);
  ASSERT_TRUE(pli.ok());
  EXPECT_LT(pli->ClusteringFactor(), 0.85);
  auto pages = pli->LookupPages(Value::Int(1100), Value::Int(1150));
  // Random placement: nearly every bucket overlaps any range.
  EXPECT_GT(pages.size() * 2, pli->total_pages());
}

TEST(PliTest, LookupIsSound) {
  // Every row in the range must live on a returned page.
  auto db = DbWithEvents(2000, /*clustered=*/true);
  auto pli =
      PhysicalLocationIndex::BuildFromDatabase(db.get(), "Events", "ts", 3);
  ASSERT_TRUE(pli.ok());
  Value lo = Value::Int(1500);
  Value hi = Value::Int(1700);
  auto pages = pli->LookupPages(lo, hi);
  std::set<uint32_t> page_set(pages.begin(), pages.end());
  ASSERT_TRUE(db->heap("Events")
                  ->Scan([&](RowPointer ptr, const Record& rec) {
                    if (Value::Compare(rec[0], lo) >= 0 &&
                        Value::Compare(rec[0], hi) <= 0) {
                      EXPECT_EQ(page_set.count(ptr.page_id), 1u)
                          << "row with ts " << rec[0].ToString()
                          << " on page " << ptr.page_id << " missed";
                    }
                    return Status::Ok();
                  })
                  .ok());
}

TEST(PliTest, BuildsFromCarvedStorage) {
  auto db = DbWithEvents(1000, /*clustered=*/true);
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  CarverConfig config;
  config.params = GetDialect(db->params().dialect).value();
  Carver carver(config);
  auto carve = carver.Carve(*image);
  ASSERT_TRUE(carve.ok());
  auto pli = PhysicalLocationIndex::Build(*carve, "Events", "ts", 2);
  ASSERT_TRUE(pli.ok()) << pli.status().ToString();
  EXPECT_EQ(pli->total_rows(), 1000u);
  EXPECT_DOUBLE_EQ(pli->ClusteringFactor(), 1.0);
}

TEST(PliTest, ErrorsOnUnknownTableOrColumn) {
  auto db = DbWithEvents(10, true);
  EXPECT_FALSE(
      PhysicalLocationIndex::BuildFromDatabase(db.get(), "Nope", "ts").ok());
  EXPECT_FALSE(
      PhysicalLocationIndex::BuildFromDatabase(db.get(), "Events", "nope")
          .ok());
}

}  // namespace
}  // namespace dbfa
