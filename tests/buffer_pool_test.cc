#include <gtest/gtest.h>

#include <cstring>

#include "engine/buffer_pool.h"

namespace dbfa {
namespace {

constexpr uint32_t kPageSize = 512;

/// Backing store over an in-memory map; counts IO.
class MapBacking : public PageBacking {
 public:
  Status ReadPage(PageKey key, uint8_t* out) override {
    ++reads;
    auto it = pages.find(key);
    if (it == pages.end()) {
      std::memset(out, 0, kPageSize);
      pages[key] = Bytes(kPageSize, 0);
      return Status::Ok();
    }
    std::memcpy(out, it->second.data(), kPageSize);
    return Status::Ok();
  }
  Status WritePage(PageKey key, const uint8_t* data) override {
    ++writes;
    pages[key] = Bytes(data, data + kPageSize);
    return Status::Ok();
  }

  std::unordered_map<PageKey, Bytes, PageKeyHash> pages;
  int reads = 0;
  int writes = 0;
};

TEST(BufferPoolTest, HitAvoidsBackingRead) {
  MapBacking backing;
  BufferPool pool(4, kPageSize, &backing);
  { auto h = pool.Fetch({1, 1}); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(backing.reads, 1);
  { auto h = pool.Fetch({1, 1}); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(backing.reads, 1);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEvict) {
  MapBacking backing;
  BufferPool pool(2, kPageSize, &backing);
  {
    auto h = pool.Fetch({1, 1});
    ASSERT_TRUE(h.ok());
    h->data()[0] = 0xAB;
    h->MarkDirty();
  }
  // Fill the pool to force eviction of (1,1).
  { auto h = pool.Fetch({1, 2}); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch({1, 3}); ASSERT_TRUE(h.ok()); }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_EQ((backing.pages[PageKey{1, 1}][0]), 0xAB);
}

TEST(BufferPoolTest, LruPrefersOldest) {
  MapBacking backing;
  BufferPool pool(2, kPageSize, &backing);
  { auto h = pool.Fetch({1, 1}); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch({1, 2}); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch({1, 1}); ASSERT_TRUE(h.ok()); }  // refresh 1
  { auto h = pool.Fetch({1, 3}); ASSERT_TRUE(h.ok()); }  // evicts 2
  auto keys = pool.CachedKeys();
  bool has1 = false;
  bool has2 = false;
  for (PageKey k : keys) {
    if (k.page_id == 1) has1 = true;
    if (k.page_id == 2) has2 = true;
  }
  EXPECT_TRUE(has1);
  EXPECT_FALSE(has2);
}

TEST(BufferPoolTest, PinnedPagesSurviveAndPoolGrowsWhenAllPinned) {
  MapBacking backing;
  BufferPool pool(2, kPageSize, &backing);
  auto h1 = pool.Fetch({1, 1});
  auto h2 = pool.Fetch({1, 2});
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  h1->data()[0] = 0x11;
  auto h3 = pool.Fetch({1, 3});  // all frames pinned -> pool grows
  ASSERT_TRUE(h3.ok());
  EXPECT_GE(pool.capacity(), 3u);
  EXPECT_EQ(h1->data()[0], 0x11) << "pinned frame must not be recycled";
}

TEST(BufferPoolTest, FlushAllWritesDirtyFrames) {
  MapBacking backing;
  BufferPool pool(4, kPageSize, &backing);
  {
    auto h = pool.Fetch({2, 1});
    ASSERT_TRUE(h.ok());
    h->data()[5] = 0x77;
    h->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ((backing.pages[PageKey{2, 1}][5]), 0x77);
}

TEST(BufferPoolTest, SnapshotRamHasFrameGranularity) {
  MapBacking backing;
  BufferPool pool(3, kPageSize, &backing);
  {
    auto h = pool.Fetch({1, 1});
    ASSERT_TRUE(h.ok());
    h->data()[0] = 0x42;
    h->MarkDirty();
  }
  Bytes ram = pool.SnapshotRam();
  EXPECT_EQ(ram.size(), 3u * kPageSize);
  EXPECT_EQ(ram[0], 0x42);
}

TEST(BufferPoolTest, ClearDropsEverything) {
  MapBacking backing;
  BufferPool pool(2, kPageSize, &backing);
  {
    auto h = pool.Fetch({1, 1});
    ASSERT_TRUE(h.ok());
    h->data()[0] = 0x55;
    h->MarkDirty();
  }
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_TRUE(pool.CachedKeys().empty());
  EXPECT_EQ((backing.pages[PageKey{1, 1}][0]), 0x55) << "dirty data flushed first";
  Bytes ram = pool.SnapshotRam();
  EXPECT_EQ(ram[0], 0x00) << "frames zeroed";
}

}  // namespace
}  // namespace dbfa
