#include <gtest/gtest.h>

#include "storage/value.h"

namespace dbfa {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("abc").as_string(), "abc");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LT(Value::Real(1.5), Value::Real(2.0));
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
  EXPECT_LT(Value::Real(0.5), Value::Int(1));
}

TEST(ValueTest, NullSortsFirstNumbersBeforeStrings) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::Str(""));
  EXPECT_LT(Value::Int(999999), Value::Str("0"));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Str("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Int(3).ToSqlLiteral(), "3");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Int(42).Hash(), Value::Real(42.0).Hash())
      << "integral doubles must hash like ints for hash joins";
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(RecordTest, LexicographicCompare) {
  Record a = {Value::Int(1), Value::Str("b")};
  Record b = {Value::Int(1), Value::Str("c")};
  Record c = {Value::Int(1)};
  EXPECT_LT(CompareRecords(a, b), 0);
  EXPECT_EQ(CompareRecords(a, a), 0);
  EXPECT_LT(CompareRecords(c, a), 0) << "prefix sorts first";
}

TEST(RecordTest, ToString) {
  Record r = {Value::Int(1), Value::Str("Joe"), Value::Null()};
  EXPECT_EQ(RecordToString(r), "(1, Joe, NULL)");
}

}  // namespace
}  // namespace dbfa
