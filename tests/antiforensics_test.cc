// Anti-forensics tests: wiping completeness (four categories) and the
// Figure 3 steganography scenario on the SSBM schema.
#include <gtest/gtest.h>

#include "antiforensics/steganography.h"
#include "antiforensics/wiper.h"
#include "metaquery/session.h"
#include "storage/dialects.h"
#include "workload/ssbm.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  return config;
}

class WiperDialectTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WiperDialectTest, WipesAllFourCategories) {
  DatabaseOptions options;
  options.dialect = GetParam();
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 11);
  ASSERT_TRUE(workload.Setup(120).ok());
  // Deletes + updates leave records; a dropped table leaves pages.
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Accounts WHERE Id <= 30").ok());
  ASSERT_TRUE(
      (*db)->ExecuteSql("UPDATE Accounts SET Balance = 0 WHERE Id = 40").ok());
  ASSERT_TRUE((*db)
                  ->ExecuteSql("CREATE TABLE Doomed (x INT, y VARCHAR(8), "
                               "PRIMARY KEY (x))")
                  .ok());
  ASSERT_TRUE(
      (*db)->ExecuteSql("INSERT INTO Doomed VALUES (1, 'secret')").ok());
  ASSERT_TRUE((*db)->ExecuteSql("DROP TABLE Doomed").ok());

  // Pre-wipe carve shows plenty of residue.
  CarverConfig config = ConfigFor(GetParam());
  Carver carver(config);
  auto image_before = (*db)->SnapshotDisk();
  ASSERT_TRUE(image_before.ok());
  auto carve_before = carver.Carve(*image_before);
  ASSERT_TRUE(carve_before.ok());
  EXPECT_GE(carve_before->CountRecords(RowStatus::kDeleted), 31u);
  EXPECT_FALSE(carve_before->dropped_objects.empty());

  Wiper wiper(config);
  auto report = wiper.WipeDatabase(db->get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->deleted_records_wiped, 31u);
  EXPECT_GT(report->index_entries_wiped, 0u)
      << "stale PK entries for deleted rows must be wiped";
  EXPECT_GT(report->unallocated_pages_wiped, 0u);
  EXPECT_GT(report->catalog_entries_wiped, 0u)
      << "Doomed's catalog remnants must be wiped";

  // Post-wipe carve: nothing deleted remains; the secret is gone; the
  // database still works.
  auto image_after = (*db)->SnapshotDisk();
  ASSERT_TRUE(image_after.ok());
  auto carve_after = carver.Carve(*image_after);
  ASSERT_TRUE(carve_after.ok());
  EXPECT_EQ(carve_after->CountRecords(RowStatus::kDeleted), 0u);
  std::string image_text(image_after->begin(), image_after->end());
  EXPECT_EQ(image_text.find("secret"), std::string::npos);
  EXPECT_EQ(image_text.find("Doomed"), std::string::npos);

  auto rows = (*db)->ExecuteSql("SELECT * FROM Accounts WHERE Id > 30");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 90u) << "live rows survive the wipe";
  // Index lookups still work after index-page rewrites.
  auto by_pk = (*db)->ExecuteSql("SELECT * FROM Accounts WHERE Id = 77");
  ASSERT_TRUE(by_pk.ok());
  EXPECT_EQ(by_pk->rows.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, WiperDialectTest,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(SteganographyTest, Figure3ScenarioOnSsbm) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SsbmConfig config;
  config.customers = 50;
  config.suppliers = 20;
  config.parts = 50;
  config.date_days = 365;
  config.lineorders = 300;
  ASSERT_TRUE(LoadSsbm(db->get(), config).ok());

  // Baseline query results before hiding.
  std::map<std::string, std::string> before;
  for (const std::string& qid : SsbmQueryIds()) {
    auto r = RunSsbmQuery(db->get(), qid);
    ASSERT_TRUE(r.ok()) << qid;
    before[qid] = r->ToText(1000);
  }

  // The Figure 3 record: NULL composite PK (absent from the PK index),
  // -1 foreign keys (bypass referential integrity, never join), and an
  // 11-character LO_Shipmode in a VARCHAR(10) (domain violation).
  Record hidden = {Value::Null(),  Value::Null(),  Value::Int(-1),
                   Value::Int(-1), Value::Int(-1), Value::Int(-1),
                   Value::Int(0),  Value::Int(0),  Value::Int(0),
                   Value::Int(0),  Value::Int(0),  Value::Str("Hello_World")};
  // The SQL surface rejects it outright...
  EXPECT_FALSE((*db)->Insert("lineorder", hidden).ok());
  // ...but byte-level steganography does not care.
  CarverConfig carver_config = ConfigFor((*db)->params().dialect);
  Steganographer steg(carver_config);
  ASSERT_TRUE(steg.HideInDatabase(db->get(), "lineorder", hidden).ok());

  // Every SSBM query returns byte-identical results: the record is
  // invisible to all of them (each joins at least one dimension).
  for (const std::string& qid : SsbmQueryIds()) {
    auto r = RunSsbmQuery(db->get(), qid);
    ASSERT_TRUE(r.ok()) << qid;
    EXPECT_EQ(r->ToText(1000), before[qid]) << qid;
  }

  // A full scan *does* see it (it is real storage content) — the paper's
  // retrieval query by domain violation:
  MetaQuerySession session;
  ASSERT_TRUE(session.RegisterDatabase(db->get()).ok());
  auto retrieve = session.Query(
      "SELECT lo_shipmode FROM lineorder WHERE LENGTH(lo_shipmode) > 10");
  ASSERT_TRUE(retrieve.ok()) << retrieve.status().ToString();
  ASSERT_EQ(retrieve->rows.size(), 1u);
  EXPECT_EQ(retrieve->rows[0][0], Value::Str("Hello_World"));

  // And the forensic extractor finds it with its violations enumerated.
  auto image = (*db)->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  auto hidden_found = steg.ExtractHidden(*image);
  ASSERT_TRUE(hidden_found.ok()) << hidden_found.status().ToString();
  ASSERT_EQ(hidden_found->size(), 1u);
  const HiddenRecord& h = (*hidden_found)[0];
  EXPECT_EQ(h.record.values[11], Value::Str("Hello_World"));
  // Violations: VARCHAR(10) overflow, NULL PK components (2, also NOT
  // NULL), and 4 unmatched FKs.
  EXPECT_GE(h.violations.size(), 6u);
  bool domain = false;
  bool null_pk = false;
  bool fk = false;
  for (const ConstraintViolation& v : h.violations) {
    if (v.what.find("VARCHAR(10)") != std::string::npos) domain = true;
    if (v.what.find("PRIMARY KEY") != std::string::npos) null_pk = true;
    if (v.what.find("unmatched") != std::string::npos) fk = true;
  }
  EXPECT_TRUE(domain);
  EXPECT_TRUE(null_pk);
  EXPECT_TRUE(fk);
}

TEST(SteganographyTest, CleanDatabaseHasNoHiddenRecords) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 3);
  ASSERT_TRUE(workload.Setup(60).ok());
  CarverConfig config = ConfigFor((*db)->params().dialect);
  Steganographer steg(config);
  auto image = (*db)->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  auto found = steg.ExtractHidden(*image);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty()) << "no false positives on a clean database";
}

}  // namespace
}  // namespace dbfa
