// Differential suite, three ways: the tuple-at-a-time reference executor
// is the oracle, and both the batched engine (several thread counts and
// batch sizes) and the out-of-core engine (budgets from 4 KB to 1 MB —
// every operator forced to spill — across thread counts) must reproduce
// its results exactly — same column names, same rows, same order, same
// value types, bit-identical doubles. Runs under the `sanitize` CTest
// label so TSan sees the parallel operators with real thread
// interleavings, and under `spill` for the low-budget CI job.
//
// Double-valued columns only hold multiples of 0.25 in a small range, so
// every SUM/AVG is exact in binary floating point and batched
// re-association cannot introduce rounding differences (the engine's
// FP-determinism contract is batch-geometry-fixed ordering, not
// re-association-freedom; see docs/metaquery_engine.md).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "metaquery/session.h"

namespace dbfa {
namespace {

std::string DescribeCell(const Value& v) {
  return std::string(ValueTypeName(v.type())) + ":" + v.ToSqlLiteral();
}

/// Exact equality: same columns, same row count, and cell-by-cell same
/// type and same value (Value::Compare, which is exact for doubles).
void ExpectSameTable(const QueryTable& expected, const QueryTable& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.columns, actual.columns) << context;
  ASSERT_EQ(expected.rows.size(), actual.rows.size()) << context;
  for (size_t r = 0; r < expected.rows.size(); ++r) {
    ASSERT_EQ(expected.rows[r].size(), actual.rows[r].size())
        << context << " row " << r;
    for (size_t c = 0; c < expected.rows[r].size(); ++c) {
      const Value& e = expected.rows[r][c];
      const Value& a = actual.rows[r][c];
      ASSERT_TRUE(e.type() == a.type() && Value::Compare(e, a) == 0)
          << context << " row " << r << " col " << c << ": expected "
          << DescribeCell(e) << ", got " << DescribeCell(a);
    }
  }
}

/// T1(id, g, d, s): sequential ids; g a small int with NULLs (GROUP BY
/// with NULL keys); d a double that is always a multiple of 0.25 with
/// heavy ties (ORDER BY DESC with ties); s a short word from a small pool.
std::shared_ptr<Relation> MakeT1(Rng* rng, size_t n) {
  std::vector<std::string> pool = {"ant", "bee", "cat", "dog", "elk"};
  std::vector<Record> rows;
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.push_back(Value::Int(static_cast<int64_t>(i)));
    r.push_back(rng->Bernoulli(0.15) ? Value::Null()
                                     : Value::Int(rng->Uniform(0, 4)));
    r.push_back(rng->Bernoulli(0.1)
                    ? Value::Null()
                    : Value::Real(0.25 * static_cast<double>(rng->Uniform(-40, 40))));
    r.push_back(Value::Str(rng->Pick(pool)));
    rows.push_back(std::move(r));
  }
  return std::make_shared<VectorRelation>(
      std::vector<std::string>{"id", "g", "d", "s"}, std::move(rows));
}

/// T2(k, w): join partner. Keys are duplicated (every key ~4 times on
/// average) and a third of them are stored as the Compare-equal double
/// (Int(5) vs Real(5.0) hash identically — the hash-collision / cross-type
/// case for the Value-keyed join table). NULL keys must never join.
std::shared_ptr<Relation> MakeT2(Rng* rng, size_t n, int64_t key_space) {
  std::vector<Record> rows;
  for (size_t i = 0; i < n; ++i) {
    Record r;
    if (rng->Bernoulli(0.05)) {
      r.push_back(Value::Null());
    } else {
      int64_t k = rng->Uniform(0, key_space - 1);
      r.push_back(rng->Bernoulli(0.33)
                      ? Value::Real(static_cast<double>(k))
                      : Value::Int(k));
    }
    r.push_back(Value::Int(rng->Uniform(0, 9)));
    rows.push_back(std::move(r));
  }
  return std::make_shared<VectorRelation>(
      std::vector<std::string>{"k", "w"}, std::move(rows));
}

/// A random well-typed predicate over T1's columns (optionally qualified
/// for the joined shape).
std::string RandomPredicate(Rng* rng) {
  std::vector<std::string> preds = {
      "id >= %d",
      "g = %d",
      "g <> %d",
      "d > %d",
      "d <= %d",
      "g IS NULL",
      "g IS NOT NULL",
      "d IS NULL",
      "s LIKE 'a%%'",
      "s NOT LIKE '%%t'",
      "LENGTH(s) = 3",
      "ABS(d) < %d",
      "id + g > %d",
      "d * 2 >= %d",
      "g BETWEEN 1 AND 3",
      "g IN (0, 2, 4)",
  };
  std::string chosen = rng->Pick(preds);
  if (chosen.find("%d") != std::string::npos) {
    return StrFormat(chosen.c_str(), static_cast<int>(rng->Uniform(-5, 60)));
  }
  return chosen;
}

std::string RandomWhere(Rng* rng) {
  std::string a = RandomPredicate(rng);
  if (rng->Bernoulli(0.5)) return a;
  std::string b = RandomPredicate(rng);
  const char* op = rng->Bernoulli(0.5) ? "AND" : "OR";
  std::string combined = StrFormat("(%s) %s (%s)", a.c_str(), op, b.c_str());
  if (rng->Bernoulli(0.2)) return "NOT (" + combined + ")";
  return combined;
}

std::string RandomQuery(Rng* rng) {
  std::string where = RandomWhere(rng);
  switch (rng->Uniform(0, 5)) {
    case 0:  // projection with expressions, ORDER BY DESC with ties
      return StrFormat(
          "SELECT id, d, id + g AS e FROM T1 WHERE %s "
          "ORDER BY d DESC, id",
          where.c_str());
    case 1:  // SELECT * with LIMIT (sometimes LIMIT 0)
      return StrFormat("SELECT * FROM T1 WHERE %s ORDER BY id LIMIT %d",
                       where.c_str(),
                       static_cast<int>(rng->Uniform(0, 3)) * 7);
    case 2:  // GROUP BY with NULL keys and every aggregate
      return StrFormat(
          "SELECT g, COUNT(*) AS n, SUM(d) AS sd, MIN(d) AS lo, "
          "MAX(d) AS hi, AVG(d) AS mean FROM T1 WHERE %s GROUP BY g "
          "ORDER BY n DESC",
          where.c_str());
    case 3:  // ungrouped aggregates (empty-input path when WHERE kills all)
      return StrFormat(
          "SELECT COUNT(*) AS n, SUM(id) AS si, AVG(d) AS mean FROM T1 "
          "WHERE %s",
          where.c_str());
    case 4:  // join with duplicate and cross-type keys
      return StrFormat(
          "SELECT T1.id, T1.s, T2.w FROM T1 JOIN T2 ON g = k WHERE %s "
          "ORDER BY T1.id LIMIT 200",
          where.c_str());
    default:  // aggregate over a join, grouped by the string column
      return StrFormat(
          "SELECT s, COUNT(*) AS n, SUM(w) AS sw FROM T1 "
          "JOIN T2 ON g = k WHERE %s GROUP BY s ORDER BY s",
          where.c_str());
  }
}

class MetaQueryDifferentialTest : public ::testing::Test {
 protected:
  void RunDifferential(uint64_t seed, size_t t1_rows, size_t t2_rows) {
    Rng rng(seed);
    auto t1 = MakeT1(&rng, t1_rows);
    auto t2 = MakeT2(&rng, t2_rows, 6);

    MetaQueryOptions ref_options;
    ref_options.use_reference = true;
    MetaQuerySession reference(ref_options);
    reference.Register("T1", t1);
    reference.Register("T2", t2);

    std::vector<std::string> queries;
    // Fixed regression shapes first, then randomized ones.
    queries.push_back("SELECT * FROM T1 ORDER BY id LIMIT 0");
    queries.push_back(
        "SELECT g, COUNT(*) AS n FROM T1 GROUP BY g ORDER BY n DESC");
    queries.push_back(
        "SELECT T1.id, T2.w FROM T1 JOIN T2 ON g = k ORDER BY T1.id, T2.w");
    queries.push_back(
        "SELECT COUNT(*) AS n FROM T1 WHERE id < 0");  // empty input
    for (int q = 0; q < 24; ++q) queries.push_back(RandomQuery(&rng));

    for (const std::string& query : queries) {
      auto expected = reference.Query(query);
      ASSERT_TRUE(expected.ok())
          << query << ": " << expected.status().ToString();
      for (size_t threads : {1u, 2u, 4u, 8u}) {
        for (size_t batch_rows : {64u, 1024u}) {
          MetaQueryOptions options;
          options.num_threads = threads;
          options.batch_rows = batch_rows;
          MetaQuerySession session(options);
          session.Register("T1", t1);
          session.Register("T2", t2);
          auto actual = session.Query(query);
          ASSERT_TRUE(actual.ok())
              << query << ": " << actual.status().ToString();
          ExpectSameTable(*expected, *actual,
                          StrFormat("[threads=%zu batch=%zu] %s", threads,
                                    batch_rows, query.c_str()));
        }
      }
      // Columnar leg: the batched runs above execute with the columnar
      // WHERE filter enabled (the default); the same grid with the
      // columnar kernels forced off must produce the identical table, so
      // any divergence between the two filter implementations is caught
      // here query-by-query. 8 threads stresses engagement bookkeeping
      // under real interleavings (this suite runs under TSan).
      for (size_t threads : {1u, 2u, 8u}) {
        for (size_t batch_rows : {64u, 1024u}) {
          MetaQueryOptions options;
          options.num_threads = threads;
          options.batch_rows = batch_rows;
          options.columnar_filter = false;
          MetaQuerySession session(options);
          session.Register("T1", t1);
          session.Register("T2", t2);
          auto actual = session.Query(query);
          ASSERT_TRUE(actual.ok())
              << query << ": " << actual.status().ToString();
          ExpectSameTable(*expected, *actual,
                          StrFormat("[columnar=off threads=%zu batch=%zu] %s",
                                    threads, batch_rows, query.c_str()));
          EXPECT_EQ(session.last_batch_stats().columnar_batches, 0u) << query;
        }
      }
      // Out-of-core engine: 4 KB spills every operator on these tables,
      // 1 MB spills almost nothing; all budgets must agree with the
      // unlimited runs above at every thread count.
      for (size_t budget : {4096u, 65536u, 1048576u}) {
        for (size_t threads : {1u, 2u, 8u}) {
          MetaQueryOptions options;
          options.num_threads = threads;
          options.batch_rows = 64;
          options.memory_budget_bytes = budget;
          MetaQuerySession session(options);
          session.Register("T1", t1);
          session.Register("T2", t2);
          auto actual = session.Query(query);
          ASSERT_TRUE(actual.ok())
              << query << ": " << actual.status().ToString();
          ExpectSameTable(*expected, *actual,
                          StrFormat("[budget=%zu threads=%zu] %s", budget,
                                    threads, query.c_str()));
        }
      }
      // spill_policy three ways: kNever pins the in-memory engine even
      // under a budget, kAuto routes by estimated working set — and both
      // must agree with the oracle whatever engine they land on.
      for (SpillPolicy policy : {SpillPolicy::kNever, SpillPolicy::kAuto}) {
        for (size_t budget : {4096u, 1u << 28}) {
          MetaQueryOptions options;
          options.num_threads = 2;
          options.batch_rows = 64;
          options.memory_budget_bytes = budget;
          options.spill_policy = policy;
          MetaQuerySession session(options);
          session.Register("T1", t1);
          session.Register("T2", t2);
          auto actual = session.Query(query);
          ASSERT_TRUE(actual.ok())
              << query << ": " << actual.status().ToString();
          ExpectSameTable(
              *expected, *actual,
              StrFormat("[policy=%d budget=%zu] %s",
                        static_cast<int>(policy), budget, query.c_str()));
          if (policy == SpillPolicy::kNever) {
            EXPECT_STREQ(session.last_engine(), "batched") << query;
          } else if (budget == (1u << 28)) {
            // These tables are far under 128 MB; kAuto must stay in memory.
            EXPECT_STREQ(session.last_engine(), "batched") << query;
          } else if (t1->EstimatedBytes().value_or(0) > budget) {
            // Every query reads T1, so the working set alone overruns the
            // tight budget; kAuto must engage the out-of-core engine.
            EXPECT_STREQ(session.last_engine(), "out-of-core") << query;
          }
        }
      }
      {
        // Spot-check the default batch geometry under the tightest budget.
        MetaQueryOptions options;
        options.num_threads = 2;
        options.batch_rows = 1024;
        options.memory_budget_bytes = 4096;
        MetaQuerySession session(options);
        session.Register("T1", t1);
        session.Register("T2", t2);
        auto actual = session.Query(query);
        ASSERT_TRUE(actual.ok()) << query << ": "
                                 << actual.status().ToString();
        ExpectSameTable(*expected, *actual,
                        StrFormat("[budget=4096 batch=1024] %s",
                                  query.c_str()));
      }
    }
  }
};

TEST_F(MetaQueryDifferentialTest, RandomizedQueriesSeed1) {
  RunDifferential(/*seed=*/101, /*t1_rows=*/400, /*t2_rows=*/120);
}

TEST_F(MetaQueryDifferentialTest, RandomizedQueriesSeed2) {
  RunDifferential(/*seed=*/202, /*t1_rows=*/700, /*t2_rows=*/60);
}

TEST_F(MetaQueryDifferentialTest, TinyAndEmptyRelations) {
  RunDifferential(/*seed=*/303, /*t1_rows=*/3, /*t2_rows=*/1);
  RunDifferential(/*seed=*/404, /*t1_rows=*/0, /*t2_rows=*/0);
}

TEST_F(MetaQueryDifferentialTest, BatchBoundaryExactMultiples) {
  // Row counts landing exactly on batch boundaries (64 * k) exercise the
  // empty-last-batch and full-last-batch edges of the batch grid.
  RunDifferential(/*seed=*/505, /*t1_rows=*/128, /*t2_rows=*/64);
}

}  // namespace
}  // namespace dbfa
