// The fuzzing subsystem's own contract: mutators are deterministic and
// serializable, minimization shrinks to a failing core, baselines carve,
// and a small campaign across representative dialects runs violation-free
// (the full 10k-mutant sweep is dbfa_fuzz's job; CI runs --smoke).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/carver.h"
#include "fuzz/campaign.h"
#include "fuzz/mutators.h"
#include "fuzz/oracle.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::create_directories(dir);
  return dir.string();
}

TEST(Mutators, RoundTripNamesAndLists) {
  for (size_t i = 0; i < kMutatorKindCount; ++i) {
    MutatorKind kind = static_cast<MutatorKind>(i);
    auto parsed = MutatorKindFromName(MutatorKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  std::vector<Mutation> list = {{MutatorKind::kWipeRepair, 77},
                                {MutatorKind::kTruncate, 123456789}};
  auto parsed = MutationListFromString(MutationListToString(list));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, list);

  EXPECT_FALSE(MutationFromString("no_colon").ok());
  EXPECT_FALSE(MutationFromString("unknown_kind:1").ok());
  EXPECT_FALSE(MutationFromString("truncate:").ok());
  EXPECT_FALSE(MutationFromString("truncate:12x").ok());
}

TEST(Mutators, DeterministicInSeed) {
  auto baseline = BuildBaseline("postgres_like", 11, 20, 30);
  ASSERT_TRUE(baseline.ok());
  for (size_t i = 0; i < kMutatorKindCount; ++i) {
    Mutation m{static_cast<MutatorKind>(i), 0xABCDEFULL + i};
    Bytes a = baseline->image;
    Bytes b = baseline->image;
    ApplyMutation(baseline->config, m, &a);
    ApplyMutation(baseline->config, m, &b);
    EXPECT_EQ(a, b) << "mutator " << MutatorKindName(m.kind)
                    << " not deterministic";
  }
}

TEST(Mutators, EveryKindPerturbsSomeSeed) {
  auto baseline = BuildBaseline("oracle_like", 12, 20, 30);
  ASSERT_TRUE(baseline.ok());
  for (size_t i = 0; i < kMutatorKindCount; ++i) {
    bool changed = false;
    for (uint64_t seed = 1; seed <= 8 && !changed; ++seed) {
      Bytes mutant = baseline->image;
      ApplyMutation(baseline->config,
                    {static_cast<MutatorKind>(i), seed * 31}, &mutant);
      changed = mutant != baseline->image;
    }
    EXPECT_TRUE(changed) << MutatorKindName(static_cast<MutatorKind>(i))
                         << " never changed the image";
  }
}

TEST(Baselines, EveryDialectCarvesNonEmpty) {
  for (const std::string& dialect : BuiltinDialectNames()) {
    auto baseline = BuildBaseline(dialect, 5, 16, 24);
    ASSERT_TRUE(baseline.ok()) << dialect << ": "
                               << baseline.status().ToString();
    EXPECT_GT(baseline->carve.pages.size(), 0u) << dialect;
    EXPECT_GT(baseline->carve.records.size(), 0u) << dialect;
    EXPECT_GT(baseline->log.entries().size(), 0u) << dialect;
  }
}

TEST(Minimize, ShrinksToFailingCore) {
  // The "bug" triggers iff the list contains a kWipeRepair mutation; the
  // minimizer must strip the noise around it.
  std::vector<Mutation> noisy = {
      {MutatorKind::kBitFlipRandom, 1}, {MutatorKind::kTruncate, 2},
      {MutatorKind::kWipeRepair, 3},    {MutatorKind::kPageSwap, 4},
      {MutatorKind::kHeaderFlip, 5},    {MutatorKind::kTornPage, 6},
  };
  size_t evaluations = 0;
  auto fails = [&](const std::vector<Mutation>& candidate) {
    ++evaluations;
    for (const Mutation& m : candidate) {
      if (m.kind == MutatorKind::kWipeRepair) return true;
    }
    return false;
  };
  std::vector<Mutation> core = MinimizeMutations(noisy, fails);
  ASSERT_EQ(core.size(), 1u);
  EXPECT_EQ(core[0].kind, MutatorKind::kWipeRepair);
  EXPECT_GT(evaluations, 0u);

  // A list where everything matters stays intact.
  auto all_needed = [&](const std::vector<Mutation>& candidate) {
    return candidate.size() == noisy.size();
  };
  EXPECT_EQ(MinimizeMutations(noisy, all_needed).size(), noisy.size());
}

TEST(Oracle, CleanImagePassesAndIdenticalCarvesCompareEmpty) {
  auto baseline = BuildBaseline("mysql_like", 21, 16, 24);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(DescribeCarveDifference(baseline->carve, baseline->carve), "");
  OracleOptions options;
  options.audit_log = &baseline->log;
  EXPECT_EQ(CheckMutant(baseline->config, baseline->image, &baseline->carve,
                        options),
            "");
}

TEST(Oracle, EnvelopeCatchesMintedArtifacts) {
  auto baseline = BuildBaseline("sqlite_like", 22, 16, 24);
  ASSERT_TRUE(baseline.ok());
  // Pretend the clean baseline was much smaller than what the carver now
  // reports: the envelope must flag the explosion.
  CarveResult tiny;
  tiny.dialect = baseline->carve.dialect;
  OracleOptions options;
  options.envelope.page_slack = 0;
  options.envelope.record_slack = 0;
  options.envelope.record_factor = 0.0;
  std::string violation =
      CheckMutant(baseline->config, baseline->image, &tiny, options);
  EXPECT_NE(violation, "") << "envelope failed to catch artifact growth";
}

TEST(Campaign, SmallRunAcrossTwoDialectsIsViolationFree) {
  CampaignOptions options;
  options.seed = 99;
  options.dialects = {"postgres_like", "oracle_like"};
  options.mutants_per_dialect = 24;
  options.snapshot_every = 6;
  options.detective_every = 6;
  options.confusion_every = 12;
  options.scratch_dir = TempDir("fuzz_campaign_scratch");
  options.workload_rows = 16;
  options.workload_ops = 24;
  FuzzCampaign campaign(options);
  auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mutants_run, 48u);
  EXPECT_EQ(report->dialects_fuzzed, 2u);
  EXPECT_GT(report->snapshot_checks, 0u);
  EXPECT_GT(report->detective_checks, 0u);
  EXPECT_GT(report->confusion_checks, 0u);
  for (const CampaignFailure& f : report->failures) {
    ADD_FAILURE() << f.ToString();
  }
}

TEST(Campaign, SameSeedSameReport) {
  CampaignOptions options;
  options.seed = 7;
  options.dialects = {"db2_like"};
  options.mutants_per_dialect = 12;
  options.snapshot_every = 0;  // keep this re-run cheap and scratch-free
  options.detective_every = 4;
  options.confusion_every = 6;
  options.workload_rows = 12;
  options.workload_ops = 16;
  auto a = FuzzCampaign(options).Run();
  auto b = FuzzCampaign(options).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mutants_run, b->mutants_run);
  EXPECT_EQ(a->failures.size(), b->failures.size());
  EXPECT_EQ(a->confusion_checks, b->confusion_checks);
}

}  // namespace
}  // namespace dbfa
