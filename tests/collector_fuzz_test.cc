// Collector generalization fuzz: the parameter collector must rediscover
// *arbitrary* valid page layouts, not just the eight shipped dialects.
// Each trial generates a random layout (random field placement, byte
// order, page size, slot scheme, record framing, delete strategy, markers,
// checksum, pointer format), boots an engine with it, and requires the
// black-box collector to emit a forensically equivalent configuration.
#include <gtest/gtest.h>

#include <set>

#include "carve_equivalence.h"
#include "common/rng.h"
#include "core/carver.h"
#include "core/parallel_carver.h"
#include "core/parameter_collector.h"
#include "engine/database.h"

namespace dbfa {
namespace {

/// Allocates `width` bytes at a random unclaimed offset within the header.
uint16_t PlaceField(Rng* rng, std::set<uint16_t>* taken, uint16_t width,
                    uint16_t header_size) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    uint16_t offset =
        static_cast<uint16_t>(rng->Uniform(0, header_size - width));
    bool free = true;
    for (uint16_t b = offset; b < offset + width; ++b) {
      if (taken->count(b) != 0) free = false;
    }
    if (!free) continue;
    for (uint16_t b = offset; b < offset + width; ++b) taken->insert(b);
    return offset;
  }
  ADD_FAILURE() << "could not place a field of width " << width;
  return 0;
}

uint8_t DistinctByte(Rng* rng, std::set<uint8_t>* used) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Stay clear of 0x00 (padding) so markers are unambiguous.
    uint8_t b = static_cast<uint8_t>(rng->Uniform(0x11, 0xFE));
    if (used->insert(b).second) return b;
  }
  return 0x5A;
}

PageLayoutParams RandomLayout(uint64_t seed) {
  Rng rng(seed);
  PageLayoutParams p;
  p.dialect = "fuzz_" + std::to_string(seed);
  const uint32_t sizes[] = {4096, 8192, 16384};
  p.page_size = sizes[rng.NextU64() % 3];
  p.big_endian = rng.Bernoulli(0.5);
  p.header_size = static_cast<uint16_t>(rng.Uniform(56, 88));

  std::set<uint16_t> taken;
  // Magic first: 2-4 distinct non-zero bytes at a random offset.
  size_t magic_len = static_cast<size_t>(rng.Uniform(2, 4));
  p.magic_offset = PlaceField(&rng, &taken, static_cast<uint16_t>(magic_len),
                              p.header_size);
  std::set<uint8_t> used_bytes;
  p.magic.clear();
  for (size_t i = 0; i < magic_len; ++i) {
    p.magic.push_back(DistinctByte(&rng, &used_bytes));
  }
  p.page_id_offset = PlaceField(&rng, &taken, 4, p.header_size);
  p.object_id_offset = PlaceField(&rng, &taken, 4, p.header_size);
  p.page_type_offset = PlaceField(&rng, &taken, 1, p.header_size);
  p.record_count_offset = PlaceField(&rng, &taken, 2, p.header_size);
  p.free_space_offset = PlaceField(&rng, &taken, 2, p.header_size);
  p.next_page_offset = PlaceField(&rng, &taken, 4, p.header_size);
  p.lsn_offset = PlaceField(&rng, &taken, 8, p.header_size);
  const ChecksumKind kinds[] = {ChecksumKind::kNone, ChecksumKind::kCrc32,
                                ChecksumKind::kFletcher16,
                                ChecksumKind::kXor8};
  p.checksum_kind = kinds[rng.NextU64() % 4];
  p.checksum_offset =
      p.checksum_kind == ChecksumKind::kNone
          ? 0
          : PlaceField(&rng, &taken,
                       static_cast<uint16_t>(ChecksumWidth(p.checksum_kind)),
                       p.header_size);

  p.slot_placement = rng.Bernoulli(0.5)
                         ? SlotPlacement::kFrontSlotsBackData
                         : SlotPlacement::kBackSlotsFrontData;
  p.slot_has_length = rng.Bernoulli(0.5);
  p.stores_row_id = rng.Bernoulli(0.6);
  p.row_id_varint = p.stores_row_id && rng.Bernoulli(0.4);
  p.string_mode = rng.Bernoulli(0.5) ? StringMode::kInlineSizes
                                     : StringMode::kColumnDirectory;
  // Delete strategy consistent with the record framing.
  const DeleteStrategy strategies[] = {
      DeleteStrategy::kRowMarker, DeleteStrategy::kDataMarker,
      DeleteStrategy::kSlotTombstone, DeleteStrategy::kRowIdentifier};
  do {
    p.delete_strategy = strategies[rng.NextU64() % 4];
  } while (p.delete_strategy == DeleteStrategy::kRowIdentifier &&
           !p.stores_row_id);
  p.active_marker = DistinctByte(&rng, &used_bytes);
  p.deleted_marker = DistinctByte(&rng, &used_bytes);
  p.data_marker_active = DistinctByte(&rng, &used_bytes);
  p.data_marker_deleted = DistinctByte(&rng, &used_bytes);
  p.index_entry_marker = DistinctByte(&rng, &used_bytes);
  const PointerFormat formats[] = {
      PointerFormat::kU32PageU16Slot, PointerFormat::kU32PageU16SlotBE,
      PointerFormat::kVarintPageSlot, PointerFormat::kU48Packed};
  p.pointer_format = formats[rng.NextU64() % 4];
  return p;
}

class CollectorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectorFuzzTest, RediscoversRandomLayout) {
  PageLayoutParams layout = RandomLayout(9000 + GetParam());
  ASSERT_TRUE(layout.Validate().ok());

  DatabaseOptions options;
  options.custom_params = layout;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  MiniDbBlackBox blackbox(db->get());
  ParameterCollector collector;
  auto config = collector.Collect(&blackbox);
  ASSERT_TRUE(config.ok()) << "seed " << 9000 + GetParam() << ": "
                           << config.status().ToString();

  CarverConfig truth;
  truth.params = layout;
  truth.catalog_object_id = kCatalogObjectId;
  EXPECT_TRUE(config->ForensicallyEquivalent(truth))
      << "collected:\n"
      << ConfigToText(*config) << "\nexpected:\n"
      << ConfigToText(truth);

  // And the collected config must actually carve this engine's storage.
  ASSERT_TRUE((*db)->ExecuteSql("CREATE TABLE Fuzz (a INT, b VARCHAR(16), "
                                "PRIMARY KEY (a))")
                  .ok());
  ASSERT_TRUE((*db)
                  ->ExecuteSql("INSERT INTO Fuzz VALUES (1, 'alpha'), "
                               "(2, 'beta')")
                  .ok());
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Fuzz WHERE a = 1").ok());
  Bytes disk = (*db)->SnapshotDisk().value();
  Carver carver(*config);
  auto carve = carver.Carve(disk);
  ASSERT_TRUE(carve.ok());
  EXPECT_EQ(carve->RecordsForTable("Fuzz", RowStatus::kActive).size(), 1u);
  EXPECT_EQ(carve->RecordsForTable("Fuzz", RowStatus::kDeleted).size(), 1u);

  // The parallel chunked pipeline must reproduce the serial carve for
  // arbitrary layouts (random page sizes, checksums, slot schemes) too.
  CarveOptions parallel_options;
  parallel_options.num_threads = 2;
  parallel_options.chunk_pages = 2;
  auto parallel = ParallelCarver(*config, parallel_options).Carve(disk);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectSameCarveResult(*carve, *parallel);
}

INSTANTIATE_TEST_SUITE_P(RandomLayouts, CollectorFuzzTest,
                         ::testing::Range(0, 32));

}  // namespace
}  // namespace dbfa
