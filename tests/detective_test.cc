// DBDetective tests, including the exact Figure 4 scenario.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/carver.h"
#include "detective/confidence.h"
#include "detective/dbdetective.h"
#include "storage/dialects.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const Database& db) {
  CarverConfig config;
  config.params = GetDialect(db.params().dialect).value();
  return config;
}

Result<CarveResult> CarveDisk(Database* db) {
  DBFA_ASSIGN_OR_RETURN(Bytes image, db->SnapshotDisk());
  Carver carver(ConfigFor(*db));
  return carver.Carve(image);
}

TEST(DetectiveTest, Figure4UnattributedDelete) {
  // Figure 4: carved deleted rows (1,Christine,Chicago),
  // (3,Christopher,Seattle), (4,Thomas,Austin); the log holds
  // DELETE WHERE City='Chicago' and DELETE WHERE Name LIKE 'Chris%'.
  // Only (4,Thomas,Austin) must be flagged.
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  TableSchema schema;
  schema.name = "Customer";
  schema.columns = {{"Id", ColumnType::kInt, 0, false},
                    {"Name", ColumnType::kVarchar, 32, true},
                    {"City", ColumnType::kVarchar, 24, true}};
  schema.primary_key = {"Id"};
  ASSERT_TRUE((*db)->CreateTable(schema).ok());
  ASSERT_TRUE((*db)
                  ->ExecuteSql("INSERT INTO Customer VALUES "
                               "(1, 'Christine', 'Chicago'), "
                               "(2, 'James', 'Boston'), "
                               "(3, 'Christopher', 'Seattle'), "
                               "(4, 'Thomas', 'Austin')")
                  .ok());
  ASSERT_TRUE(
      (*db)->ExecuteSql("DELETE FROM Customer WHERE City = 'Chicago'").ok());
  ASSERT_TRUE(
      (*db)
          ->ExecuteSql("DELETE FROM Customer WHERE Name LIKE 'Chris%'")
          .ok());
  // The attack: logging disabled, row 4 deleted, logging re-enabled.
  (*db)->audit_log().SetEnabled(false);
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Customer WHERE Id = 4").ok());
  (*db)->audit_log().SetEnabled(true);

  auto carve = CarveDisk(db->get());
  ASSERT_TRUE(carve.ok());
  DbDetective detective(&*carve, &(*db)->audit_log());
  auto report = detective.Analyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->modifications.size(), 1u) << report->ToString();
  const UnattributedModification& m = report->modifications[0];
  EXPECT_EQ(m.kind, UnattributedModification::Kind::kDelete);
  EXPECT_EQ(m.table, "Customer");
  EXPECT_EQ(m.values[0], Value::Int(4));
  EXPECT_EQ(m.values[1], Value::Str("Thomas"));
  EXPECT_EQ(m.values[2], Value::Str("Austin"));
  EXPECT_NE(report->ToString().find("Thomas"), std::string::npos);
}

TEST(DetectiveTest, CleanWorkloadProducesNoFindings) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(80).ok());
  ASSERT_TRUE(workload.Run(120, OpMix{}, /*logged=*/true).ok());
  auto carve = CarveDisk(db->get());
  ASSERT_TRUE(carve.ok());
  DbDetective detective(&*carve, &(*db)->audit_log());
  auto report = detective.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean()) << report->ToString();
  EXPECT_GT(report->deleted_records_checked, 0u);
  EXPECT_GT(report->active_records_checked, 0u);
}

TEST(DetectiveTest, UnloggedInsertAndDeleteDetected) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(50).ok());
  (*db)->audit_log().SetEnabled(false);
  ASSERT_TRUE((*db)
                  ->ExecuteSql("INSERT INTO Accounts VALUES "
                               "(7001, 'Mallory', 'Nowhere', 13.37)")
                  .ok());
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Accounts WHERE Id = 17").ok());
  (*db)->audit_log().SetEnabled(true);

  auto carve = CarveDisk(db->get());
  ASSERT_TRUE(carve.ok());
  DbDetective detective(&*carve, &(*db)->audit_log());
  auto report = detective.Analyze();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->modifications.size(), 2u) << report->ToString();
  bool saw_insert = false;
  bool saw_delete = false;
  for (const auto& m : report->modifications) {
    if (m.kind == UnattributedModification::Kind::kInsert &&
        m.values[1] == Value::Str("Mallory")) {
      saw_insert = true;
    }
    if (m.kind == UnattributedModification::Kind::kDelete &&
        m.values[0] == Value::Int(17)) {
      saw_delete = true;
    }
  }
  EXPECT_TRUE(saw_insert);
  EXPECT_TRUE(saw_delete);
}

TEST(DetectiveTest, LoggedUpdateExplainsBothVersions) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(20).ok());
  ASSERT_TRUE(
      (*db)
          ->ExecuteSql("UPDATE Accounts SET Balance = 777.25 WHERE Id = 3")
          .ok());
  auto carve = CarveDisk(db->get());
  ASSERT_TRUE(carve.ok());
  DbDetective detective(&*carve, &(*db)->audit_log());
  auto report = detective.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean())
      << "pre- and post-image of a logged UPDATE are attributed: "
      << report->ToString();
}

TEST(DetectiveTest, UnloggedSelectLeavesCachePattern) {
  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(300).ok());
  // Second table the attacker will secretly read.
  TableSchema secret = AccountsSchema("Payroll");
  ASSERT_TRUE((*db)->CreateTable(secret).ok());
  for (int i = 1; i <= 300; ++i) {
    ASSERT_TRUE((*db)
                    ->Insert("Payroll", {Value::Int(i), Value::Str("Emp"),
                                         Value::Str("HQ"), Value::Real(9.5)})
                    .ok());
  }
  // Persist everything, then restart-like state: clear the cache so only
  // activity after this point leaves traces. The investigator compares
  // the cache against the log window starting here.
  ASSERT_TRUE((*db)->SnapshotDisk().ok());
  ASSERT_TRUE((*db)->pager().pool().Clear().ok());
  uint64_t watermark = (*db)->audit_log().entries().back().seq;

  auto disk_carve = CarveDisk(db->get());
  ASSERT_TRUE(disk_carve.ok());

  // The attack: unlogged full read of Payroll.
  (*db)->audit_log().SetEnabled(false);
  ASSERT_TRUE((*db)->ExecuteSql("SELECT * FROM Payroll").ok());
  (*db)->audit_log().SetEnabled(true);

  Bytes ram = (*db)->SnapshotRam();
  CarveOptions ram_options;
  ram_options.scan_step = (*db)->params().page_size;
  Carver ram_carver(ConfigFor(**db), ram_options);
  auto ram_carve = ram_carver.Carve(ram);
  ASSERT_TRUE(ram_carve.ok());

  AuditLog window = (*db)->audit_log().TailAfter(watermark);
  DbDetective detective(&*disk_carve, &window, &*ram_carve);
  auto reads = detective.FindUnloggedReads();
  ASSERT_TRUE(reads.ok()) << reads.status().ToString();
  ASSERT_GE(reads->size(), 1u);
  bool payroll_flagged = false;
  for (const UnloggedAccess& access : *reads) {
    if (access.table == "Payroll") {
      payroll_flagged = true;
      EXPECT_EQ(access.pattern, UnloggedAccess::Pattern::kFullScan)
          << access.ToString();
    }
    EXPECT_NE(access.table, "Accounts")
        << "Accounts activity is fully logged";
  }
  EXPECT_TRUE(payroll_flagged);
}

TEST(DetectiveTest, LoggedSelectExplainsCachePattern) {
  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(200).ok());
  ASSERT_TRUE((*db)->SnapshotDisk().ok());
  ASSERT_TRUE((*db)->pager().pool().Clear().ok());
  uint64_t watermark = (*db)->audit_log().entries().back().seq;
  auto disk_carve = CarveDisk(db->get());
  ASSERT_TRUE(disk_carve.ok());
  ASSERT_TRUE((*db)->ExecuteSql("SELECT * FROM Accounts").ok());  // logged
  Bytes ram = (*db)->SnapshotRam();
  CarveOptions ram_options;
  ram_options.scan_step = (*db)->params().page_size;
  Carver ram_carver(ConfigFor(**db), ram_options);
  auto ram_carve = ram_carver.Carve(ram);
  ASSERT_TRUE(ram_carve.ok());
  AuditLog window = (*db)->audit_log().TailAfter(watermark);
  DbDetective detective(&*disk_carve, &window, &*ram_carve);
  auto reads = detective.FindUnloggedReads();
  ASSERT_TRUE(reads.ok());
  EXPECT_TRUE(reads->empty()) << (*reads)[0].ToString();
}

TEST(DetectiveTest, MakeMetaQuerySessionRunsBudgetedSql) {
  // Investigations over large carves drop the carved relations into a
  // meta-query session with a memory budget; the out-of-core engine must
  // return exactly what the unlimited session returns.
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 5);
  ASSERT_TRUE(workload.Setup(150).ok());
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Accounts WHERE Id <= 30").ok());

  auto disk_carve = CarveDisk(db->get());
  ASSERT_TRUE(disk_carve.ok());
  Bytes ram = (*db)->SnapshotRam();
  CarveOptions ram_options;
  ram_options.scan_step = (*db)->params().page_size;
  Carver ram_carver(ConfigFor(**db), ram_options);
  auto ram_carve = ram_carver.Carve(ram);
  ASSERT_TRUE(ram_carve.ok());

  const std::string query =
      "SELECT Id, RowStatus FROM CarvDiskAccounts "
      "WHERE RowStatus = 'DELETED' ORDER BY Id";

  DbDetective unlimited_detective(&*disk_carve, &(*db)->audit_log(),
                                  &*ram_carve);
  auto unlimited = unlimited_detective.MakeMetaQuerySession();
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  auto expected = (*unlimited)->Query(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_GT(expected->rows.size(), 0u);

  DetectiveOptions options;
  options.metaquery.memory_budget_bytes = 1024;
  DbDetective detective(&*disk_carve, &(*db)->audit_log(), &*ram_carve,
                        options);
  auto session = detective.MakeMetaQuerySession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Both snapshots are registered under Section II-C's naming.
  std::vector<std::string> names = (*session)->RelationNames();
  bool disk_seen = false;
  bool ram_seen = false;
  for (const std::string& name : names) {
    if (name == "CarvDiskAccounts") disk_seen = true;
    if (name == "CarvRAMAccounts") ram_seen = true;
  }
  EXPECT_TRUE(disk_seen);
  EXPECT_TRUE(ram_seen);

  auto actual = (*session)->Query(query);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_TRUE((*session)->last_spill_stats().spilled())
      << "a 1 KB budget over a 150-row carve must spill";
  ASSERT_EQ(expected->columns, actual->columns);
  ASSERT_EQ(expected->rows.size(), actual->rows.size());
  for (size_t r = 0; r < expected->rows.size(); ++r) {
    ASSERT_EQ(expected->rows[r].size(), actual->rows[r].size());
    for (size_t c = 0; c < expected->rows[r].size(); ++c) {
      EXPECT_EQ(Value::Compare(expected->rows[r][c], actual->rows[r][c]), 0)
          << "row " << r << " col " << c;
    }
  }

  // The cross-snapshot join from Section II-C's example also runs under
  // the budget.
  auto joined = (*session)->Query(
      "SELECT CarvDiskAccounts.Id FROM CarvDiskAccounts "
      "JOIN CarvRAMAccounts ON CarvDiskAccounts.Id = CarvRAMAccounts.Id "
      "ORDER BY CarvDiskAccounts.Id LIMIT 20");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
}

TEST(ConfidenceTest, CleanFreshDatabaseScoresHigh) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 31);
  ASSERT_TRUE(workload.Setup(100).ok());
  ASSERT_TRUE(workload.Run(60, OpMix{}, true).ok());
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  ConfidenceReport report =
      EstimateDetectionConfidence(*carve, db->audit_log());
  EXPECT_GT(report.score, 0.6) << report.ToString();
}

TEST(ConfidenceTest, VacuumCollapsesConfidence) {
  auto db = Database::Open(DatabaseOptions{}).value();
  SyntheticWorkload workload(db.get(), "Accounts", 32);
  ASSERT_TRUE(workload.Setup(100).ok());
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id <= 40").ok());
  auto before = CarveDisk(db.get());
  ASSERT_TRUE(before.ok());
  double clean = EstimateDetectionConfidence(*before, db->audit_log()).score;
  ASSERT_TRUE(db->ExecuteSql("VACUUM Accounts").ok());
  auto after = CarveDisk(db.get());
  ASSERT_TRUE(after.ok());
  ConfidenceReport degraded =
      EstimateDetectionConfidence(*after, db->audit_log());
  EXPECT_LT(degraded.score, clean * 0.5) << degraded.ToString();
  bool vacuum_factor = false;
  for (const std::string& f : degraded.factors) {
    if (f.find("VACUUM") != std::string::npos) vacuum_factor = true;
  }
  EXPECT_TRUE(vacuum_factor);
}

TEST(ConfidenceTest, EvidenceReuseLowersResidueRatio) {
  DatabaseOptions options;
  options.page_reuse_threshold = 0.5;
  auto db = Database::Open(options).value();
  SyntheticWorkload workload(db.get(), "Accounts", 33);
  ASSERT_TRUE(workload.Setup(300).ok());
  // 200 logged single-row deletes free whole pages; inserts reclaim them.
  for (int id = 1; id <= 200; ++id) {
    ASSERT_TRUE(db->ExecuteSql(StrFormat(
                                   "DELETE FROM Accounts WHERE Id = %d", id))
                    .ok());
  }
  OpMix inserts_only;
  inserts_only.insert_weight = 1.0;
  inserts_only.delete_weight = 0.0;
  inserts_only.update_weight = 0.0;
  inserts_only.select_weight = 0.0;
  ASSERT_TRUE(workload.Run(400, inserts_only, true).ok());
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  ConfidenceReport report =
      EstimateDetectionConfidence(*carve, db->audit_log());
  // Residue was overwritten; the rating must reflect reduced completeness.
  EXPECT_LT(report.score, 1.0) << report.ToString();
}

TEST(DetectiveTest, PreboundMatcherMatchesReferenceImplementation) {
  // The prebound matcher (predicates bound per carved schema once,
  // statements bucketed per table) must produce exactly the report of the
  // original name-resolving tuple-at-a-time path, findings in the same
  // order, on a workload that mixes logged activity with unlogged
  // INSERT/DELETE/UPDATE tampering.
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  SyntheticWorkload workload(db->get(), "Accounts", 11);
  ASSERT_TRUE(workload.Setup(120).ok());
  ASSERT_TRUE(workload.Run(250, OpMix{}, /*logged=*/true).ok());
  (*db)->audit_log().SetEnabled(false);
  ASSERT_TRUE((*db)
                  ->ExecuteSql("INSERT INTO Accounts VALUES "
                               "(9001, 'Mallory', 'Nowhere', 13.37)")
                  .ok());
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Accounts WHERE Id = 23").ok());
  ASSERT_TRUE(
      (*db)
          ->ExecuteSql("UPDATE Accounts SET Balance = 0.5 WHERE Id = 31")
          .ok());
  (*db)->audit_log().SetEnabled(true);

  auto carve = CarveDisk(db->get());
  ASSERT_TRUE(carve.ok());
  DbDetective prebound(&*carve, &(*db)->audit_log());
  DetectiveOptions reference_options;
  reference_options.prebind = false;
  DbDetective reference(&*carve, &(*db)->audit_log(), nullptr,
                        reference_options);

  size_t fast_deleted = 0, fast_active = 0;
  size_t ref_deleted = 0, ref_active = 0;
  auto fast =
      prebound.FindUnattributedModifications(&fast_deleted, &fast_active);
  auto ref =
      reference.FindUnattributedModifications(&ref_deleted, &ref_active);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(fast_deleted, ref_deleted);
  EXPECT_EQ(fast_active, ref_active);
  ASSERT_EQ(fast->size(), ref->size());
  EXPECT_FALSE(fast->empty());
  for (size_t i = 0; i < fast->size(); ++i) {
    EXPECT_EQ((*fast)[i].ToString(), (*ref)[i].ToString()) << "finding " << i;
  }
}

}  // namespace
}  // namespace dbfa
