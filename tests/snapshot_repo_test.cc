// SnapshotRepo: repository lifecycle (Create/Open round-trip, persisted
// config + carve options), store-accelerated ingest vs the serial carver,
// dedup accounting on warm re-ingest, page-level diffs, record history,
// incremental detection against the audit log, cross-snapshot
// meta-queries, and graceful failure on corrupted repository files.
#include "snapshot/snapshot_repo.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "carve_equivalence.h"
#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

namespace fs = std::filesystem;

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

std::unique_ptr<Database> OpenDb(const std::string& dialect) {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

std::unique_ptr<Database> PopulatedDb(const std::string& dialect, int rows) {
  auto db = OpenDb(dialect);
  EXPECT_TRUE(db->ExecuteSql("CREATE TABLE Customer (Id INT NOT NULL, "
                             "Name VARCHAR(32), City VARCHAR(24), "
                             "PRIMARY KEY (Id))")
                  .ok());
  for (int i = 1; i <= rows; ++i) {
    EXPECT_TRUE(db->ExecuteSql(StrFormat("INSERT INTO Customer VALUES "
                                         "(%d, 'Name%04d', 'City%d')",
                                         i, i, i % 7))
                    .ok());
  }
  EXPECT_TRUE(db->ExecuteSql("DELETE FROM Customer WHERE Id <= 20").ok());
  return db;
}

/// Fresh per-test repository directory under the gtest temp root.
std::string RepoDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// Image with the database file framed by garbage, like a real capture.
Bytes CaptureImage(Database* db, uint64_t seed) {
  auto file = db->SnapshotDisk();
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  Rng rng(seed);
  DiskImageBuilder builder;
  builder.AppendGarbage(512 * 3, &rng);
  builder.AppendFile("db", *file);
  builder.AppendGarbage(512 * 5, &rng);
  return builder.TakeBytes();
}

/// Flips one byte of `path` at `offset` in place.
void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

TEST(SnapshotRepoTest, CreateOpenRoundTripPersistsConfigAndOptions) {
  std::string dir = RepoDir("snap_roundtrip");
  CarveOptions options;
  options.scan_step = 256;
  options.parse_bad_checksum_pages = true;
  auto created = SnapshotRepo::Create(dir, ConfigFor("postgres_like"),
                                      options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // A second Create on the same directory must refuse, not clobber.
  auto again = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.status().code() == StatusCode::kAlreadyExists)
      << again.status().ToString();

  auto db = PopulatedDb("postgres_like", 60);
  Bytes image = CaptureImage(db.get(), 7);
  auto stats = (*created)->Ingest(image);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->snapshot_id, 1u);
  created->reset();  // close before reopening

  auto opened = SnapshotRepo::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->config().params.dialect, "postgres_like");
  EXPECT_EQ((*opened)->options().scan_step, 256u);
  EXPECT_TRUE((*opened)->options().parse_bad_checksum_pages);
  auto list = (*opened)->List();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].id, 1u);
  EXPECT_EQ(list[0].image_size, image.size());
  EXPECT_GT(list[0].page_count, 0u);
}

TEST(SnapshotRepoTest, ColdIngestMatchesSerialCarve) {
  std::string dir = RepoDir("snap_cold");
  CarverConfig config = ConfigFor("postgres_like");
  auto repo = SnapshotRepo::Create(dir, config);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();

  auto db = PopulatedDb("postgres_like", 150);
  Bytes image = CaptureImage(db.get(), 13);
  auto stats = (*repo)->Ingest(image);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->pages_reused, 0u);
  EXPECT_EQ(stats->pages_new, stats->pages_total);
  EXPECT_GT(stats->pages_total, 0u);

  auto serial = Carver(config, (*repo)->options()).Carve(image);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto assembled = (*repo)->AssembleCarve(1);
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
  ExpectSameCarveResult(*serial, *assembled);
}

TEST(SnapshotRepoTest, WarmReingestReusesPagesAndArtifacts) {
  std::string dir = RepoDir("snap_warm");
  CarverConfig config = ConfigFor("postgres_like");
  auto repo = SnapshotRepo::Create(dir, config);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();

  auto db = PopulatedDb("postgres_like", 120);
  Bytes image = CaptureImage(db.get(), 29);
  ASSERT_TRUE((*repo)->Ingest(image).ok());
  auto warm = (*repo)->Ingest(image);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Identical bytes: every page dedupes, every artifact is served cached.
  EXPECT_EQ(warm->snapshot_id, 2u);
  EXPECT_EQ(warm->pages_reused, warm->pages_total);
  EXPECT_EQ(warm->pages_new, 0u);
  EXPECT_EQ(warm->artifacts_carved, 0u);
  EXPECT_GT(warm->artifacts_reused, 0u);

  auto serial = Carver(config, (*repo)->options()).Carve(image);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto assembled = (*repo)->AssembleCarve(2);
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
  ExpectSameCarveResult(*serial, *assembled);

  auto diff = (*repo)->Diff(1, 2);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_TRUE(diff->Empty()) << diff->ToString();
}

TEST(SnapshotRepoTest, AssembleAfterReopenMatchesSerialCarve) {
  std::string dir = RepoDir("snap_reopen");
  CarverConfig config = ConfigFor("sqlite_like");
  auto db = PopulatedDb("sqlite_like", 90);
  Bytes image = CaptureImage(db.get(), 41);

  auto repo = SnapshotRepo::Create(dir, config);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  ASSERT_TRUE((*repo)->Ingest(image).ok());
  CarveOptions serial_options = (*repo)->options();
  repo->reset();

  auto reopened = SnapshotRepo::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto serial = Carver(config, serial_options).Carve(image);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto assembled = (*reopened)->AssembleCarve(1);
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
  ExpectSameCarveResult(*serial, *assembled);
}

TEST(SnapshotRepoTest, DiffReportsAddedChangedVanished) {
  std::string dir = RepoDir("snap_diff");
  auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();

  auto db = PopulatedDb("postgres_like", 80);
  Bytes before = CaptureImage(db.get(), 53);
  ASSERT_TRUE((*repo)->Ingest(before).ok());

  // Grow the table: existing pages change (delete markers, fill) and new
  // pages appear.
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Customer WHERE Id <= 40").ok());
  for (int i = 500; i < 900; ++i) {
    ASSERT_TRUE(db->ExecuteSql(StrFormat("INSERT INTO Customer VALUES "
                                         "(%d, 'Name%04d', 'City%d')",
                                         i, i, i % 7))
                    .ok());
  }
  Bytes after = CaptureImage(db.get(), 53);
  ASSERT_TRUE((*repo)->Ingest(after).ok());

  auto forward = (*repo)->Diff(1, 2);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  EXPECT_FALSE(forward->Empty());
  EXPECT_GT(forward->changed.size(), 0u);
  EXPECT_GT(forward->added.size(), 0u);

  // The reverse diff mirrors the forward one: added <-> vanished, changed
  // hash pairs swap.
  auto reverse = (*repo)->Diff(2, 1);
  ASSERT_TRUE(reverse.ok()) << reverse.status().ToString();
  EXPECT_EQ(reverse->vanished.size(), forward->added.size());
  EXPECT_EQ(reverse->added.size(), forward->vanished.size());
  EXPECT_EQ(reverse->changed.size(), forward->changed.size());

  auto self = (*repo)->Diff(2, 2);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->Empty());

  EXPECT_FALSE((*repo)->Diff(1, 99).ok());
}

TEST(SnapshotRepoTest, HistoryTracksFirstAndLastSeen) {
  std::string dir = RepoDir("snap_history");
  auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();

  auto db = PopulatedDb("postgres_like", 50);
  ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 61)).ok());
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO Customer VALUES (900, 'Newcomer', 'Late')")
          .ok());
  ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 61)).ok());

  Record newcomer = {Value::Int(900), Value::Str("Newcomer"),
                     Value::Str("Late")};
  auto late = (*repo)->History("Customer", newcomer);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late->first_seen, 2u);
  EXPECT_EQ(late->last_seen, 2u);
  EXPECT_EQ(late->seen_in, (std::vector<uint64_t>{2}));

  Record veteran = {Value::Int(30), Value::Str("Name0030"),
                    Value::Str("City2")};
  auto always = (*repo)->History("Customer", veteran);
  ASSERT_TRUE(always.ok()) << always.status().ToString();
  EXPECT_EQ(always->first_seen, 1u);
  EXPECT_EQ(always->last_seen, 2u);
  EXPECT_EQ(always->seen_in, (std::vector<uint64_t>{1, 2}));

  Record never = {Value::Int(-1), Value::Str("Nobody"), Value::Str("X")};
  auto missing = (*repo)->History("Customer", never);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->first_seen, 0u);
  EXPECT_TRUE(missing->seen_in.empty());
}

TEST(SnapshotRepoTest, DetectIncrementalFlagsOnlyDeltaRecords) {
  std::string dir = RepoDir("snap_detect");
  auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();

  auto db = PopulatedDb("postgres_like", 100);
  ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 71)).ok());

  // A tampering actor deletes a row with the audit log suppressed.
  db->audit_log().SetEnabled(false);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM Customer WHERE Id = 77").ok());
  db->audit_log().SetEnabled(true);
  ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 71)).ok());

  auto incremental = (*repo)->DetectIncremental(1, 2, db->audit_log());
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

  // Only the delta was re-matched, and it still catches the tampering.
  auto list = (*repo)->List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_GT(incremental->pages_rematched, 0u);
  EXPECT_LT(incremental->pages_rematched, list[1].page_count);
  EXPECT_GT(incremental->records_rematched, 0u);
  bool found = false;
  for (const UnattributedModification& m : incremental->modifications) {
    if (m.table == "Customer" && !m.values.empty() &&
        m.values[0] == Value::Int(77)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << incremental->ToString();

  // The full (non-incremental) detection over the assembled carve agrees.
  auto carve = (*repo)->AssembleCarve(2);
  ASSERT_TRUE(carve.ok());
  DbDetective detective(&*carve, &db->audit_log());
  auto full = detective.FindUnattributedModifications();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  bool full_found = false;
  for (const UnattributedModification& m : *full) {
    if (m.table == "Customer" && !m.values.empty() &&
        m.values[0] == Value::Int(77)) {
      full_found = true;
    }
  }
  EXPECT_TRUE(full_found);
  EXPECT_LE(incremental->records_rematched,
            full->size() + incremental->records_rematched);
  EXPECT_LE(incremental->deleted_checked + incremental->active_checked,
            incremental->records_rematched);
}

TEST(SnapshotRepoTest, RegisterSnapshotsEnablesCrossSnapshotQueries) {
  std::string dir = RepoDir("snap_query");
  auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();

  auto db = PopulatedDb("postgres_like", 40);
  ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 83)).ok());
  ASSERT_TRUE(
      db->ExecuteSql("UPDATE Customer SET City = 'Moved' WHERE Id = 25")
          .ok());
  ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 83)).ok());

  MetaQuerySession session;
  std::vector<std::string> skipped;
  ASSERT_TRUE((*repo)->RegisterSnapshots(&session, {}, &skipped).ok());
  EXPECT_TRUE(skipped.empty()) << Join(skipped, "; ");

  // Section II-C's cross-snapshot join: whose city changed between the two
  // captures?
  auto moved = session.Query(
      "SELECT A.Id FROM Snap1Customer AS A JOIN Snap2Customer AS B "
      "ON A.Id = B.Id WHERE A.City <> B.City");
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  bool saw_25 = false;
  for (const auto& row : moved->rows) {
    ASSERT_EQ(row.size(), 1u);
    if (row[0] == Value::Int(25)) saw_25 = true;
  }
  EXPECT_TRUE(saw_25) << moved->ToText(20);
}

TEST(SnapshotRepoTest, CorruptedRepositoryFilesFailGracefully) {
  std::string dir = RepoDir("snap_corrupt");
  auto db = PopulatedDb("postgres_like", 60);
  Bytes image = CaptureImage(db.get(), 97);
  {
    auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    ASSERT_TRUE((*repo)->Ingest(image).ok());
  }

  // A bit flip in the page store is caught by the block CRC at open.
  {
    std::string pages = (fs::path(dir) / "pages.bin").string();
    auto size = fs::file_size(pages);
    ASSERT_GT(size, 64u);
    FlipByteAt(pages, static_cast<long>(size / 2));
    auto repo = SnapshotRepo::Open(dir);
    EXPECT_FALSE(repo.ok());
    EXPECT_TRUE(repo.status().code() == StatusCode::kCorruption) << repo.status().ToString();
    FlipByteAt(pages, static_cast<long>(size / 2));  // restore
  }

  // Same for the artifact cache.
  {
    std::string artifacts = (fs::path(dir) / "artifacts.bin").string();
    auto size = fs::file_size(artifacts);
    ASSERT_GT(size, 64u);
    FlipByteAt(artifacts, static_cast<long>(size / 2));
    auto repo = SnapshotRepo::Open(dir);
    EXPECT_FALSE(repo.ok());
    EXPECT_TRUE(repo.status().code() == StatusCode::kCorruption) << repo.status().ToString();
    FlipByteAt(artifacts, static_cast<long>(size / 2));  // restore
  }

  // A truncated manifest (no end marker) must be rejected, not half-loaded.
  {
    std::string manifest =
        (fs::path(dir) / "snapshots" / "1.manifest").string();
    auto size = fs::file_size(manifest);
    fs::resize_file(manifest, size - 5);
    auto repo = SnapshotRepo::Open(dir);
    EXPECT_FALSE(repo.ok());
    EXPECT_TRUE(repo.status().code() == StatusCode::kCorruption) << repo.status().ToString();
  }
}

TEST(SnapshotRepoTest, IngestRejectsEmptyImageAndUnknownSnapshotIds) {
  std::string dir = RepoDir("snap_args");
  auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_FALSE((*repo)->Ingest(ByteView()).ok());
  EXPECT_TRUE((*repo)->AssembleCarve(1).status().code() == StatusCode::kNotFound);
  EXPECT_TRUE((*repo)->Diff(1, 2).status().code() == StatusCode::kNotFound);
}

TEST(SnapshotRepoTest, RepoLockExcludesConcurrentOpen) {
  std::string dir = RepoDir("snap_lock");
  auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_TRUE(fs::exists(fs::path(dir) / "repo.lock"));

  // A second handle (a concurrent CLI against a daemon-held repository)
  // must be refused with a retryable code, not interleave writes.
  auto contender = SnapshotRepo::Open(dir);
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable)
      << contender.status().ToString();

  // Releasing the first handle removes the lock and unblocks Open.
  repo->reset();
  EXPECT_FALSE(fs::exists(fs::path(dir) / "repo.lock"));
  auto reopened = SnapshotRepo::Open(dir);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST(SnapshotRepoTest, StaleLockFromDeadProcessIsReclaimed) {
  std::string dir = RepoDir("snap_lock_stale");
  {
    auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  }
  // Fake a crashed owner: a PID far beyond the kernel's pid_max cannot be
  // alive. An unparseable lock body gets the same treatment.
  for (const char* body : {"999999999\n", "not-a-pid"}) {
    std::string lock = (fs::path(dir) / "repo.lock").string();
    std::FILE* f = std::fopen(lock.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs(body, f);
    std::fclose(f);
    auto repo = SnapshotRepo::Open(dir);
    ASSERT_TRUE(repo.ok())
        << "stale lock '" << body << "': " << repo.status().ToString();
    repo->reset();
  }
}

TEST(SnapshotRepoTest, FsckPassesOnHealthyRepoAndReportsBitFlips) {
  std::string dir = RepoDir("snap_fsck");
  {
    auto repo = SnapshotRepo::Create(dir, ConfigFor("postgres_like"));
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    auto db = PopulatedDb("postgres_like", 60);
    ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 1)).ok());
    ASSERT_TRUE(db->ExecuteSql("DELETE FROM Customer WHERE Id > 50").ok());
    ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 2)).ok());
  }  // destructor releases the repository lock Fsck needs

  auto clean = SnapshotRepo::Fsck(dir);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->Clean()) << clean->ToString();
  EXPECT_GT(clean->pages_checked, 0u);
  EXPECT_GT(clean->artifacts_checked, 0u);
  EXPECT_EQ(clean->manifests_checked, 2u);

  // Fsck must not hold the repository lock after returning.
  {
    auto reopened = SnapshotRepo::Open(dir);
    EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
  }

  // One flipped bit inside the page store must surface as a per-file
  // defect report, not as a Status error and not as a crash.
  std::string pages = (fs::path(dir) / "pages.bin").string();
  FlipByteAt(pages, static_cast<long>(fs::file_size(pages) / 2));
  auto damaged = SnapshotRepo::Fsck(dir);
  ASSERT_TRUE(damaged.ok()) << damaged.status().ToString();
  EXPECT_FALSE(damaged->Clean());
  bool names_pages_bin = false;
  for (const FsckIssue& issue : damaged->issues) {
    if (issue.file == "pages.bin") names_pages_bin = true;
  }
  EXPECT_TRUE(names_pages_bin) << damaged->ToString();
}

TEST(SnapshotRepoTest, FsckFlagsUnreachableManifestPages) {
  std::string dir = RepoDir("snap_fsck_manifest");
  {
    auto repo = SnapshotRepo::Create(dir, ConfigFor("oracle_like"));
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    auto db = PopulatedDb("oracle_like", 40);
    ASSERT_TRUE((*repo)->Ingest(CaptureImage(db.get(), 3)).ok());
  }
  // Corrupt one hex digit of a manifest's page hash: the referenced page
  // no longer exists in the store.
  std::string manifest = (fs::path(dir) / "snapshots" / "1.manifest").string();
  ASSERT_TRUE(fs::exists(manifest));
  {
    std::FILE* f = std::fopen(manifest.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    int c;
    while ((c = std::fgetc(f)) != EOF) text.push_back(static_cast<char>(c));
    std::fclose(f);
    size_t pos = text.find("page ");
    ASSERT_NE(pos, std::string::npos);
    size_t hash_pos = text.find_last_of(' ', text.find('\n', pos)) + 1;
    text[hash_pos] = text[hash_pos] == '0' ? '1' : '0';
    f = std::fopen(manifest.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  auto report = SnapshotRepo::Fsck(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->Clean());
  bool names_manifest = false;
  for (const FsckIssue& issue : report->issues) {
    if (issue.file.find("1.manifest") != std::string::npos) {
      names_manifest = true;
    }
  }
  EXPECT_TRUE(names_manifest) << report->ToString();
}

}  // namespace
}  // namespace dbfa
