// Hostile carver-config files (ISSUE 6 satellite): the text format parses
// to a clear Status or a validated config — never a crash, never a
// partial-state config that would carve with different parameters than
// the analyst believes they loaded.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "core/config_io.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

std::string ValidText() {
  CarverConfig config;
  auto params = GetDialect("postgres_like");
  EXPECT_TRUE(params.ok());
  config.params = *params;
  return ConfigToText(config);
}

std::string ReplaceLine(const std::string& text, const std::string& key,
                        const std::string& replacement) {
  std::string out;
  for (const std::string& line : Split(text, '\n')) {
    if (line.rfind(key + " =", 0) == 0) {
      if (!replacement.empty()) out += replacement + "\n";
    } else if (!line.empty()) {
      out += line + "\n";
    }
  }
  return out;
}

TEST(ConfigFuzz, AllBuiltinDialectsRoundTrip) {
  for (const PageLayoutParams& params : AllDialects()) {
    CarverConfig config;
    config.params = params;
    config.catalog_object_id = 7;
    auto parsed = ConfigFromText(ConfigToText(config));
    ASSERT_TRUE(parsed.ok()) << params.dialect << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(parsed->ForensicallyEquivalent(config)) << params.dialect;
    EXPECT_EQ(parsed->params, params) << params.dialect;
  }
}

TEST(ConfigFuzz, HostileValuesAreRejectedNotTruncated) {
  const std::string text = ValidText();
  const struct {
    const char* key;
    const char* line;
  } cases[] = {
      {"page_size", "page_size = 0"},
      {"page_size", "page_size = 1"},
      {"page_size", "page_size = 100000"},       // not a power of two
      {"page_size", "page_size = 65536"},        // above the u16 cap
      {"page_size", "page_size = 4294971392"},   // truncates to 4096
      {"page_size", "page_size = -8192"},
      {"page_size", "page_size = 99999999999999999999999"},
      {"page_size", "page_size = 0x2000"},
      {"page_size", "page_size ="},
      {"magic", "magic = GG ZZ"},
      {"magic", "magic ="},
      {"magic", "magic = DE AD BE EF 55"},       // 5 bytes, max is 4
      {"magic_offset", "magic_offset = 70000"},  // > u16
      {"header_size", "header_size = 9999"},     // >= page_size / 4
      {"checksum_kind", "checksum_kind = md5"},
      {"checksum_offset", "checksum_offset = 8190"},  // past header
      {"big_endian", "big_endian = true"},       // strict 0/1
      {"big_endian", "big_endian = 2"},
      {"active_marker", "active_marker = xyz"},
      {"active_marker", "active_marker = 1FF"},
      {"slot_placement", "slot_placement = sideways"},
      {"delete_strategy", "delete_strategy = shred"},
      {"pointer_format", "pointer_format = u128"},
      {"string_mode", "string_mode = utf7"},
      {"catalog_object_id", "catalog_object_id = 99999999999"},
  };
  for (const auto& c : cases) {
    auto parsed = ConfigFromText(ReplaceLine(text, c.key, c.line));
    EXPECT_FALSE(parsed.ok()) << "accepted hostile line: " << c.line;
  }
}

TEST(ConfigFuzz, StructuralDamageIsRejected) {
  const std::string text = ValidText();
  // A line with no '=':
  EXPECT_FALSE(ConfigFromText(text + "stray token\n").ok());
  // An empty key:
  EXPECT_FALSE(ConfigFromText(text + "= orphan value\n").ok());
  // Unknown keys must not be silently ignored:
  EXPECT_FALSE(ConfigFromText(text + "page_siez = 4096\n").ok());
  // Duplicate keys are ambiguous, not last-wins:
  EXPECT_FALSE(ConfigFromText(text + "page_size = 8192\n").ok());
  // A missing key:
  EXPECT_FALSE(ConfigFromText(ReplaceLine(text, "dialect", "")).ok());
  // Binary garbage:
  EXPECT_FALSE(ConfigFromText("\x01\x02\xff\xfe = \x7f\n").ok());
  // Empty input:
  EXPECT_FALSE(ConfigFromText("").ok());
  // Comments and blank lines alone:
  EXPECT_FALSE(ConfigFromText("# just a comment\n\n").ok());
}

TEST(ConfigFuzz, SeededTextMutationsNeverCrashAndParseFixpoints) {
  const std::string text = ValidText();
  Rng rng(20260808);
  size_t accepted = 0;
  for (int iter = 0; iter < 600; ++iter) {
    std::string mutated = text;
    size_t edits = static_cast<size_t>(rng.Uniform(1, 4));
    for (size_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      switch (rng.NextU64() % 4) {
        case 0: {  // scramble one character
          size_t pos = static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(mutated.size()) - 1));
          mutated[pos] = static_cast<char>(rng.Uniform(1, 126));
          break;
        }
        case 1: {  // delete a run
          size_t pos = static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(mutated.size()) - 1));
          size_t len = static_cast<size_t>(rng.Uniform(1, 12));
          mutated.erase(pos, len);
          break;
        }
        case 2: {  // duplicate a slice somewhere else
          size_t pos = static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(mutated.size()) - 1));
          size_t len = std::min<size_t>(
              static_cast<size_t>(rng.Uniform(1, 20)),
              mutated.size() - pos);
          mutated.insert(
              static_cast<size_t>(
                  rng.Uniform(0, static_cast<int64_t>(mutated.size()))),
              mutated.substr(pos, len));
          break;
        }
        default: {  // inject noise
          mutated.insert(
              static_cast<size_t>(
                  rng.Uniform(0, static_cast<int64_t>(mutated.size()))),
              rng.Word(6));
          break;
        }
      }
    }
    auto parsed = ConfigFromText(mutated);
    if (!parsed.ok()) continue;
    ++accepted;
    // Whatever survived must be a *validated* config whose print/parse
    // round-trip is a fixpoint — no partial state.
    ASSERT_TRUE(parsed->params.Validate().ok());
    auto reparsed = ConfigFromText(ConfigToText(*parsed));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->params, parsed->params);
    EXPECT_EQ(reparsed->catalog_object_id, parsed->catalog_object_id);
  }
  // The corpus of mutants must exercise both outcomes.
  EXPECT_LT(accepted, 600u);
}

}  // namespace
}  // namespace dbfa
