// Parameterized page-format tests: every behaviour must hold for all eight
// dialect parameter sets (the paper's central generalization claim).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/dialects.h"
#include "storage/page_formatter.h"

namespace dbfa {
namespace {

TableSchema TestSchema() {
  TableSchema s;
  s.name = "Customer";
  s.columns = {{"id", ColumnType::kInt, 0, false},
               {"name", ColumnType::kVarchar, 32, true},
               {"city", ColumnType::kVarchar, 24, true},
               {"balance", ColumnType::kDouble, 0, true}};
  s.primary_key = {"id"};
  return s;
}

Record MakeRow(int64_t id, const std::string& name, const std::string& city,
               double balance) {
  return {Value::Int(id), Value::Str(name), Value::Str(city),
          Value::Real(balance)};
}

class PageFormatterTest : public ::testing::TestWithParam<std::string> {
 protected:
  PageFormatterTest()
      : params_(GetDialect(GetParam()).value()),
        fmt_(params_),
        page_(params_.page_size, 0xCD) {}

  uint8_t* page() { return page_.data(); }
  ByteView view() const { return ByteView(page_.data(), page_.size()); }

  /// Inserts a typed record; returns its slot.
  uint16_t Insert(const Record& r, uint64_t row_id) {
    auto enc = fmt_.EncodeRecord(TestSchema(), r, row_id);
    EXPECT_TRUE(enc.ok()) << enc.status().ToString();
    auto slot = fmt_.InsertRecordBytes(page(), *enc);
    EXPECT_TRUE(slot.ok()) << slot.status().ToString();
    return *slot;
  }

  /// Parses the record in `slot` and returns (record, deleted).
  std::pair<Record, bool> ReadSlot(uint16_t slot) {
    auto info = fmt_.GetSlot(page(), slot);
    EXPECT_TRUE(info.has_value());
    auto parsed = fmt_.ParseRecordAt(view(), info->offset);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto rec = fmt_.DecodeTyped(*parsed, TestSchema());
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    return {*rec, fmt_.IsDeleted(*parsed, info->tombstoned)};
  }

  PageLayoutParams params_;
  PageFormatter fmt_;
  Bytes page_;
};

TEST_P(PageFormatterTest, InitPageWritesHeader) {
  fmt_.InitPage(page(), 7, 42, PageType::kData);
  EXPECT_TRUE(fmt_.HasMagic(page()));
  EXPECT_EQ(fmt_.PageId(page()), 7u);
  EXPECT_EQ(fmt_.ObjectId(page()), 42u);
  EXPECT_EQ(fmt_.TypeOf(page()), PageType::kData);
  EXPECT_EQ(fmt_.RecordCount(page()), 0u);
  EXPECT_EQ(fmt_.NextPage(page()), 0u);
  EXPECT_EQ(fmt_.Lsn(page()), 0u);
  EXPECT_TRUE(fmt_.VerifyChecksum(page()));
}

TEST_P(PageFormatterTest, ChecksumDetectsCorruption) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  Insert(MakeRow(1, "Joe", "Chicago", 10.5), 1);
  fmt_.UpdateChecksum(page());
  ASSERT_TRUE(fmt_.VerifyChecksum(page()));
  if (params_.checksum_kind == ChecksumKind::kNone) {
    GTEST_SKIP() << "dialect has no page checksum";
  }
  // += 1 rather than ^= 0xFF: Fletcher-16 works mod 255, so 0x00 -> 0xFF is
  // an undetectable change by construction.
  page()[params_.header_size + 100] += 1;
  EXPECT_FALSE(fmt_.VerifyChecksum(page()));
}

TEST_P(PageFormatterTest, HeaderSettersRoundTrip) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  fmt_.SetNextPage(page(), 99);
  fmt_.SetLsn(page(), 0x1122334455667788ull);
  fmt_.SetType(page(), PageType::kIndexLeaf);
  EXPECT_EQ(fmt_.NextPage(page()), 99u);
  EXPECT_EQ(fmt_.Lsn(page()), 0x1122334455667788ull);
  EXPECT_EQ(fmt_.TypeOf(page()), PageType::kIndexLeaf);
}

TEST_P(PageFormatterTest, RecordRoundTrip) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  Record r1 = MakeRow(101, "Joe", "Chicago", 12.25);
  Record r2 = MakeRow(102, "Jane", "Seattle", -3.5);
  uint16_t s1 = Insert(r1, 1);
  uint16_t s2 = Insert(r2, 2);
  EXPECT_EQ(fmt_.RecordCount(page()), 2u);
  auto [got1, del1] = ReadSlot(s1);
  auto [got2, del2] = ReadSlot(s2);
  EXPECT_EQ(got1, r1);
  EXPECT_EQ(got2, r2);
  EXPECT_FALSE(del1);
  EXPECT_FALSE(del2);
}

TEST_P(PageFormatterTest, NullValuesRoundTrip) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  Record r = {Value::Int(5), Value::Null(), Value::Str(""), Value::Null()};
  uint16_t s = Insert(r, 1);
  auto [got, deleted] = ReadSlot(s);
  EXPECT_EQ(got, r);
  EXPECT_TRUE(got[1].is_null());
  EXPECT_FALSE(got[2].is_null()) << "empty string is distinct from NULL";
  EXPECT_FALSE(deleted);
}

TEST_P(PageFormatterTest, RowIdPreservedWhenDialectStoresIt) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  uint16_t s = Insert(MakeRow(1, "A", "B", 0.0), 777);
  auto info = fmt_.GetSlot(page(), s);
  auto parsed = fmt_.ParseRecordAt(view(), info->offset);
  ASSERT_TRUE(parsed.ok());
  if (params_.stores_row_id) {
    EXPECT_EQ(parsed->row_id, 777u);
  } else {
    EXPECT_EQ(parsed->row_id, 0u);
  }
}

TEST_P(PageFormatterTest, DeleteMarksPerDialectStrategyAndPreservesData) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  Record victim = MakeRow(102, "Jane", "Seattle", 7.0);
  uint16_t s1 = Insert(MakeRow(101, "Joe", "Chicago", 1.0), 1);
  uint16_t s2 = Insert(victim, 2);
  uint16_t s3 = Insert(MakeRow(103, "Jim", "Austin", 2.0), 3);
  ASSERT_TRUE(fmt_.MarkDeleted(page(), s2).ok());

  auto [got2, del2] = ReadSlot(s2);
  EXPECT_TRUE(del2);
  // The forensic essence of Figure 1: deletion marks metadata, the values
  // survive (for the row-identifier strategy the row id is destroyed but
  // the user data still decodes).
  EXPECT_EQ(got2[1], Value::Str("Jane"));
  EXPECT_EQ(got2[2], Value::Str("Seattle"));

  auto [got1, del1] = ReadSlot(s1);
  auto [got3, del3] = ReadSlot(s3);
  EXPECT_FALSE(del1);
  EXPECT_FALSE(del3);
  EXPECT_EQ(got1[1], Value::Str("Joe"));
  EXPECT_EQ(got3[1], Value::Str("Jim"));
}

TEST_P(PageFormatterTest, DeleteStrategyTouchesExpectedField) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  uint16_t s = Insert(MakeRow(1, "Jane", "X", 0.0), 42);
  auto info_before = fmt_.GetSlot(page(), s);
  auto parsed_before = fmt_.ParseRecordAt(view(), info_before->offset);
  ASSERT_TRUE(parsed_before.ok());
  ASSERT_TRUE(fmt_.MarkDeleted(page(), s).ok());
  auto info = fmt_.GetSlot(page(), s);
  auto parsed = fmt_.ParseRecordAt(view(), info->offset);
  ASSERT_TRUE(parsed.ok());
  switch (params_.delete_strategy) {
    case DeleteStrategy::kRowMarker:
      EXPECT_TRUE(parsed->row_marker_deleted);
      EXPECT_FALSE(info->tombstoned);
      break;
    case DeleteStrategy::kDataMarker:
      EXPECT_TRUE(parsed->data_marker_deleted);
      EXPECT_FALSE(parsed->row_marker_deleted);
      break;
    case DeleteStrategy::kRowIdentifier:
      EXPECT_EQ(parsed->row_id, 0u);
      EXPECT_EQ(parsed_before->row_id, 42u);
      break;
    case DeleteStrategy::kSlotTombstone:
      EXPECT_TRUE(info->tombstoned);
      EXPECT_FALSE(parsed->row_marker_deleted);
      EXPECT_FALSE(parsed->data_marker_deleted);
      break;
  }
}

TEST_P(PageFormatterTest, FreeSpaceShrinksAndInsertFailsWhenFull) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  size_t before = fmt_.FreeSpace(page());
  ASSERT_GT(before, 0u);
  auto enc = fmt_.EncodeRecord(TestSchema(), MakeRow(1, "AAAA", "BBBB", 1.0), 1);
  ASSERT_TRUE(enc.ok());
  size_t inserted = 0;
  while (true) {
    auto slot = fmt_.InsertRecordBytes(page(), *enc);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kOutOfRange);
      break;
    }
    ++inserted;
    ASSERT_LT(inserted, 10000u) << "page never filled";
  }
  EXPECT_GT(inserted, 10u);
  EXPECT_LT(fmt_.FreeSpace(page()), enc->size() + params_.SlotEntrySize());
  // All inserted records still readable.
  for (uint16_t i = 0; i < inserted; ++i) {
    auto info = fmt_.GetSlot(page(), i);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(fmt_.ParseRecordAt(view(), info->offset).ok());
  }
}

TEST_P(PageFormatterTest, SlotOutOfRangeReturnsNullopt) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  EXPECT_FALSE(fmt_.GetSlot(page(), 0).has_value());
  EXPECT_FALSE(fmt_.MarkDeleted(page(), 3).ok());
}

TEST_P(PageFormatterTest, ScanRecordsRawFindsAllRecordsWithoutSlots) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  for (int i = 0; i < 20; ++i) {
    Insert(MakeRow(i, "Name" + std::to_string(i), "City", i * 1.5), i + 1);
  }
  auto found = fmt_.ScanRecordsRaw(view());
  EXPECT_GE(found.size(), 20u);
  // Every planted id must be recovered by the raw scan.
  std::vector<bool> seen(20, false);
  for (const ParsedRecord& r : found) {
    auto rec = fmt_.DecodeTyped(r, TestSchema());
    if (!rec.ok()) continue;
    int64_t id = (*rec)[0].as_int();
    if (id >= 0 && id < 20) seen[static_cast<size_t>(id)] = true;
  }
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(seen[i]) << "missing id " << i;
}

TEST_P(PageFormatterTest, ParseRejectsGarbageOffsets) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  Rng rng(99);
  for (size_t i = 0; i < page_.size(); ++i) {
    page_[i] = static_cast<uint8_t>(rng.NextU64());
  }
  // Random bytes must never crash; most offsets must fail to parse.
  size_t parsed_ok = 0;
  for (uint32_t off = 0; off + 16 < params_.page_size; off += 7) {
    if (fmt_.ParseRecordAt(view(), static_cast<uint16_t>(off)).ok()) {
      ++parsed_ok;
    }
  }
  EXPECT_LT(parsed_ok, 20u);
}

TEST_P(PageFormatterTest, IndexLeafEntryRoundTrip) {
  fmt_.InitPage(page(), 3, 9, PageType::kIndexLeaf);
  std::vector<Value> keys = {Value::Int(12345), Value::Str("abc")};
  RowPointer ptr{77, 5};
  Bytes entry = fmt_.EncodeLeafEntry(keys, ptr);
  auto slot = fmt_.InsertRecordBytes(page(), entry, 0);
  ASSERT_TRUE(slot.ok());
  auto info = fmt_.GetSlot(page(), *slot);
  auto parsed = fmt_.ParseIndexEntryAt(view(), info->offset);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->pointer, ptr);
  ASSERT_EQ(parsed->keys.size(), 2u);
  EXPECT_EQ(parsed->keys[0], Value::Int(12345));
  EXPECT_EQ(parsed->keys[1], Value::Str("abc"));
}

TEST_P(PageFormatterTest, IndexEntryWithNullAndDoubleKeys) {
  fmt_.InitPage(page(), 3, 9, PageType::kIndexLeaf);
  std::vector<Value> keys = {Value::Null(), Value::Real(2.5)};
  Bytes entry = fmt_.EncodeLeafEntry(keys, RowPointer{1, 0});
  auto slot = fmt_.InsertRecordBytes(page(), entry, 0);
  ASSERT_TRUE(slot.ok());
  auto info = fmt_.GetSlot(page(), *slot);
  auto parsed = fmt_.ParseIndexEntryAt(view(), info->offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->keys[0].is_null());
  EXPECT_EQ(parsed->keys[1], Value::Real(2.5));
}

TEST_P(PageFormatterTest, SlotInsertPositionOrdersEntries) {
  // Index pages insert slots at sort positions; verify the slot array
  // shifts correctly in both placements.
  fmt_.InitPage(page(), 1, 9, PageType::kIndexLeaf);
  // Insert keys 2, 0, 1 at positions 0, 0, 1 -> order should be 0, 1, 2.
  auto ins = [&](int64_t k, int pos) {
    Bytes e = fmt_.EncodeLeafEntry({Value::Int(k)},
                                   RowPointer{static_cast<uint32_t>(k), 0});
    auto s = fmt_.InsertRecordBytes(page(), e, pos);
    ASSERT_TRUE(s.ok());
  };
  ins(2, 0);
  ins(0, 0);
  ins(1, 1);
  std::vector<int64_t> got;
  for (uint16_t i = 0; i < fmt_.RecordCount(page()); ++i) {
    auto info = fmt_.GetSlot(page(), i);
    auto parsed = fmt_.ParseIndexEntryAt(view(), info->offset);
    ASSERT_TRUE(parsed.ok());
    got.push_back(parsed->keys[0].as_int());
  }
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2}));
}

TEST_P(PageFormatterTest, PointerCodecRoundTrip) {
  for (RowPointer ptr : {RowPointer{0, 0}, RowPointer{1, 5},
                         RowPointer{0xFFFFFF, 0x7FFF}, RowPointer{123456, 42}}) {
    Bytes buf;
    fmt_.AppendPointer(&buf, ptr);
    size_t consumed = 0;
    auto got = fmt_.DecodePointer(buf, 0, &consumed);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, ptr);
    EXPECT_EQ(consumed, buf.size());
  }
}

TEST_P(PageFormatterTest, UntypedDecodeRecoversShapes) {
  fmt_.InitPage(page(), 1, 1, PageType::kData);
  uint16_t s = Insert(MakeRow(42, "Christine", "Chicago", 3.25), 1);
  auto info = fmt_.GetSlot(page(), s);
  auto parsed = fmt_.ParseRecordAt(view(), info->offset);
  ASSERT_TRUE(parsed.ok());
  Record untyped = fmt_.DecodeUntyped(*parsed);
  ASSERT_EQ(untyped.size(), 4u);
  EXPECT_EQ(untyped[0], Value::Int(42));
  EXPECT_EQ(untyped[1], Value::Str("Christine"));
  EXPECT_EQ(untyped[2], Value::Str("Chicago"));
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, PageFormatterTest, ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(DialectRegistryTest, AllBuiltinsValidateAndAreDistinct) {
  auto all = AllDialects();
  ASSERT_EQ(all.size(), 8u);
  for (const auto& p : all) {
    EXPECT_TRUE(p.Validate().ok()) << p.dialect;
  }
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i] == all[j]) << all[i].dialect << " vs " << all[j].dialect;
    }
  }
}

TEST(DialectRegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(GetDialect("no_such").status().code(), StatusCode::kNotFound);
}

TEST(DialectRegistryTest, Figure1DeleteStrategies) {
  // The delete-marking strategies documented in Figure 1 of the paper.
  EXPECT_EQ(GetDialect("mysql_like")->delete_strategy,
            DeleteStrategy::kRowMarker);
  EXPECT_EQ(GetDialect("oracle_like")->delete_strategy,
            DeleteStrategy::kRowMarker);
  EXPECT_EQ(GetDialect("postgres_like")->delete_strategy,
            DeleteStrategy::kDataMarker);
  EXPECT_EQ(GetDialect("sqlite_like")->delete_strategy,
            DeleteStrategy::kRowIdentifier);
  EXPECT_EQ(GetDialect("db2_like")->delete_strategy,
            DeleteStrategy::kSlotTombstone);
  EXPECT_EQ(GetDialect("sqlserver_like")->delete_strategy,
            DeleteStrategy::kSlotTombstone);
}

}  // namespace
}  // namespace dbfa
