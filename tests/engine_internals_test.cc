// Focused tests for engine internals: pager, storage files, catalog,
// composite keys, secondary indexes, and clock behaviour.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "engine/database.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

TEST(StorageFileTest, AllocateAndAccess) {
  StorageFile file(512);
  EXPECT_EQ(file.page_count(), 0u);
  EXPECT_FALSE(file.Contains(1));
  uint32_t p1 = file.Allocate();
  uint32_t p2 = file.Allocate();
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(p2, 2u);
  EXPECT_TRUE(file.Contains(1));
  EXPECT_TRUE(file.Contains(2));
  EXPECT_FALSE(file.Contains(3));
  file.PageData(2)[0] = 0xAB;
  EXPECT_EQ(file.bytes()[512], 0xAB);
}

TEST(StorageFileTest, SaveLoadRoundTrip) {
  StorageFile file(512);
  file.Allocate();
  file.PageData(1)[100] = 0x5A;
  std::string path = ::testing::TempDir() + "/dbfa_storage_file.bin";
  ASSERT_TRUE(file.SaveTo(path).ok());
  auto loaded = StorageFile::LoadFrom(path, 512);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->page_count(), 1u);
  EXPECT_EQ(loaded->PageData(1)[100], 0x5A);
  // Page-size mismatch is corruption.
  EXPECT_FALSE(StorageFile::LoadFrom(path, 500).ok());
}

TEST(PagerTest, ObjectLifecycleAndLsnStamping) {
  PageLayoutParams params = GetDialect("postgres_like").value();
  Pager pager(params, 8);
  uint32_t a = pager.CreateObject();
  uint32_t b = pager.CreateObject();
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_TRUE(pager.HasObject(1));
  EXPECT_FALSE(pager.HasObject(3));
  EXPECT_FALSE(pager.Fetch(3, 1).ok());
  EXPECT_FALSE(pager.Fetch(1, 1).ok()) << "no pages allocated yet";

  auto page = pager.NewPage(a, PageType::kData);
  ASSERT_TRUE(page.ok());
  uint64_t lsn1 = pager.fmt().Lsn(page->second.data());
  EXPECT_GT(lsn1, 0u);
  pager.CommitPage(&page->second);
  EXPECT_GT(pager.fmt().Lsn(page->second.data()), lsn1);
  EXPECT_TRUE(pager.fmt().VerifyChecksum(page->second.data()));
}

TEST(PagerTest, SnapshotDiskConcatenatesInObjectOrder) {
  PageLayoutParams params = GetDialect("sqlite_like").value();
  Pager pager(params, 8);
  uint32_t a = pager.CreateObject();
  uint32_t b = pager.CreateObject();
  ASSERT_TRUE(pager.NewPage(b, PageType::kData).ok());
  ASSERT_TRUE(pager.NewPage(a, PageType::kData).ok());
  ASSERT_TRUE(pager.NewPage(a, PageType::kData).ok());
  auto image = pager.SnapshotDisk();
  ASSERT_TRUE(image.ok());
  ASSERT_EQ(image->size(), 3u * params.page_size);
  PageFormatter fmt(params);
  // Object a's two pages first, then object b's one page.
  EXPECT_EQ(fmt.ObjectId(image->data()), a);
  EXPECT_EQ(fmt.ObjectId(image->data() + 2 * params.page_size), b);
}

TEST(CatalogTest, DirectApi) {
  PageLayoutParams params = GetDialect("mysql_like").value();
  Pager pager(params, 16);
  Catalog catalog(&pager);
  ASSERT_TRUE(catalog.Initialize().ok());

  TableSchema schema;
  schema.name = "T";
  schema.columns = {{"a", ColumnType::kInt, 0, false}};
  uint32_t object_id = pager.CreateObject();
  ASSERT_TRUE(catalog.AddTable(schema, object_id, 1).ok());
  EXPECT_EQ(catalog.AddTable(schema, object_id, 1).code(),
            StatusCode::kAlreadyExists);
  const TableInfo* info = catalog.Find("t");  // case-insensitive
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->object_id, object_id);

  IndexInfo index;
  index.name = "idx_a";
  index.object_id = pager.CreateObject();
  index.root_page = 1;
  index.columns = {"a"};
  ASSERT_TRUE(catalog.AddIndex("T", index).ok());
  EXPECT_EQ(catalog.AddIndex("T", index).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.AddIndex("Nope", index).code(), StatusCode::kNotFound);

  ASSERT_TRUE(catalog.UpdateIndexRoot("T", "idx_a", 9).ok());
  EXPECT_EQ(catalog.Find("T")->indexes[0].root_page, 9u);
  EXPECT_FALSE(catalog.UpdateIndexRoot("T", "nope", 9).ok());

  ASSERT_TRUE(catalog.DropTable("T").ok());
  EXPECT_EQ(catalog.Find("T"), nullptr);
  EXPECT_EQ(catalog.DropTable("T").code(), StatusCode::kNotFound);
}

TEST(DatabaseInternalsTest, CompositePrimaryKeyEnforcedAndIndexed) {
  auto db = Database::Open(DatabaseOptions{}).value();
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE LineItem (o INT NOT NULL, l INT "
                             "NOT NULL, v VARCHAR(8), PRIMARY KEY (o, l))")
                  .ok());
  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO LineItem VALUES (1, 1, 'a'), (1, 2, 'b')")
          .ok());
  // Duplicate composite key rejected; differing second component fine.
  EXPECT_FALSE(
      db->ExecuteSql("INSERT INTO LineItem VALUES (1, 1, 'x')").ok());
  EXPECT_TRUE(
      db->ExecuteSql("INSERT INTO LineItem VALUES (2, 1, 'c')").ok());
  // Lookup through the composite index (leading column bound).
  auto rows = db->ExecuteSql("SELECT v FROM LineItem WHERE o = 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);
}

TEST(DatabaseInternalsTest, SecondaryIndexOnExistingDataAndAfterInserts) {
  auto db = Database::Open(DatabaseOptions{}).value();
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE T (k INT NOT NULL, city "
                             "VARCHAR(16), PRIMARY KEY (k))")
                  .ok());
  for (int i = 1; i <= 300; ++i) {
    ASSERT_TRUE(db->ExecuteSql(StrFormat(
                                   "INSERT INTO T VALUES (%d, 'city%d')", i,
                                   i % 7))
                    .ok());
  }
  // Index created after the fact must cover existing rows.
  ASSERT_TRUE(db->ExecuteSql("CREATE INDEX idx_city ON T (city)").ok());
  auto rows = db->ExecuteSql("SELECT * FROM T WHERE city = 'city3'");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);
  size_t before = rows->rows.size();
  EXPECT_GT(before, 30u);
  // ... and rows inserted afterwards.
  ASSERT_TRUE(db->ExecuteSql("INSERT INTO T VALUES (999, 'city3')").ok());
  rows = db->ExecuteSql("SELECT * FROM T WHERE city = 'city3'");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), before + 1);
}

TEST(DatabaseInternalsTest, SelectPrefersIndexOverScanOnlyWhenBound) {
  auto db = Database::Open(DatabaseOptions{}).value();
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE T (k INT NOT NULL, v INT, "
                             "PRIMARY KEY (k))")
                  .ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(
        db->ExecuteSql(StrFormat("INSERT INTO T VALUES (%d, %d)", i, i * 2))
            .ok());
  }
  // OR disjunction on the key cannot use the index bounds extractor.
  auto rows = db->ExecuteSql("SELECT * FROM T WHERE k = 5 OR k = 7");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(db->last_access_path(), AccessPath::kFullScan);
  // Reversed comparison still uses it (literal on the left).
  rows = db->ExecuteSql("SELECT * FROM T WHERE 40 < k");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 10u);
  EXPECT_EQ(db->last_access_path(), AccessPath::kIndexScan);
}

TEST(ClockTest, ManualClockSemantics) {
  ManualClock clock(100, 2);
  EXPECT_EQ(clock.Now(), 100);
  EXPECT_EQ(clock.Now(), 102);
  clock.Set(50);
  EXPECT_EQ(clock.Peek(), 50);
  EXPECT_EQ(clock.Now(), 50);
  clock.Advance(1000);
  EXPECT_EQ(clock.Peek(), 1052);
}

TEST(DatabaseInternalsTest, DeleteAndUpdateWithoutWhereTouchEverything) {
  auto db = Database::Open(DatabaseOptions{}).value();
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE T (k INT NOT NULL, v INT, "
                             "PRIMARY KEY (k))")
                  .ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(
        db->ExecuteSql(StrFormat("INSERT INTO T VALUES (%d, 0)", i)).ok());
  }
  ASSERT_TRUE(db->ExecuteSql("UPDATE T SET v = 1").ok());
  auto rows = db->ExecuteSql("SELECT * FROM T WHERE v = 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 20u);
  ASSERT_TRUE(db->ExecuteSql("DELETE FROM T").ok());
  rows = db->ExecuteSql("SELECT * FROM T");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows.empty());
}

TEST(DatabaseInternalsTest, ErrorsComeBackCleanly) {
  auto db = Database::Open(DatabaseOptions{}).value();
  EXPECT_FALSE(db->ExecuteSql("INSERT INTO Missing VALUES (1)").ok());
  EXPECT_FALSE(db->ExecuteSql("not even sql").ok());
  ASSERT_TRUE(db->ExecuteSql("CREATE TABLE T (a INT)").ok());
  EXPECT_FALSE(db->ExecuteSql("CREATE TABLE T (a INT)").ok());
  EXPECT_FALSE(db->ExecuteSql("CREATE INDEX i ON T (missing)").ok());
  EXPECT_FALSE(db->ExecuteSql("UPDATE T SET missing = 1").ok());
  EXPECT_FALSE(db->ExecuteSql("INSERT INTO T VALUES (1, 2)").ok())
      << "arity mismatch";
  EXPECT_FALSE(db->Vacuum("Missing").ok());
  // Failed statements must not be logged.
  for (const AuditEntry& e : db->audit_log().entries()) {
    EXPECT_EQ(e.sql.find("Missing"), std::string::npos);
  }
}

TEST(DatabaseInternalsTest, DuplicateColumnNameRejected) {
  auto db = Database::Open(DatabaseOptions{}).value();
  TableSchema schema;
  schema.name = "T";
  schema.columns = {{"a", ColumnType::kInt, 0, true},
                    {"A", ColumnType::kInt, 0, true}};
  EXPECT_FALSE(db->CreateTable(schema).ok());
}

}  // namespace
}  // namespace dbfa
