// Differential tests: ParallelCarver must produce element-wise identical
// output to the serial Carver — same pages, records, index entries,
// catalog entries, schemas and ordering — for every thread count and
// chunk size, across an image matrix covering the forensic scenarios the
// serial carver is tested on (single file, multi-DBMS, text-garbage-heavy,
// corrupted).
#include "core/parallel_carver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "carve_equivalence.h"
#include "common/strings.h"
#include "core/carver.h"
#include "engine/database.h"
#include "storage/dialects.h"
#include "storage/disk_image.h"

namespace dbfa {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

CarverConfig ConfigFor(const std::string& dialect) {
  CarverConfig config;
  config.params = GetDialect(dialect).value();
  config.catalog_object_id = kCatalogObjectId;
  return config;
}

std::unique_ptr<Database> OpenDb(const std::string& dialect) {
  DatabaseOptions options;
  options.dialect = dialect;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

std::unique_ptr<Database> PopulatedDb(const std::string& dialect, int rows) {
  auto db = OpenDb(dialect);
  EXPECT_TRUE(db->ExecuteSql("CREATE TABLE Customer (Id INT NOT NULL, "
                             "Name VARCHAR(32), City VARCHAR(24), "
                             "PRIMARY KEY (Id))")
                  .ok());
  for (int i = 1; i <= rows; ++i) {
    EXPECT_TRUE(db->ExecuteSql(StrFormat("INSERT INTO Customer VALUES "
                                         "(%d, 'Name%04d', 'City%d')",
                                         i, i, i % 7))
                    .ok());
  }
  EXPECT_TRUE(db->ExecuteSql("DELETE FROM Customer WHERE Id <= 20").ok());
  return db;
}

/// Carves `image` serially and in parallel with every thread count in
/// kThreadCounts (and, when forced_chunk_pages != 0, tiny chunks to stress
/// chunk boundaries), asserting identical output each time.
void ExpectParallelMatchesSerial(ByteView image, const CarverConfig& config,
                                 CarveOptions options = {},
                                 size_t forced_chunk_pages = 0) {
  auto serial = Carver(config, options).Carve(image);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ExpectSaneCarveStats(*serial);
  for (size_t threads : kThreadCounts) {
    SCOPED_TRACE(StrFormat("threads=%zu chunk_pages=%zu", threads,
                           forced_chunk_pages));
    CarveOptions parallel_options = options;
    parallel_options.num_threads = threads;
    parallel_options.chunk_pages = forced_chunk_pages;
    ParallelCarver carver(config, parallel_options);
    auto parallel = carver.Carve(image);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameCarveResult(*serial, *parallel);
    ExpectSaneCarveStats(*parallel);
  }
}

TEST(ParallelCarverTest, SingleFileImageMatchesSerial) {
  auto db = PopulatedDb("postgres_like", 200);
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  ExpectParallelMatchesSerial(*image, ConfigFor("postgres_like"));
  // Tiny chunks: every page sits at or near a chunk edge.
  ExpectParallelMatchesSerial(*image, ConfigFor("postgres_like"), {},
                              /*forced_chunk_pages=*/1);
  ExpectParallelMatchesSerial(*image, ConfigFor("postgres_like"), {},
                              /*forced_chunk_pages=*/3);
}

TEST(ParallelCarverTest, MultiDbmsImageMatchesSerialForEachConfig) {
  auto pg = PopulatedDb("postgres_like", 120);
  auto lite = PopulatedDb("sqlite_like", 80);
  auto img1 = pg->SnapshotDisk();
  auto img2 = lite->SnapshotDisk();
  ASSERT_TRUE(img1.ok());
  ASSERT_TRUE(img2.ok());
  Rng rng(11);
  DiskImageBuilder builder;
  builder.AppendFile("pg", *img1);
  builder.AppendGarbage(512 * 9, &rng);
  builder.AppendFile("lite", *img2);
  builder.AppendGarbage(512 * 5, &rng);
  Bytes image = builder.TakeBytes();

  for (const std::string dialect : {"postgres_like", "sqlite_like"}) {
    SCOPED_TRACE(dialect);
    ExpectParallelMatchesSerial(image, ConfigFor(dialect));
    ExpectParallelMatchesSerial(image, ConfigFor(dialect), {},
                                /*forced_chunk_pages=*/2);
  }
}

TEST(ParallelCarverTest, TextGarbageHeavyImageMatchesSerial) {
  auto db = PopulatedDb("mysql_like", 150);
  auto files = db->ExportFiles();
  ASSERT_TRUE(files.ok());
  Rng rng(23);
  DiskImageBuilder builder;
  builder.AppendTextGarbage(512 * 40, &rng);
  for (const auto& [name, bytes] : *files) {
    builder.AppendFile(name, bytes);
    builder.AppendTextGarbage(512 * 64, &rng);
  }
  Bytes image = builder.TakeBytes();
  ExpectParallelMatchesSerial(image, ConfigFor("mysql_like"));
  ExpectParallelMatchesSerial(image, ConfigFor("mysql_like"), {},
                              /*forced_chunk_pages=*/2);
}

TEST(ParallelCarverTest, CorruptedImageMatchesSerial) {
  auto db = PopulatedDb("oracle_like", 250);
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  // Smash several regions: page headers, page interiors, slot directories.
  Rng rng(31);
  size_t page_size = db->params().page_size;
  for (int hit = 0; hit < 8; ++hit) {
    size_t offset = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(image->size() - 256)));
    CorruptRegion(&*image, offset, 128 + hit * 16, &rng);
  }
  (void)page_size;
  ExpectParallelMatchesSerial(*image, ConfigFor("oracle_like"));
  ExpectParallelMatchesSerial(*image, ConfigFor("oracle_like"), {},
                              /*forced_chunk_pages=*/1);
}

TEST(ParallelCarverTest, RamSnapshotWithPageSizeStepMatchesSerial) {
  auto db = PopulatedDb("db2_like", 100);
  ASSERT_TRUE(db->ExecuteSql("SELECT * FROM Customer WHERE Id > 0").ok());
  Bytes ram = db->SnapshotRam();
  CarveOptions options;
  options.scan_step = db->params().page_size;  // frames are page-aligned
  ExpectParallelMatchesSerial(ram, ConfigFor("db2_like"), options);
}

TEST(ParallelCarverTest, CarveMultiMatchesSerialCarveMulti) {
  auto pg = PopulatedDb("postgres_like", 90);
  auto lite = PopulatedDb("sqlite_like", 70);
  auto img1 = pg->SnapshotDisk();
  auto img2 = lite->SnapshotDisk();
  ASSERT_TRUE(img1.ok());
  ASSERT_TRUE(img2.ok());
  Rng rng(47);
  DiskImageBuilder builder;
  builder.AppendGarbage(512 * 6, &rng);
  builder.AppendFile("pg", *img1);
  builder.AppendTextGarbage(512 * 10, &rng);
  builder.AppendFile("lite", *img2);
  Bytes image = builder.TakeBytes();

  std::vector<CarverConfig> configs;
  for (const std::string& name : BuiltinDialectNames()) {
    configs.push_back(ConfigFor(name));
  }
  auto serial = Carver::CarveMulti(image, configs);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : kThreadCounts) {
    SCOPED_TRACE(StrFormat("threads=%zu", threads));
    CarveOptions options;
    options.num_threads = threads;
    auto parallel = ParallelCarver::CarveMulti(image, configs, options);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      SCOPED_TRACE(configs[i].params.dialect);
      ExpectSameCarveResult((*serial)[i], (*parallel)[i]);
    }
  }
}

TEST(ParallelCarverTest, EmptyAndTinyImages) {
  CarveOptions options;
  options.num_threads = 4;
  ParallelCarver carver(ConfigFor("postgres_like"), options);
  Bytes empty;
  auto r1 = carver.Carve(empty);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->pages.empty());
  Bytes tiny(100, 0xAA);
  auto r2 = carver.Carve(tiny);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->pages.empty());
  EXPECT_EQ(r2->stats.pages_probed, 0u);
}

TEST(ParallelCarverTest, BorrowedPoolIsReusedAcrossCarves) {
  ThreadPool pool(3);
  auto db = PopulatedDb("postgres_like", 60);
  auto image = db->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  auto serial = Carver(ConfigFor("postgres_like")).Carve(*image);
  ASSERT_TRUE(serial.ok());
  ParallelCarver carver(ConfigFor("postgres_like"), {}, &pool);
  EXPECT_EQ(carver.thread_count(), 3u);
  for (int round = 0; round < 3; ++round) {
    auto parallel = carver.Carve(*image);
    ASSERT_TRUE(parallel.ok());
    ExpectSameCarveResult(*serial, *parallel);
  }
}

}  // namespace
}  // namespace dbfa
