// The headline reproduction test: the black-box parameter collector must
// rediscover every built-in dialect's page-layout parameters from probing
// alone, and the emitted config must drive a correct carve.
#include <gtest/gtest.h>

#include "core/carver.h"
#include "core/parameter_collector.h"
#include "engine/database.h"
#include "storage/dialects.h"

namespace dbfa {
namespace {

class CollectorDialectTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CollectorDialectTest, RediscoversLayoutParameters) {
  DatabaseOptions options;
  options.dialect = GetParam();
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  MiniDbBlackBox blackbox(db->get());

  ParameterCollector collector;
  auto config = collector.Collect(&blackbox);
  ASSERT_TRUE(config.ok()) << config.status().ToString();

  CarverConfig truth;
  truth.params = GetDialect(GetParam()).value();
  truth.catalog_object_id = kCatalogObjectId;
  EXPECT_TRUE(config->ForensicallyEquivalent(truth))
      << "collected:\n"
      << ConfigToText(*config) << "\nexpected:\n"
      << ConfigToText(truth);
}

TEST_P(CollectorDialectTest, CollectedConfigDrivesACorrectCarve) {
  DatabaseOptions options;
  options.dialect = GetParam();
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  MiniDbBlackBox blackbox(db->get());
  ParameterCollector collector;
  auto config = collector.Collect(&blackbox);
  ASSERT_TRUE(config.ok()) << config.status().ToString();

  // New content after collection, including deletions.
  ASSERT_TRUE((*db)->ExecuteSql("CREATE TABLE Evidence (id INT, what "
                                "VARCHAR(32), PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE((*db)->ExecuteSql("INSERT INTO Evidence VALUES "
                                "(1, 'keep-me'), (2, 'delete-me')")
                  .ok());
  ASSERT_TRUE((*db)->ExecuteSql("DELETE FROM Evidence WHERE id = 2").ok());

  auto image = (*db)->SnapshotDisk();
  ASSERT_TRUE(image.ok());
  Carver carver(*config);
  auto result = carver.Carve(*image);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto active = result->RecordsForTable("Evidence", RowStatus::kActive);
  auto deleted = result->RecordsForTable("Evidence", RowStatus::kDeleted);
  ASSERT_EQ(active.size(), 1u);
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(active[0]->values[1], Value::Str("keep-me"));
  EXPECT_EQ(deleted[0]->values[1], Value::Str("delete-me"));
}

INSTANTIATE_TEST_SUITE_P(
    AllDialects, CollectorDialectTest,
    ::testing::ValuesIn(BuiltinDialectNames()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(ConfigIoTest, TextRoundTripForAllDialects) {
  for (const PageLayoutParams& p : AllDialects()) {
    CarverConfig config;
    config.params = p;
    config.catalog_object_id = 1;
    std::string text = ConfigToText(config);
    auto parsed = ConfigFromText(text);
    ASSERT_TRUE(parsed.ok()) << p.dialect << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(parsed->params == p) << p.dialect;
    EXPECT_EQ(parsed->catalog_object_id, 1u);
  }
}

TEST(ConfigIoTest, FileRoundTrip) {
  CarverConfig config;
  config.params = GetDialect("db2_like").value();
  config.catalog_object_id = 1;
  std::string path = ::testing::TempDir() + "/dbfa_config_test.conf";
  ASSERT_TRUE(SaveConfig(path, config).ok());
  auto loaded = LoadConfig(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->params == config.params);
}

TEST(ConfigIoTest, RejectsDamagedConfigs) {
  CarverConfig config;
  config.params = GetDialect("oracle_like").value();
  std::string text = ConfigToText(config);
  EXPECT_FALSE(ConfigFromText("").ok());
  EXPECT_FALSE(ConfigFromText("dialect = x\n").ok()) << "missing keys";
  std::string broken = text;
  size_t pos = broken.find("page_size = 8192");
  broken.replace(pos, 16, "page_size = 1000");  // not a power of two
  EXPECT_FALSE(ConfigFromText(broken).ok());
}

}  // namespace
}  // namespace dbfa
