#include "common/spill_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace dbfa {
namespace {

namespace fs = std::filesystem;

std::string TestRoot(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<std::string> ReadAll(const SpillFile& file) {
  auto reader = file.OpenReader();
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<std::string> blocks;
  std::string payload;
  while (true) {
    auto more = reader->NextBlock(&payload);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    blocks.push_back(payload);
  }
  return blocks;
}

TEST(SpillManagerTest, BlocksRoundTrip) {
  SpillManager manager(TestRoot("spill_roundtrip"));
  auto file = manager.CreateFile();
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  std::vector<std::string> payloads = {"alpha", std::string(100000, 'x'),
                                       std::string("\0\x01\xff", 3), "tail"};
  for (const std::string& p : payloads) {
    ASSERT_TRUE(file->AppendBlock(p).ok());
  }
  EXPECT_EQ(file->block_count(), payloads.size());
  EXPECT_EQ(ReadAll(*file), payloads);

  SpillStats stats = manager.stats();
  EXPECT_EQ(stats.files_created, 1u);
  EXPECT_EQ(stats.blocks_written, payloads.size());
  EXPECT_EQ(stats.blocks_read, payloads.size());
  EXPECT_TRUE(stats.spilled());
}

TEST(SpillManagerTest, IndependentReaders) {
  SpillManager manager(TestRoot("spill_readers"));
  auto file = manager.CreateFile();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->AppendBlock("one").ok());
  ASSERT_TRUE(file->AppendBlock("two").ok());

  auto r1 = file->OpenReader();
  auto r2 = file->OpenReader();
  ASSERT_TRUE(r1.ok() && r2.ok());
  std::string a;
  std::string b;
  ASSERT_TRUE(r1->NextBlock(&a).ok());
  ASSERT_TRUE(r2->NextBlock(&b).ok());
  EXPECT_EQ(a, "one");
  EXPECT_EQ(b, "one");  // cursors advance independently
}

TEST(SpillManagerTest, EmptyFileReadsNothing) {
  SpillManager manager(TestRoot("spill_empty"));
  auto file = manager.CreateFile();
  ASSERT_TRUE(file.ok());
  auto reader = file->OpenReader();
  ASSERT_TRUE(reader.ok());
  std::string payload;
  auto more = reader->NextBlock(&payload);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(SpillManagerTest, DetectsBitFlip) {
  SpillManager manager(TestRoot("spill_bitflip"));
  auto file = manager.CreateFile();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->AppendBlock("sensitive payload bytes").ok());

  {
    // Flip one payload byte behind the writer's back.
    std::fstream f(file->path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(8 + 3);  // past the 8-byte header, into the payload
    f.put('X');
  }

  auto reader = file->OpenReader();
  ASSERT_TRUE(reader.ok());
  std::string payload;
  auto more = reader->NextBlock(&payload);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kCorruption);
}

TEST(SpillManagerTest, DetectsTruncatedBlock) {
  SpillManager manager(TestRoot("spill_truncated"));
  auto file = manager.CreateFile();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->AppendBlock("0123456789").ok());
  fs::resize_file(file->path(), 12);  // header + 4 of 10 payload bytes

  auto reader = file->OpenReader();
  ASSERT_TRUE(reader.ok());
  std::string payload;
  auto more = reader->NextBlock(&payload);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kCorruption);
}

TEST(SpillManagerTest, FileUnlinkedWhenHandleDies) {
  SpillManager manager(TestRoot("spill_unlink"));
  std::string path;
  {
    auto file = manager.CreateFile();
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendBlock("data").ok());
    path = file->path();
    EXPECT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(SpillManagerTest, DirectoryRemovedOnDestruction) {
  std::string root = TestRoot("spill_dirgone");
  std::string dir;
  {
    SpillManager manager(root);
    auto file = manager.CreateFile();
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendBlock("data").ok());
    dir = manager.dir();
    EXPECT_TRUE(fs::exists(dir));
    // ~SpillManager must clean up even with the file still live (abnormal
    // teardown order during stack unwinding).
  }
  EXPECT_FALSE(fs::exists(dir));
  // The caller-provided root itself is left alone.
  EXPECT_TRUE(fs::exists(root));
}

TEST(SpillManagerTest, CreatesMissingRoot) {
  fs::remove_all(TestRoot("spill_missing"));  // leftovers from prior runs
  std::string root = TestRoot("spill_missing/nested/root");
  ASSERT_FALSE(fs::exists(root));
  SpillManager manager(root);
  auto file = manager.CreateFile();
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE(fs::exists(root));
}

TEST(SpillManagerTest, LazyUntilFirstFile) {
  std::string root = TestRoot("spill_lazy");
  SpillManager manager(root);
  EXPECT_EQ(manager.dir(), "");
  EXPECT_FALSE(fs::exists(root));  // constructor touches nothing
}

}  // namespace
}  // namespace dbfa
