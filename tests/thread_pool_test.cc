// ThreadPool unit tests. Run under TSan via `ctest -L sanitize` (see
// README.md "Sanitizers") to prove the submit/wait handshake publishes
// task results race-free.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dbfa {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitPublishesPlainWritesFromTasks) {
  // Each task writes a distinct slot without atomics; Wait() must make
  // those writes visible to the orchestrator (the pattern the parallel
  // carver's waves rely on).
  ThreadPool pool(4);
  std::vector<int> slots(256, 0);
  pool.ParallelFor(slots.size(), [&slots](size_t i) {
    slots[i] = static_cast<int>(i) + 1;
  });
  long long sum = std::accumulate(slots.begin(), slots.end(), 0LL);
  EXPECT_EQ(sum, 256LL * 257 / 2);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 1; wave <= 3; ++wave) {
    for (int i = 0; i < 10 * wave; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 10 * (wave * (wave + 1)) / 2);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.ParallelFor(0, [](size_t) { FAIL() << "no tasks expected"; });
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsConcurrentlySubmittedWork) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker drains the FIFO queue in submission order.
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
  ThreadPool pool;  // default: hardware concurrency
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace dbfa
