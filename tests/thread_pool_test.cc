// ThreadPool unit tests. Run under TSan via `ctest -L sanitize` (see
// README.md "Sanitizers") to prove the submit/wait handshake publishes
// task results race-free.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <vector>

namespace dbfa {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitPublishesPlainWritesFromTasks) {
  // Each task writes a distinct slot without atomics; Wait() must make
  // those writes visible to the orchestrator (the pattern the parallel
  // carver's waves rely on).
  ThreadPool pool(4);
  std::vector<int> slots(256, 0);
  pool.ParallelFor(slots.size(), [&slots](size_t i) {
    slots[i] = static_cast<int>(i) + 1;
  });
  long long sum = std::accumulate(slots.begin(), slots.end(), 0LL);
  EXPECT_EQ(sum, 256LL * 257 / 2);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 1; wave <= 3; ++wave) {
    for (int i = 0; i < 10 * wave; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 10 * (wave * (wave + 1)) / 2);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.ParallelFor(0, [](size_t) { FAIL() << "no tasks expected"; });
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsConcurrentlySubmittedWork) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker drains the FIFO queue in submission order.
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadConstructionFallsBackToHardware) {
  // num_threads == 0 is the "size for this machine" request, never an
  // inert pool: work submitted to it must still run.
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.thread_count(), ThreadPool::HardwareThreads());
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, TasksMaySubmitFollowUpTasks) {
  // Re-entrant Submit from inside a running task: the chained task bumps
  // in_flight_ before its parent finishes, so Wait() cannot wake early.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::function<void(int)> chain = [&](int depth) {
    counter.fetch_add(1);
    if (depth > 0) pool.Submit([&chain, depth] { chain(depth - 1); });
  };
  pool.Submit([&chain] { chain(9); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SubmitDuringDestructorDrainStillRuns) {
  // Enqueue-after-shutdown contract: once the destructor has set stop_,
  // the only legal Submit caller is a task already running (the single
  // orchestrating thread is inside ~ThreadPool). Such tasks ARE executed:
  // the submitting worker re-checks the queue after finishing its task
  // and drains chained work before joining, even if every other worker
  // has already exited.
  std::atomic<int> counter{0};
  // Declared before the pool so it outlives the destructor's drain (the
  // chained tasks still call it while ~ThreadPool joins the workers).
  std::function<void(int)> chain;
  {
    ThreadPool pool(2);
    chain = [&counter, &pool, &chain](int depth) {
      counter.fetch_add(1);
      if (depth > 0) pool.Submit([&chain, depth] { chain(depth - 1); });
    };
    for (int i = 0; i < 4; ++i) {
      pool.Submit([&chain] { chain(24); });
    }
    // No Wait(): destruction races the chains and must drain them all.
  }
  EXPECT_EQ(counter.load(), 4 * 25);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
  ThreadPool pool;  // default: hardware concurrency
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace dbfa
