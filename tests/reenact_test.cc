// Reenactment engine tests: claimed-state replay, per-transaction
// provenance, surgical recovery (the Ancora bar: undo tampering while
// preserving legitimate later writes), and backdated-log validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/carver.h"
#include "reenact/log_validator.h"
#include "reenact/provenance.h"
#include "reenact/recovery.h"
#include "reenact/reenactor.h"
#include "storage/dialects.h"
#include "workload/fleet.h"
#include "workload/synthetic.h"

namespace dbfa {
namespace {

CarverConfig ConfigFor(const Database& db) {
  CarverConfig config;
  config.params = GetDialect(db.params().dialect).value();
  return config;
}

Result<CarveResult> CarveDisk(Database* db) {
  DBFA_ASSIGN_OR_RETURN(Bytes image, db->SnapshotDisk());
  Carver carver(ConfigFor(*db));
  return carver.Carve(image);
}

std::unique_ptr<Database> OpenDb(const std::string& dialect = "") {
  DatabaseOptions options;
  if (!dialect.empty()) options.dialect = dialect;
  return Database::Open(options).value();
}

RowPointer FindRow(Database* db, int64_t id) {
  RowPointer out{};
  EXPECT_TRUE(db->heap("Accounts")
                  ->Scan([&](RowPointer ptr, const Record& rec) {
                    if (rec[0] == Value::Int(id)) out = ptr;
                    return Status::Ok();
                  })
                  .ok());
  return out;
}

/// A small fully-logged history with known seqs:
///   seq 1  CREATE TABLE
///   seq 2..6  INSERT Id 1..5
///   seq 7  UPDATE Id 2
///   seq 8  DELETE Id 3
std::unique_ptr<Database> ScriptedDb() {
  auto db = OpenDb();
  EXPECT_TRUE(db
                  ->ExecuteSql("CREATE TABLE Accounts (Id INT NOT NULL, "
                               "Owner VARCHAR(24), City VARCHAR(16), "
                               "Balance DOUBLE, PRIMARY KEY (Id))")
                  .ok());
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(db
                    ->ExecuteSql(StrFormat(
                        "INSERT INTO Accounts VALUES (%d, 'User%d', "
                        "'City', %d.5)",
                        i, i, i * 100))
                    .ok());
  }
  EXPECT_TRUE(
      db->ExecuteSql("UPDATE Accounts SET Balance = 777.25 WHERE Id = 2")
          .ok());
  EXPECT_TRUE(db->ExecuteSql("DELETE FROM Accounts WHERE Id = 3").ok());
  return db;
}

TEST(ReenactorTest, FullReplayReproducesLiveState) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 21);
  ASSERT_TRUE(workload.Setup(40).ok());
  ASSERT_TRUE(workload.Run(60, OpMix{}, /*logged=*/true).ok());

  Reenactor reenactor(ConfigFor(*db));
  auto state = reenactor.Replay(db->audit_log());
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->failed, 0u);
  EXPECT_EQ(state->applied, db->audit_log().entries().size());

  // The claimed state of an honest instance IS the live state.
  auto claimed = state->Fingerprint();
  auto live = CanonicalFingerprint(db.get());
  ASSERT_TRUE(claimed.ok());
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*claimed, *live);
}

TEST(ReenactorTest, PrefixReplayMaterializesStateAtSeq) {
  auto db = ScriptedDb();
  Reenactor reenactor(ConfigFor(*db));

  ReplayOptions options;
  options.upto_seq = 6;  // before the UPDATE and DELETE
  auto state = reenactor.Replay(db->audit_log(), options);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->outcomes.size(), 6u);

  auto rows = ActiveRowsByTable(state->db.get());
  ASSERT_TRUE(rows.ok());
  const std::vector<Record>& accounts = (*rows)["accounts"];
  ASSERT_EQ(accounts.size(), 5u);  // Id 3 not yet deleted
  // Id 2 still holds its original balance at this log position.
  bool found = false;
  for (const Record& r : accounts) {
    if (r[0] == Value::Int(2)) {
      EXPECT_EQ(r[3], Value::Real(200.5));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ReenactorTest, SkipReplayRemovesOneTransaction) {
  auto db = ScriptedDb();
  Reenactor reenactor(ConfigFor(*db));

  ReplayOptions options;
  options.skip_seqs.insert(4);  // the INSERT of Id 3
  auto state = reenactor.Replay(db->audit_log(), options);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->outcomes.size(), 7u);  // 8 entries, one suppressed
  EXPECT_EQ(state->failed, 0u);  // the later DELETE Id=3 hits zero rows

  auto rows = ActiveRowsByTable(state->db.get());
  ASSERT_TRUE(rows.ok());
  const std::vector<Record>& accounts = (*rows)["accounts"];
  EXPECT_EQ(accounts.size(), 4u);
  for (const Record& r : accounts) {
    EXPECT_NE(r[0], Value::Int(3));
  }
}

TEST(ReenactorTest, ReplayRecordsEngineRejections) {
  auto log = AuditLog::FromText(
      "1|1000|CREATE TABLE T (Id INT NOT NULL, PRIMARY KEY (Id))\n"
      "2|1001|INSERT INTO Missing VALUES (1)\n"
      "3|1002|INSERT INTO T VALUES (7)\n");
  ASSERT_TRUE(log.ok());
  CarverConfig config;
  config.params = GetDialect("postgres_like").value();
  Reenactor reenactor(config);

  auto state = reenactor.Replay(*log);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->applied, 2u);
  EXPECT_EQ(state->failed, 1u);
  EXPECT_FALSE(state->outcomes[1].applied);
  EXPECT_FALSE(state->outcomes[1].error.empty());

  // stop_on_error truncates at the first rejection instead.
  ReplayOptions stop;
  stop.stop_on_error = true;
  auto strict = reenactor.Replay(*log, stop);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->outcomes.size(), 2u);
}

// ---- surgical recovery ------------------------------------------------------

TEST(RecoveryTest, HonestInstanceNeedsNoRecovery) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 31);
  ASSERT_TRUE(workload.Setup(50).ok());
  ASSERT_TRUE(workload.Run(40, OpMix{}, /*logged=*/true).ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  RecoveryPlanner planner(reenactor);
  auto script = planner.Plan(db->audit_log(), *carve);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_TRUE(script->Clean()) << script->ToString();
}

TEST(RecoveryTest, PinpointsTamperingAndPreservesLaterWrites) {
  // The acceptance scenario end to end: logged history, unlogged
  // byte-level tampering of all three kinds, MORE legitimate logged
  // writes after the tampering, then recovery.
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 41);
  ASSERT_TRUE(workload.Setup(30).ok());

  // Unlogged tampering: alter Id 10's balance, smuggle a ghost row in,
  // erase Id 20 at byte level.
  ASSERT_TRUE(TamperOverwriteField(db.get(), "Accounts",
                                   FindRow(db.get(), 10), "Balance",
                                   Value::Real(9999.25))
                  .ok());
  ASSERT_TRUE(TamperInsertRecord(db.get(), "Accounts",
                                 {Value::Int(990001), Value::Str("Ghost"),
                                  Value::Str("Nowhere"), Value::Real(0.5)})
                  .ok());
  ASSERT_TRUE(
      TamperEraseRecord(db.get(), "Accounts", FindRow(db.get(), 20)).ok());

  // Legitimate post-tampering writes that recovery must preserve.
  ASSERT_TRUE(db
                  ->ExecuteSql("INSERT INTO Accounts VALUES (501, 'Late', "
                               "'Legit', 42.5)")
                  .ok());
  ASSERT_TRUE(
      db->ExecuteSql("UPDATE Accounts SET City = 'Moved' WHERE Id = 5")
          .ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  RecoveryPlanner planner(reenactor);
  auto script = planner.Plan(db->audit_log(), *carve);
  ASSERT_TRUE(script.ok()) << script.status().ToString();

  // Exactly the three tampered rows — no false positives.
  ASSERT_EQ(script->corruptions.size(), 3u) << script->ToString();
  size_t altered = 0;
  size_t extraneous = 0;
  size_t missing = 0;
  for (const RowCorruption& c : script->corruptions) {
    EXPECT_EQ(c.table, "accounts");
    switch (c.kind) {
      case RowCorruption::Kind::kAltered:
        ++altered;
        EXPECT_EQ(c.actual[0], Value::Int(10));
        EXPECT_EQ(c.actual[3], Value::Real(9999.25));
        break;
      case RowCorruption::Kind::kExtraneous:
        ++extraneous;
        EXPECT_EQ(c.actual[0], Value::Int(990001));
        break;
      case RowCorruption::Kind::kMissing:
        ++missing;
        EXPECT_EQ(c.claimed[0], Value::Int(20));
        break;
    }
    // The legitimate late writes must not be flagged.
    for (const Record& r : {c.claimed, c.actual}) {
      if (!r.empty()) {
        EXPECT_NE(r[0], Value::Int(501));
      }
    }
  }
  EXPECT_EQ(altered, 1u);
  EXPECT_EQ(extraneous, 1u);
  EXPECT_EQ(missing, 1u);

  // The script verifies: carved reality + script == claimed replay,
  // byte for byte — which proves the late writes survived recovery.
  auto verification = planner.Verify(*script, db->audit_log(), *carve);
  ASSERT_TRUE(verification.ok()) << verification.status().ToString();
  EXPECT_TRUE(verification->byte_identical)
      << "claimed:\n"
      << verification->claimed_fingerprint << "recovered:\n"
      << verification->recovered_fingerprint;
  EXPECT_NE(verification->claimed_fingerprint.find("501, Late"),
            std::string::npos);
  EXPECT_NE(verification->claimed_fingerprint.find("Moved"),
            std::string::npos);
}

TEST(RecoveryTest, FleetAttackSurfacesInRecoveryDiff) {
  // FleetSimulator's Section III-A attack (unlogged INSERT) must show up
  // as extraneous rows; a clean fleet must recover to Clean() scripts.
  for (double rate : {0.0, 1.0}) {
    FleetOptions options;
    options.instances = 2;
    options.seed_rows = 12;
    options.ops_per_tick = 4;
    options.attack_rate = rate;
    options.seed = 7;
    auto fleet = FleetSimulator::Make(options);
    ASSERT_TRUE(fleet.ok());
    Reenactor reenactor((*fleet)->Config());
    RecoveryPlanner planner(reenactor);
    for (size_t i = 0; i < (*fleet)->size(); ++i) {
      Bytes capture;
      for (int tick = 0; tick < 3; ++tick) {
        auto image = (*fleet)->Tick(i);
        ASSERT_TRUE(image.ok());
        capture = *std::move(image);
      }
      Carver carver((*fleet)->Config());
      auto carve = carver.Carve(capture);
      ASSERT_TRUE(carve.ok());
      auto script = planner.Plan((*fleet)->Log(i), *carve);
      ASSERT_TRUE(script.ok()) << script.status().ToString();
      if ((*fleet)->Attacks(i) == 0) {
        EXPECT_TRUE(script->Clean()) << script->ToString();
      } else {
        EXPECT_FALSE(script->Clean());
      }
    }
  }
}

// ---- provenance -------------------------------------------------------------

TEST(ProvenanceTest, HonestHistoryIsConsistent) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 51);
  ASSERT_TRUE(workload.Setup(30).ok());
  ASSERT_TRUE(workload.Run(40, OpMix{}, /*logged=*/true).ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  ProvenanceAnalyzer analyzer(reenactor);
  auto report = analyzer.Analyze(db->audit_log(), *carve);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Consistent()) << report->ToString();
  EXPECT_GT(report->confirmed, 0u);
  EXPECT_EQ(report->contradicted, 0u);
  EXPECT_EQ(report->missing, 0u);
  EXPECT_EQ(report->transactions.size(), db->audit_log().entries().size());
}

TEST(ProvenanceTest, CapturesUpdateBeforeAndAfterImages) {
  auto db = ScriptedDb();
  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  ProvenanceAnalyzer analyzer(reenactor);
  auto report = analyzer.Analyze(db->audit_log(), *carve);
  ASSERT_TRUE(report.ok());

  const TransactionFootprint& update = report->transactions[6];  // seq 7
  ASSERT_EQ(update.writes.size(), 2u) << update.ToString();
  EXPECT_EQ(update.writes[0].kind, EffectKind::kUpdateBefore);
  EXPECT_EQ(update.writes[0].values[3], Value::Real(200.5));
  EXPECT_EQ(update.writes[1].kind, EffectKind::kUpdateAfter);
  EXPECT_EQ(update.writes[1].values[3], Value::Real(777.25));

  const TransactionFootprint& del = report->transactions[7];  // seq 8
  ASSERT_EQ(del.writes.size(), 1u);
  EXPECT_EQ(del.writes[0].kind, EffectKind::kDelete);
  EXPECT_EQ(del.writes[0].values[0], Value::Int(3));
}

TEST(ProvenanceTest, FlagsTamperedStorage) {
  auto db = OpenDb();
  SyntheticWorkload workload(db.get(), "Accounts", 61);
  ASSERT_TRUE(workload.Setup(30).ok());
  // Erase a logged row at byte level: its INSERT's post-image is gone
  // from storage with no logged DELETE to explain it.
  ASSERT_TRUE(
      TamperEraseRecord(db.get(), "Accounts", FindRow(db.get(), 15)).ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  ProvenanceAnalyzer analyzer(reenactor);
  auto report = analyzer.Analyze(db->audit_log(), *carve);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Consistent()) << report->ToString();
  bool flagged = false;
  for (const TransactionFootprint& t : report->transactions) {
    if (t.verdict == EvidenceVerdict::kMissing &&
        t.sql.find("(15,") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << report->ToString();
}

// ---- backdated-log validation ----------------------------------------------

TEST(LogValidatorTest, HonestLogValidatesCleanly) {
  auto db = OpenDb("oracle_like");
  SyntheticWorkload workload(db.get(), "Accounts", 71);
  ASSERT_TRUE(workload.Setup(40).ok());
  ASSERT_TRUE(workload.Run(40, OpMix{}, /*logged=*/true).ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  LogValidator validator(reenactor);
  auto report = validator.Validate(db->audit_log(), *carve);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Consistent()) << report->ToString();
  EXPECT_TRUE(report->state_matches_replay);
  EXPECT_EQ(report->corrupted_rows, 0u);
  EXPECT_GT(report->inserts_matched, 0u);
}

TEST(LogValidatorTest, ResortedBackdatedLogIsDetected) {
  // Section III-C's strong attacker: clock set back for the malicious
  // inserts, then the log file rewritten sorted by timestamp with fresh
  // seqs so no inversion remains. Storage row-id order still testifies.
  auto db = OpenDb("oracle_like");
  ASSERT_TRUE(db
                  ->ExecuteSql("CREATE TABLE Accounts (Id INT NOT NULL, "
                               "Owner VARCHAR(24), City VARCHAR(16), "
                               "Balance DOUBLE, PRIMARY KEY (Id))")
                  .ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(db
                    ->ExecuteSql(StrFormat(
                        "INSERT INTO Accounts VALUES (%d, 'User%d', "
                        "'City', 1.0)",
                        i, i))
                    .ok());
  }
  int64_t now = db->clock().Peek();
  db->clock().Set(now - 90'000);
  for (int i = 100; i < 103; ++i) {
    ASSERT_TRUE(db
                    ->ExecuteSql(StrFormat(
                        "INSERT INTO Accounts VALUES (%d, 'Evil%d', "
                        "'City', 1.0)",
                        i, i))
                    .ok());
  }
  db->clock().Set(now);

  std::vector<AuditEntry> entries = db->audit_log().entries();
  std::stable_sort(entries.begin(), entries.end(),
                   [](const AuditEntry& a, const AuditEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
  std::string forged_text;
  for (size_t i = 0; i < entries.size(); ++i) {
    forged_text += StrFormat("%zu|%lld|", i + 1,
                             static_cast<long long>(entries[i].timestamp));
    forged_text += entries[i].sql;
    forged_text += "\n";
  }
  auto forged = AuditLog::FromText(forged_text);
  ASSERT_TRUE(forged.ok());

  auto carve = CarveDisk(db.get());
  ASSERT_TRUE(carve.ok());
  Reenactor reenactor(ConfigFor(*db));
  LogValidator validator(reenactor);
  auto report = validator.Validate(*forged, *carve);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Consistent()) << report->ToString();
  size_t evil_flagged = 0;
  for (const BackdateFinding& f : report->timeline.findings) {
    if (f.sql.find("Evil") != std::string::npos) ++evil_flagged;
  }
  for (const BackdateFinding& f : report->replay_findings) {
    if (f.sql.find("Evil") != std::string::npos) ++evil_flagged;
  }
  EXPECT_EQ(evil_flagged, 3u) << report->ToString();
}

}  // namespace
}  // namespace dbfa
